"""Unit and property tests for repro.coding.bch."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.bch import BCH
from repro.coding.bitvec import flip_bits


class TestConstruction:
    def test_paper_ecc6_costs_sixty_bits(self):
        # The paper charges ECC-6 60 bits per 64-byte line (section II-D);
        # the BCH construction over GF(2^10) realises exactly that.
        code = BCH(512, 6)
        assert code.m == 10
        assert code.num_check_bits == 60
        assert code.n == 572

    @pytest.mark.parametrize("t,expected_bits", [(1, 10), (2, 20), (3, 30), (4, 40)])
    def test_check_bits_scale_with_t(self, t, expected_bits):
        assert BCH(512, t).num_check_bits == expected_bits

    def test_hiecc_field(self):
        # 1 KB regions need GF(2^14): 84 check bits for t = 6.
        code = BCH(8192, 6)
        assert code.m == 14
        assert code.num_check_bits == 84

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BCH(0, 1)
        with pytest.raises(ValueError):
            BCH(512, 0)

    def test_payload_exceeding_length_rejected(self):
        with pytest.raises(ValueError):
            BCH(2000, 6, m=10)  # 2000 + 60 > 1023


class TestEncodeDecode:
    def setup_method(self):
        self.code = BCH(64, 3, m=8)  # small, fast code for exhaustive-ish tests
        self.rng = random.Random(21)

    def test_systematic_roundtrip(self):
        for _ in range(50):
            data = self.rng.getrandbits(64)
            codeword = self.code.encode(data)
            assert self.code.is_codeword(codeword)
            assert self.code.extract_data(codeword) == data

    def test_zero_errors_decode_clean(self):
        data = self.rng.getrandbits(64)
        result = self.code.decode(self.code.encode(data))
        assert result.ok and result.error_positions == () and result.data == data

    @pytest.mark.parametrize("weight", [1, 2, 3])
    def test_corrects_up_to_t(self, weight):
        for _ in range(30):
            data = self.rng.getrandbits(64)
            codeword = self.code.encode(data)
            positions = self.rng.sample(range(self.code.n), weight)
            result = self.code.decode(flip_bits(codeword, positions))
            assert result.ok
            assert result.corrected_word == codeword
            assert result.error_positions == tuple(sorted(positions))

    def test_beyond_t_not_silently_wrong(self):
        miscorrections = 0
        trials = 100
        for _ in range(trials):
            data = self.rng.getrandbits(64)
            codeword = self.code.encode(data)
            positions = self.rng.sample(range(self.code.n), 5)
            result = self.code.decode(flip_bits(codeword, positions))
            if result.ok and result.data != data:
                miscorrections += 1
        # Bounded-distance decoders may miscorrect past t, but the vast
        # majority of 5-error patterns must be flagged uncorrectable.
        assert miscorrections < trials * 0.2

    def test_oversized_inputs_rejected(self):
        with pytest.raises(ValueError):
            self.code.encode(1 << 64)
        with pytest.raises(ValueError):
            self.code.decode(1 << self.code.n)


class TestPaperScaleCode:
    def test_ecc6_corrects_six_errors(self):
        code = BCH(512, 6)
        rng = random.Random(22)
        for _ in range(5):
            data = rng.getrandbits(512)
            codeword = code.encode(data)
            positions = rng.sample(range(code.n), 6)
            result = code.decode(flip_bits(codeword, positions))
            assert result.ok and result.data == data

    def test_ecc6_flags_seven_errors(self):
        code = BCH(512, 6)
        rng = random.Random(23)
        flagged = 0
        for _ in range(10):
            data = rng.getrandbits(512)
            codeword = code.encode(data)
            positions = rng.sample(range(code.n), 7)
            result = code.decode(flip_bits(codeword, positions))
            if not result.ok:
                flagged += 1
        assert flagged >= 9  # overwhelming majority detected


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 64) - 1), st.data())
def test_property_bch_corrects_random_patterns(data, draw):
    code = BCH(64, 3, m=8)
    codeword = code.encode(data)
    weight = draw.draw(st.integers(min_value=0, max_value=3))
    positions = draw.draw(
        st.lists(
            st.integers(min_value=0, max_value=code.n - 1),
            min_size=weight,
            max_size=weight,
            unique=True,
        )
    )
    result = code.decode(flip_bits(codeword, positions))
    assert result.ok and result.data == data
