"""Tests for the bit interleaver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.bitvec import popcount
from repro.coding.interleave import BitInterleaver


class TestPositionMaps:
    def test_bijection_small(self):
        interleaver = BitInterleaver(line_bits=8, depth=4)
        seen = set()
        for line in range(4):
            for bit in range(8):
                physical = interleaver.physical_position(line, bit)
                assert interleaver.logical_position(physical) == (line, bit)
                seen.add(physical)
        assert seen == set(range(32))

    def test_bounds(self):
        interleaver = BitInterleaver(line_bits=8, depth=4)
        with pytest.raises(ValueError):
            interleaver.physical_position(4, 0)
        with pytest.raises(ValueError):
            interleaver.physical_position(0, 8)
        with pytest.raises(ValueError):
            interleaver.logical_position(32)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BitInterleaver(0, 4)
        with pytest.raises(ValueError):
            BitInterleaver(8, 0)


class TestRowTransforms:
    def test_roundtrip(self):
        interleaver = BitInterleaver(line_bits=64, depth=8)
        rng = random.Random(1)
        lines = [rng.getrandbits(64) for _ in range(8)]
        assert interleaver.deinterleave(interleaver.interleave(lines)) == lines

    def test_popcount_preserved(self):
        interleaver = BitInterleaver(line_bits=32, depth=4)
        rng = random.Random(2)
        lines = [rng.getrandbits(32) for _ in range(4)]
        row = interleaver.interleave(lines)
        assert popcount(row) == sum(popcount(line) for line in lines)

    def test_wrong_line_count(self):
        with pytest.raises(ValueError):
            BitInterleaver(8, 4).interleave([0, 0])

    def test_oversized_values(self):
        interleaver = BitInterleaver(8, 2)
        with pytest.raises(ValueError):
            interleaver.interleave([1 << 8, 0])
        with pytest.raises(ValueError):
            interleaver.deinterleave(1 << 16)


class TestBurstSpreading:
    def test_short_burst_one_bit_per_line(self):
        interleaver = BitInterleaver(line_bits=64, depth=8)
        for start in (0, 5, 100, interleaver.row_bits - 8):
            errors = interleaver.burst_to_line_errors(start, 8)
            assert len(errors) == 8                       # every line touched
            assert all(popcount(vector) == 1 for _, vector in errors)

    def test_long_burst_bounded(self):
        interleaver = BitInterleaver(line_bits=64, depth=8)
        errors = interleaver.burst_to_line_errors(3, 20)
        worst = max(popcount(vector) for _, vector in errors)
        assert worst == interleaver.max_bits_per_line(20) == 3

    def test_burst_bounds(self):
        interleaver = BitInterleaver(8, 2)
        with pytest.raises(ValueError):
            interleaver.burst_to_line_errors(15, 2)
        with pytest.raises(ValueError):
            interleaver.max_bits_per_line(0)

    def test_burst_errors_match_deinterleave(self):
        # Injecting the burst into the row and deinterleaving must agree
        # with the analytical error map.
        interleaver = BitInterleaver(line_bits=16, depth=4)
        rng = random.Random(3)
        lines = [rng.getrandbits(16) for _ in range(4)]
        row = interleaver.interleave(lines)
        start, length = 10, 6
        burst = ((1 << length) - 1) << start
        corrupted_lines = interleaver.deinterleave(row ^ burst)
        expected = dict(interleaver.burst_to_line_errors(start, length))
        for index in range(4):
            assert corrupted_lines[index] == lines[index] ^ expected.get(index, 0)


@settings(max_examples=30)
@given(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda depth: st.tuples(
            st.just(depth),
            st.lists(
                st.integers(min_value=0, max_value=(1 << 24) - 1),
                min_size=depth, max_size=depth,
            ),
        )
    )
)
def test_property_roundtrip(args):
    depth, lines = args
    interleaver = BitInterleaver(line_bits=24, depth=depth)
    assert interleaver.deinterleave(interleaver.interleave(lines)) == lines


# -- burst-tolerance properties -------------------------------------------------
#
# The load-bearing claim behind the MBU study: a contiguous physical
# burst of length k <= D lands at most ONE bit in any logical line, so
# per-line ECC-1 corrects what would otherwise be an uncorrectable
# multi-bit error.  For k > D the damage is bounded by ceil(k / D).

_BURST_CASE = st.tuples(
    st.integers(min_value=1, max_value=8),    # depth D
    st.integers(min_value=2, max_value=32),   # line_bits
    st.integers(min_value=1, max_value=40),   # burst length k
    st.integers(min_value=0, max_value=255),  # start (reduced mod free room)
)


@settings(max_examples=200)
@given(_BURST_CASE)
def test_property_short_burst_is_single_bit_per_line(case):
    depth, line_bits, length, start_seed = case
    length = min(length, depth)  # restrict to the k <= D regime
    interleaver = BitInterleaver(line_bits=line_bits, depth=depth)
    start = start_seed % (interleaver.row_bits - length + 1)
    errors = interleaver.burst_to_line_errors(start, length)
    assert len(errors) == length  # k <= D distinct lines, one bit each
    assert all(popcount(vector) == 1 for _, vector in errors)


@settings(max_examples=200)
@given(_BURST_CASE)
def test_property_burst_damage_bounded_by_ceiling(case):
    depth, line_bits, length, start_seed = case
    interleaver = BitInterleaver(line_bits=line_bits, depth=depth)
    length = min(length, interleaver.row_bits)
    start = start_seed % (interleaver.row_bits - length + 1)
    errors = interleaver.burst_to_line_errors(start, length)
    bound = interleaver.max_bits_per_line(length)
    assert bound == (length + depth - 1) // depth
    assert max(popcount(vector) for _, vector in errors) <= bound
    # No bits lost or invented: the error map partitions the burst.
    assert sum(popcount(vector) for _, vector in errors) == length


@settings(max_examples=100)
@given(_BURST_CASE)
def test_property_burst_map_agrees_with_row_corruption(case):
    depth, line_bits, length, start_seed = case
    interleaver = BitInterleaver(line_bits=line_bits, depth=depth)
    length = min(length, interleaver.row_bits)
    start = start_seed % (interleaver.row_bits - length + 1)
    rng = random.Random((depth, line_bits, length, start_seed).__hash__())
    lines = [rng.getrandbits(line_bits) for _ in range(depth)]
    row = interleaver.interleave(lines)
    burst = ((1 << length) - 1) << start
    corrupted = interleaver.deinterleave(row ^ burst)
    expected = dict(interleaver.burst_to_line_errors(start, length))
    for index in range(depth):
        assert corrupted[index] == lines[index] ^ expected.get(index, 0)


@settings(max_examples=100)
@given(_BURST_CASE)
def test_property_injector_masks_match_interleaver(case):
    # The shared helper behind BurstFaultInjector and the scenario
    # samplers must place exactly the bits the interleaver maps.
    from repro.sttram.faults import burst_line_masks

    depth, line_bits, length, start_seed = case
    interleaver = BitInterleaver(line_bits=line_bits, depth=depth)
    length = min(length, interleaver.row_bits)
    start = start_seed % (interleaver.row_bits - length + 1)
    assert (
        burst_line_masks(line_bits, start, length, interleave=depth)
        == interleaver.burst_to_line_errors(start, length)
    )
