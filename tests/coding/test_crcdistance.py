"""Tests for the CRC distance-verification machinery."""

import random

import pytest

from repro.coding.crc import CRC, CRC31_SUDOKU
from repro.coding.crcdistance import (
    DistanceReport,
    min_weight_multiple_bound,
    misdetection_rate,
    syndrome_table,
    verify_low_weight_detection,
)


class TestSyndromeTable:
    def test_shape(self):
        table = syndrome_table(CRC31_SUDOKU, data_bits=64)
        assert len(table) == 64 + 31

    def test_crc_field_positions_are_unit_vectors(self):
        table = syndrome_table(CRC31_SUDOKU, data_bits=64)
        for bit in range(31):
            assert table[64 + bit] == 1 << bit

    def test_data_positions_match_direct_computation(self):
        table = syndrome_table(CRC31_SUDOKU, data_bits=64)
        zero = CRC31_SUDOKU.compute_int(0, 64)
        for position in (0, 13, 63):
            assert table[position] == CRC31_SUDOKU.compute_int(1 << position, 64) ^ zero

    def test_validates_data_bits(self):
        with pytest.raises(ValueError):
            syndrome_table(CRC31_SUDOKU, data_bits=65)

    def test_table_consistency_with_full_check(self):
        # XOR-of-syndromes equals the direct detected/undetected verdict.
        rng = random.Random(5)
        table = syndrome_table(CRC31_SUDOKU, data_bits=64)
        zero = CRC31_SUDOKU.compute_int(0, 64)
        for _ in range(50):
            positions = rng.sample(range(64 + 31), 4)
            accumulator = 0
            error_data = 0
            error_crc = 0
            for position in positions:
                accumulator ^= table[position]
                if position < 64:
                    error_data |= 1 << position
                else:
                    error_crc |= 1 << (position - 64)
            direct_escape = (
                CRC31_SUDOKU.compute_int(error_data, 64) ^ zero
            ) == error_crc
            assert (accumulator == 0) == direct_escape


class TestExactSearch:
    def test_line_length_distance_at_least_five(self):
        # The headline measurement: no undetected payload pattern of
        # weight <= 4 exists at the paper's line length.
        report = min_weight_multiple_bound(CRC31_SUDOKU, data_bits=512)
        assert report.undetected == ()
        assert report.proven_distance_at_least == 5
        assert report.payload_bits == 543

    def test_weak_crc_is_caught(self):
        # A deliberately weak polynomial (x^8, i.e. 8 parity-less shifts)
        # has undetected low-weight patterns; the search must find some.
        weak = CRC(8, 0x01, name="weak")  # poly x^8 + 1
        report = min_weight_multiple_bound(weak, data_bits=64, max_weight=2)
        assert report.undetected
        assert report.proven_distance_at_least <= 2

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            min_weight_multiple_bound(CRC31_SUDOKU, max_weight=5)
        with pytest.raises(ValueError):
            min_weight_multiple_bound(CRC31_SUDOKU, max_weight=0)


class TestRandomizedChecks:
    def test_no_misses_at_moderate_weights(self):
        rng = random.Random(6)
        table = syndrome_table(CRC31_SUDOKU, data_bits=512)
        for weight in (5, 6, 7):
            misses = verify_low_weight_detection(
                CRC31_SUDOKU, weight, samples=4000, rng=rng, table=table
            )
            assert misses == 0

    def test_misdetection_rate_zero_at_feasible_samples(self):
        rate = misdetection_rate(
            CRC31_SUDOKU, weight=16, samples=20_000, rng=random.Random(7)
        )
        assert rate == 0.0

    def test_weak_crc_misses_are_detected_by_random_check(self):
        weak = CRC(8, 0x01, name="weak")
        misses = verify_low_weight_detection(
            weak, 2, data_bits=64, samples=20_000, rng=random.Random(8)
        )
        assert misses > 0


class TestDistanceReport:
    def test_distance_with_witnesses(self):
        report = DistanceReport(
            payload_bits=10, max_weight_searched=4,
            undetected=((1, 2, 3), (0, 1, 2, 3)),
        )
        assert report.proven_distance_at_least == 3
