"""Unit tests for repro.coding.gf2m."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.gf2m import (
    GF2m,
    PRIMITIVE_POLYNOMIALS,
    gf2_degree,
    gf2_divmod,
    gf2_gcd,
    gf2_lcm,
    gf2_mod,
    gf2_mul,
)


class TestFieldConstruction:
    def test_all_catalogued_polynomials_are_primitive(self):
        for m in PRIMITIVE_POLYNOMIALS:
            field = GF2m(m)
            assert field.order == (1 << m) - 1

    def test_non_primitive_rejected(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive.
        with pytest.raises(ValueError):
            GF2m(4, 0b11111)

    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError):
            GF2m(4, 0b1011)  # degree 3 poly for m = 4

    def test_out_of_range_m(self):
        with pytest.raises(ValueError):
            GF2m(1)
        with pytest.raises(ValueError):
            GF2m(17)


class TestFieldArithmetic:
    def setup_method(self):
        self.field = GF2m(8)

    def test_add_is_xor(self):
        assert self.field.add(0b1010, 0b0110) == 0b1100

    def test_multiplicative_identity(self):
        for a in range(1, 256):
            assert self.field.mul(a, 1) == a

    def test_zero_annihilates(self):
        for a in range(256):
            assert self.field.mul(a, 0) == 0

    def test_inverse(self):
        for a in range(1, 256):
            assert self.field.mul(a, self.field.inv(a)) == 1

    def test_inverse_of_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            self.field.inv(0)

    def test_division(self):
        rng = random.Random(1)
        for _ in range(100):
            a = rng.randrange(256)
            b = rng.randrange(1, 256)
            assert self.field.mul(self.field.div(a, b), b) == a

    def test_pow_matches_repeated_mul(self):
        a = 0x53
        product = 1
        for exponent in range(10):
            assert self.field.pow(a, exponent) == product
            product = self.field.mul(product, a)

    def test_negative_pow(self):
        a = 0x7
        assert self.field.mul(self.field.pow(a, -1), a) == 1

    def test_alpha_generates_group(self):
        seen = {self.field.alpha_pow(i) for i in range(self.field.order)}
        assert len(seen) == self.field.order

    def test_log_inverts_alpha_pow(self):
        for i in range(0, self.field.order, 17):
            assert self.field.log(self.field.alpha_pow(i)) == i


class TestFieldPolynomials:
    def setup_method(self):
        self.field = GF2m(4)

    def test_poly_eval_horner(self):
        # p(x) = 3 + 2x + x^2 over GF(16), at x = 1: 3 ^ 2 ^ 1 = 0.
        assert self.field.poly_eval([3, 2, 1], 1) == 0

    def test_poly_mul_degree(self):
        product = self.field.poly_mul([1, 1], [1, 1])  # (1+x)^2 = 1 + x^2
        assert product == [1, 0, 1]

    def test_minimal_polynomial_of_alpha(self):
        # alpha's minimal polynomial is the field's primitive polynomial.
        assert self.field.minimal_polynomial(2) == PRIMITIVE_POLYNOMIALS[4]

    def test_minimal_polynomial_has_element_as_root(self):
        for element in range(1, 16):
            packed = self.field.minimal_polynomial(element)
            coefficients = [(packed >> i) & 1 for i in range(packed.bit_length())]
            assert self.field.poly_eval(coefficients, element) == 0


class TestGF2PolynomialHelpers:
    def test_degree(self):
        assert gf2_degree(0) == -1
        assert gf2_degree(1) == 0
        assert gf2_degree(0b1011) == 3

    def test_mul_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2).
        assert gf2_mul(0b11, 0b11) == 0b101

    def test_divmod_roundtrip(self):
        rng = random.Random(2)
        for _ in range(100):
            a = rng.getrandbits(24)
            b = rng.getrandbits(12) | (1 << 12)
            quotient, remainder = gf2_divmod(a, b)
            assert gf2_mul(quotient, b) ^ remainder == a
            assert gf2_degree(remainder) < gf2_degree(b)

    def test_mod_matches_divmod(self):
        assert gf2_mod(0b11011, 0b101) == gf2_divmod(0b11011, 0b101)[1]

    def test_gcd_of_multiples(self):
        base = 0b1011
        assert gf2_gcd(gf2_mul(base, 0b11), gf2_mul(base, 0b111)) % base == 0

    def test_lcm_divisible_by_inputs(self):
        polys = [0b111, 0b1011, 0b11]
        result = gf2_lcm(polys)
        for poly in polys:
            assert gf2_mod(result, poly) == 0

    def test_lcm_of_repeated_inputs(self):
        assert gf2_lcm([0b111, 0b111]) == 0b111

    def test_lcm_rejects_zero(self):
        with pytest.raises(ValueError):
            gf2_lcm([0b10, 0])


@settings(max_examples=60)
@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)
def test_property_field_distributivity(a, b, c):
    field = GF2m(8)
    left = field.mul(a, field.add(b, c))
    right = field.add(field.mul(a, b), field.mul(a, c))
    assert left == right


@settings(max_examples=60)
@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)
def test_property_field_commutativity(a, b):
    field = GF2m(8)
    assert field.mul(a, b) == field.mul(b, a)
