"""Exhaustive and algebraic deep-checks on the code implementations.

These complement the per-module unit tests with whole-codebook sweeps
on small instances (where exhaustion is feasible) and algebraic
identities that must hold at any size.
"""

import random

import pytest

from repro.coding.bch import BCH
from repro.coding.bitvec import flip_bits, popcount
from repro.coding.crc import CRC, CRC31_SUDOKU
from repro.coding.gf2m import GF2m, gf2_degree, gf2_mod, gf2_mul
from repro.coding.hamming import HammingSEC


class TestHammingExhaustive:
    @pytest.mark.parametrize("k", [4, 11, 26])
    def test_every_codeword_and_every_single_error(self, k):
        code = HammingSEC(k)
        step = max(1, (1 << k) // 512)  # full codebook for k=4, sampled beyond
        for data in range(0, 1 << k, step):
            codeword = code.encode(data)
            assert code.syndrome(codeword) == 0
            for position in range(code.n):
                result = code.correct(codeword ^ (1 << position))
                assert result.valid
                assert result.data == data

    def test_minimum_distance_is_three(self):
        # No two distinct codewords of the (7,4) code are closer than 3.
        code = HammingSEC(4)
        codewords = [code.encode(d) for d in range(16)]
        minimum = min(
            popcount(a ^ b)
            for i, a in enumerate(codewords)
            for b in codewords[i + 1 :]
        )
        assert minimum == 3

    def test_check_positions_are_powers_of_two(self):
        code = HammingSEC(11)
        data_cw_bits = set(code._data_cw_shift)
        check_bits = set(range(code.n)) - data_cw_bits
        assert check_bits == {0, 1, 3, 7}  # positions 1,2,4,8 (0-based)


class TestBCHAlgebra:
    def test_generator_divides_every_codeword(self):
        code = BCH(32, 2, m=6)
        rng = random.Random(3)
        for _ in range(100):
            codeword = code.encode(rng.getrandbits(32))
            assert gf2_mod(codeword, code.generator) == 0

    def test_code_is_linear(self):
        code = BCH(32, 2, m=6)
        rng = random.Random(4)
        for _ in range(50):
            a = code.encode(rng.getrandbits(32))
            b = code.encode(rng.getrandbits(32))
            assert code.is_codeword(a ^ b)

    def test_generator_degree_equals_check_bits(self):
        for t in (1, 2, 3):
            code = BCH(64, t, m=8)
            assert gf2_degree(code.generator) == code.num_check_bits

    def test_designed_distance_no_codeword_lighter_than_2t_plus_1(self):
        # Sampled: no nonzero codeword of weight <= 2t may exist.
        code = BCH(16, 2, m=6)
        rng = random.Random(5)
        lightest = min(
            popcount(code.encode(rng.getrandbits(16) or 1)) for _ in range(2000)
        )
        assert lightest >= 2 * code.t + 1

    def test_syndromes_of_codewords_vanish(self):
        code = BCH(32, 3, m=7)
        rng = random.Random(6)
        for _ in range(30):
            codeword = code.encode(rng.getrandbits(32))
            assert not any(code.syndromes(codeword))

    def test_shortening_consistency(self):
        # A shortened codeword, zero-extended, is a codeword of the
        # parent (same generator) code.
        code = BCH(32, 2, m=6)
        rng = random.Random(7)
        codeword = code.encode(rng.getrandbits(32))
        assert gf2_mod(codeword, code.generator) == 0
        assert code.shortened_by == code.n_full - code.n


class TestCRCAlgebra:
    def test_syndrome_is_affine(self):
        # crc(m1) ^ crc(m2) depends only on m1 ^ m2 (the init cancels).
        engine = CRC31_SUDOKU
        rng = random.Random(8)
        for _ in range(50):
            m1 = rng.getrandbits(128)
            m2 = rng.getrandbits(128)
            delta = m1 ^ m2
            lhs = engine.compute_int(m1, 128) ^ engine.compute_int(m2, 128)
            rhs = engine.compute_int(delta, 128) ^ engine.compute_int(0, 128)
            assert lhs == rhs

    def test_shift_property(self):
        # Appending zero bytes maps the CRC through the polynomial ring:
        # verified indirectly -- the same message at two lengths never
        # shares a syndrome relationship by accident.
        engine = CRC(16, 0x1021)
        value = 0xAB
        assert engine.compute_int(value, 8) != engine.compute_int(value, 16)

    def test_error_burst_detection(self):
        # Any burst shorter than the CRC width is always detected.
        engine = CRC31_SUDOKU
        rng = random.Random(9)
        base = rng.getrandbits(512)
        reference = engine.compute_int(base, 512)
        for _ in range(200):
            length = rng.randint(1, 31)
            start = rng.randint(0, 512 - length)
            pattern = rng.getrandbits(length) | 1 | (1 << (length - 1))
            corrupted = base ^ (pattern << start)
            if corrupted == base:
                continue
            assert engine.compute_int(corrupted, 512) != reference


class TestFieldTowers:
    @pytest.mark.parametrize("m", [3, 4, 5, 6])
    def test_frobenius_is_additive(self, m):
        field = GF2m(m)
        for a in range(field.size):
            for b in range(0, field.size, 3):
                lhs = field.mul(a ^ b, a ^ b)
                rhs = field.mul(a, a) ^ field.mul(b, b)
                assert lhs == rhs

    def test_every_element_has_unique_cube_root_when_coprime(self):
        # In GF(2^5), gcd(3, 31) = 1, so cubing is a bijection.
        field = GF2m(5)
        cubes = {field.pow(a, 3) for a in range(1, field.size)}
        assert len(cubes) == field.size - 1

    def test_carryless_multiply_degree_additivity(self):
        rng = random.Random(10)
        for _ in range(100):
            a = rng.getrandbits(20) | (1 << 19)
            b = rng.getrandbits(12) | (1 << 11)
            assert gf2_degree(gf2_mul(a, b)) == gf2_degree(a) + gf2_degree(b)


class TestLineCodecNeverLies:
    """At any fault weight, the line codec never endorses wrong data."""

    def test_sweep_fault_weights(self):
        from repro.core.linecodec import DecodeStatus, LineCodec

        codec = LineCodec()
        rng = random.Random(11)
        data = rng.getrandbits(512)
        word = codec.encode(data)
        for weight in range(0, 12):
            for _ in range(20):
                positions = rng.sample(range(codec.stored_bits), weight)
                decode = codec.decode(flip_bits(word, positions))
                if decode.status is not DecodeStatus.UNCORRECTABLE:
                    assert decode.data == data, (
                        f"codec endorsed wrong data at weight {weight}"
                    )
