"""Unit and property tests for repro.coding.hamming."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.hamming import (
    HammingSEC,
    HammingSECDED,
    check_bits_needed,
)


class TestCheckBits:
    def test_known_values(self):
        # Classic Hamming parameters: (k, r).
        assert check_bits_needed(4) == 3
        assert check_bits_needed(11) == 4
        assert check_bits_needed(26) == 5
        assert check_bits_needed(57) == 6
        assert check_bits_needed(120) == 7

    def test_paper_layout_needs_ten_bits(self):
        # 512 data + 31 CRC bits -> 10 check bits (paper section II-D).
        assert check_bits_needed(543) == 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            check_bits_needed(0)


class TestHammingSECSmall:
    """Exhaustive checks on a small code (k = 11, n = 15)."""

    def setup_method(self):
        self.code = HammingSEC(11)

    def test_dimensions(self):
        assert (self.code.k, self.code.r, self.code.n) == (11, 4, 15)

    def test_roundtrip_all_values(self):
        for data in range(1 << 11):
            codeword = self.code.encode(data)
            assert self.code.syndrome(codeword) == 0
            assert self.code.extract_data(codeword) == data

    def test_corrects_every_single_bit_error(self):
        data = 0b10110011010
        codeword = self.code.encode(data)
        for position in range(self.code.n):
            result = self.code.correct(codeword ^ (1 << position))
            assert result.valid
            assert result.flipped_position == position
            assert result.corrected_word == codeword
            assert result.data == data

    def test_double_error_miscorrects_or_flags(self):
        # With two errors a plain SEC code either miscorrects (flips an
        # innocent third bit) or reports an out-of-range syndrome; it
        # never returns the original codeword.
        data = 0b01010101010
        codeword = self.code.encode(data)
        rng = random.Random(7)
        for _ in range(100):
            p1, p2 = rng.sample(range(self.code.n), 2)
            corrupted = codeword ^ (1 << p1) ^ (1 << p2)
            result = self.code.correct(corrupted)
            assert result.corrected_word != codeword

    def test_oversized_data_rejected(self):
        with pytest.raises(ValueError):
            self.code.encode(1 << 11)

    def test_oversized_codeword_rejected(self):
        with pytest.raises(ValueError):
            self.code.syndrome(1 << 15)


class TestHammingSECPaperSize:
    """Sampled checks on the 543-bit payload code the engines use."""

    def setup_method(self):
        self.code = HammingSEC(543)

    def test_dimensions(self):
        assert (self.code.k, self.code.r, self.code.n) == (543, 10, 553)

    def test_roundtrip_random(self):
        rng = random.Random(11)
        for _ in range(25):
            data = rng.getrandbits(543)
            codeword = self.code.encode(data)
            assert self.code.syndrome(codeword) == 0
            assert self.code.extract_data(codeword) == data

    def test_single_bit_correction_sampled(self):
        rng = random.Random(12)
        data = rng.getrandbits(543)
        codeword = self.code.encode(data)
        for position in rng.sample(range(553), 60):
            result = self.code.correct(codeword ^ (1 << position))
            assert result.valid
            assert result.corrected_word == codeword
            assert result.data == data


class TestHammingSECDED:
    def setup_method(self):
        self.code = HammingSECDED(64)

    def test_dimensions(self):
        inner = HammingSEC(64)
        assert self.code.n == inner.n + 1
        assert self.code.r == inner.r + 1

    def test_clean_roundtrip(self):
        rng = random.Random(13)
        for _ in range(30):
            data = rng.getrandbits(64)
            codeword = self.code.encode(data)
            result = self.code.correct(codeword)
            assert not result.double_error_detected
            assert result.flipped_position is None
            assert result.data == data

    def test_single_error_corrected(self):
        rng = random.Random(14)
        data = rng.getrandbits(64)
        codeword = self.code.encode(data)
        for position in rng.sample(range(self.code.n), 30):
            result = self.code.correct(codeword ^ (1 << position))
            assert not result.double_error_detected
            assert result.data == data

    def test_double_error_detected_never_miscorrected(self):
        rng = random.Random(15)
        data = rng.getrandbits(64)
        codeword = self.code.encode(data)
        for _ in range(200):
            p1, p2 = rng.sample(range(self.code.n), 2)
            result = self.code.correct(codeword ^ (1 << p1) ^ (1 << p2))
            assert result.double_error_detected
            assert result.flipped_position is None


@settings(max_examples=40)
@given(st.integers(min_value=0, max_value=(1 << 57) - 1))
def test_property_encode_decode_roundtrip(data):
    code = HammingSEC(57)
    assert code.decode(code.encode(data)) == data


@settings(max_examples=40)
@given(st.integers(min_value=0, max_value=(1 << 57) - 1), st.data())
def test_property_single_error_always_corrected(data, draw):
    code = HammingSEC(57)
    codeword = code.encode(data)
    position = draw.draw(st.integers(min_value=0, max_value=code.n - 1))
    result = code.correct(codeword ^ (1 << position))
    assert result.valid and result.data == data
