"""Unit and property tests for repro.coding.bitvec."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.coding.bitvec import (
    BitVector,
    bit_positions,
    bits_from_int,
    flip_bits,
    hamming_distance,
    int_from_bits,
    mask_of,
    popcount,
    random_bits,
    random_error_vector,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_powers_of_two(self):
        for shift in range(0, 600, 37):
            assert popcount(1 << shift) == 1

    def test_all_ones(self):
        assert popcount(mask_of(553)) == 553

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_matches_reference_on_wide_values(self):
        rng = random.Random(99)
        for _ in range(200):
            value = rng.getrandbits(rng.randrange(1, 700))
            assert popcount(value) == bin(value).count("1")

    def test_table_fallback_matches_kernel(self):
        # The 3.9 fallback counts little-endian bytes through a table;
        # keep it honest on 3.10+ too by reconstructing it here.
        table = bytes(bin(byte).count("1") for byte in range(256))

        def fallback(value):
            if value == 0:
                return 0
            data = value.to_bytes((value.bit_length() + 7) // 8, "little")
            return sum(map(table.__getitem__, data))

        rng = random.Random(7)
        for _ in range(100):
            value = rng.getrandbits(rng.randrange(1, 700))
            assert fallback(value) == popcount(value)


class TestBitPositions:
    def test_empty(self):
        assert bit_positions(0) == []

    def test_known_pattern(self):
        assert bit_positions(0b1010) == [1, 3]

    def test_sorted_and_complete(self):
        value = (1 << 5) | (1 << 100) | (1 << 552)
        assert bit_positions(value) == [5, 100, 552]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_positions(-3)


class TestFlipBits:
    def test_flip_twice_is_identity(self):
        value = 0xDEADBEEF
        assert flip_bits(flip_bits(value, [3, 17]), [3, 17]) == value

    def test_flip_sets_and_clears(self):
        assert flip_bits(0, [0, 2]) == 0b101
        assert flip_bits(0b101, [0]) == 0b100

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            flip_bits(0, [-1])

    def test_width_bound_accepts_in_range(self):
        assert flip_bits(0, [0, 7], width=8) == 0b10000001

    def test_width_bound_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range for a 8-bit"):
            flip_bits(0, [8], width=8)

    def test_no_width_means_unbounded(self):
        assert flip_bits(0, [512]) == 1 << 512


class TestHammingDistance:
    def test_identical(self):
        assert hamming_distance(12345, 12345) == 0

    def test_known(self):
        assert hamming_distance(0b1100, 0b1001) == 2


class TestRandomHelpers:
    def test_random_bits_width(self):
        rng = random.Random(1)
        for width in (0, 1, 64, 553):
            assert random_bits(width, rng) >> width == 0

    def test_random_error_vector_weight(self):
        rng = random.Random(2)
        for weight in (0, 1, 5, 100):
            vector = random_error_vector(553, weight, rng)
            assert popcount(vector) == weight

    def test_random_error_vector_bounds(self):
        with pytest.raises(ValueError):
            random_error_vector(8, 9)


class TestBitConversions:
    def test_roundtrip(self):
        value = 0b110101
        assert int_from_bits(bits_from_int(value, 8)) == value

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            int_from_bits([0, 2])

    def test_width_overflow(self):
        with pytest.raises(ValueError):
            bits_from_int(256, 8)


class TestBitVector:
    def test_construction_validates_width(self):
        with pytest.raises(ValueError):
            BitVector(4, 2)

    def test_zeros_ones(self):
        assert BitVector.zeros(8).value == 0
        assert BitVector.ones(8).value == 0xFF

    def test_bit_access(self):
        vector = BitVector(0b1010, 4)
        assert [vector.bit(i) for i in range(4)] == [0, 1, 0, 1]
        with pytest.raises(IndexError):
            vector.bit(4)

    def test_with_bit(self):
        vector = BitVector.zeros(4).with_bit(2, 1)
        assert vector.value == 0b100
        assert vector.with_bit(2, 0).value == 0

    def test_flipped(self):
        assert BitVector(0b1000, 4).flipped([0, 3]).value == 0b0001

    def test_extract_concat_roundtrip(self):
        vector = BitVector(0xABCD, 16)
        low = vector.extract(0, 8)
        high = vector.extract(8, 8)
        assert low.concat(high) == vector

    def test_xor_and_or_invert(self):
        a = BitVector(0b1100, 4)
        b = BitVector(0b1010, 4)
        assert (a ^ b).value == 0b0110
        assert (a & b).value == 0b1000
        assert (a | b).value == 0b1110
        assert (~a).value == 0b0011

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0, 4) ^ BitVector(0, 5)

    def test_bytes_roundtrip(self):
        vector = BitVector(0x0102, 16)
        assert BitVector.from_bytes(vector.to_bytes()) == vector

    def test_iteration_matches_bits(self):
        vector = BitVector(0b101, 3)
        assert list(vector) == [1, 0, 1]


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_property_xor_popcount_is_distance(a, b):
    assert popcount(a ^ b) == hamming_distance(a, b)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=0, max_size=32))
def test_property_bytes_roundtrip(byte_values):
    data = bytes(byte_values)
    assert BitVector.from_bytes(data).to_bytes() == data


@given(st.integers(min_value=1, max_value=300), st.data())
def test_property_flip_involution(width, data):
    value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    positions = data.draw(
        st.lists(st.integers(min_value=0, max_value=width - 1), max_size=10)
    )
    # Flipping the same multiset twice restores the value only when each
    # position appears an even number of times overall; flipping the set
    # (deduplicated) twice always restores.
    unique = list(set(positions))
    assert flip_bits(flip_bits(value, unique), unique) == value
