"""Unit tests for repro.coding.parity."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.parity import (
    ParityAccumulator,
    column_parities,
    contiguous_groups,
    diagonal_parity,
    interleave_groups,
    popcount_parity,
    reconstruct,
    row_parity_bits,
    xor_reduce,
)


class TestXorReduce:
    def test_empty(self):
        assert xor_reduce([]) == 0

    def test_self_inverse(self):
        values = [3, 7, 3, 7]
        assert xor_reduce(values) == 0

    def test_known(self):
        assert xor_reduce([0b1100, 0b1010]) == 0b0110


class TestReconstruct:
    def test_recovers_missing_member(self):
        rng = random.Random(1)
        members = [rng.getrandbits(64) for _ in range(8)]
        parity = xor_reduce(members)
        for index in range(8):
            others = members[:index] + members[index + 1 :]
            assert reconstruct(parity, others) == members[index]


class TestParityAccumulator:
    def test_incremental_matches_rebuild(self):
        rng = random.Random(2)
        width = 64
        members = [0] * 8
        accumulator = ParityAccumulator(width)
        for _ in range(100):
            slot = rng.randrange(8)
            new_value = rng.getrandbits(width)
            accumulator.update(members[slot], new_value)
            members[slot] = new_value
        assert accumulator.parity == xor_reduce(members)
        assert accumulator.mismatch(members) == 0

    def test_mismatch_localises_error(self):
        members = [0b1111, 0b0000]
        accumulator = ParityAccumulator(4)
        accumulator.rebuild(members)
        members[0] ^= 0b0101  # corrupt two bits
        assert accumulator.mismatch(members) == 0b0101

    def test_width_validation(self):
        accumulator = ParityAccumulator(4)
        with pytest.raises(ValueError):
            accumulator.update(0, 16)
        with pytest.raises(ValueError):
            ParityAccumulator(0)

    def test_set_parity(self):
        accumulator = ParityAccumulator(8)
        accumulator.set_parity(0xAB)
        assert accumulator.parity == 0xAB


class TestDiagonalParity:
    def test_zero_members(self):
        assert diagonal_parity([0, 0, 0], 8) == 0

    def test_single_member_identity(self):
        assert diagonal_parity([0b1010], 8) == 0b1010

    def test_rotation_applied_per_position(self):
        # Member 1 is rotated left by 1.
        assert diagonal_parity([0, 0b0001], 4) == 0b0010

    def test_wraparound(self):
        assert diagonal_parity([0, 0b1000], 4) == 0b0001

    def test_width_validation(self):
        with pytest.raises(ValueError):
            diagonal_parity([16], 4)


class TestRowAndColumnParity:
    def test_column_parities_is_xor(self):
        members = [0b11, 0b01]
        assert column_parities(members, 2) == 0b10

    def test_row_parity_bits(self):
        assert row_parity_bits([0b111, 0b11, 0]) == [1, 0, 0]

    def test_popcount_parity(self):
        assert popcount_parity(0b101) == 0
        assert popcount_parity(0b111) == 1
        with pytest.raises(ValueError):
            popcount_parity(-1)


class TestGroupPartitions:
    def test_contiguous(self):
        groups = contiguous_groups(8, 4)
        assert groups == {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}

    def test_interleaved(self):
        groups = interleave_groups(8, 4)
        assert groups == {0: [0, 2, 4, 6], 1: [1, 3, 5, 7]}

    def test_partitions_are_disjoint_and_complete(self):
        for builder in (contiguous_groups, interleave_groups):
            groups = builder(64, 8)
            seen = sorted(item for members in groups.values() for item in members)
            assert seen == list(range(64))

    def test_validation(self):
        with pytest.raises(ValueError):
            contiguous_groups(10, 4)
        with pytest.raises(ValueError):
            interleave_groups(10, 4)


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=2, max_size=16))
def test_property_reconstruct_any_member(members):
    parity = xor_reduce(members)
    index = len(members) // 2
    others = members[:index] + members[index + 1 :]
    assert reconstruct(parity, others) == members[index]
