"""Unit and property tests for repro.coding.crc."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.bitvec import flip_bits
from repro.coding.crc import (
    CHECK_VALUES,
    CRC,
    CRC8,
    CRC16_CCITT,
    CRC31_SUDOKU,
    CRC32,
    CRC31_DETECTION,
    DetectionModel,
    crc31,
    reflect,
    reflect_bytewise,
)

CHECK_INPUT = b"123456789"


class TestCatalogueCheckValues:
    def test_crc32(self):
        assert CRC32.compute(CHECK_INPUT) == CHECK_VALUES["CRC-32"]

    def test_crc16_ccitt(self):
        assert CRC16_CCITT.compute(CHECK_INPUT) == CHECK_VALUES["CRC-16/CCITT-FALSE"]

    def test_crc8(self):
        assert CRC8.compute(CHECK_INPUT) == CHECK_VALUES["CRC-8"]

    def test_crc31_philips(self):
        assert CRC31_SUDOKU.compute(CHECK_INPUT) == CHECK_VALUES["CRC-31/PHILIPS"]


class TestEngineBasics:
    def test_rejects_narrow_width(self):
        with pytest.raises(ValueError):
            CRC(4, 0x3)

    def test_rejects_oversized_poly(self):
        with pytest.raises(ValueError):
            CRC(8, 0x1FF)

    def test_reflect(self):
        assert reflect(0b0001, 4) == 0b1000
        assert reflect(0xA5, 8) == 0xA5  # palindromic byte

    def test_reflect_bytewise_matches_bit_loop(self):
        # The refout fast path must be a drop-in for the O(width) bit
        # loop it replaced -- including non-byte widths like CRC-31.
        rng = random.Random(11)
        for width in (8, 16, 24, 31, 32, 64):
            for _ in range(50):
                value = rng.getrandbits(width)
                assert reflect_bytewise(value, width) == reflect(value, width)

    def test_reflect_bytewise_involution(self):
        rng = random.Random(12)
        for width in (8, 31, 32):
            for _ in range(20):
                value = rng.getrandbits(width)
                assert reflect_bytewise(
                    reflect_bytewise(value, width), width
                ) == value

    def test_reflected_crcs_pin_check_values(self):
        # CRC-32 (refout=True) exercises the byte-wise reflection path
        # end to end against the published check value.
        assert CRC32.compute(CHECK_INPUT) == 0xCBF43926
        assert CRC31_SUDOKU.compute(CHECK_INPUT) == CHECK_VALUES["CRC-31/PHILIPS"]

    def test_compute_int_requires_byte_multiple(self):
        with pytest.raises(ValueError):
            CRC31_SUDOKU.compute_int(0, 9)

    def test_compute_int_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            CRC31_SUDOKU.compute_int(1 << 16, 16)

    def test_compute_int_matches_bytes(self):
        value = int.from_bytes(CHECK_INPUT, "little")
        assert CRC31_SUDOKU.compute_int(value, 72) == CRC31_SUDOKU.compute(CHECK_INPUT)

    def test_bit_serial_matches_table_driven(self):
        rng = random.Random(3)
        engine = CRC(16, 0x1021, init=0xFFFF)
        for _ in range(20):
            value = rng.getrandbits(64)
            assert engine.compute_bits(value, 64) == engine.compute_int(value, 64)

    def test_crc31_helper(self):
        value = random.Random(4).getrandbits(512)
        assert crc31(value) == CRC31_SUDOKU.compute_int(value, 512)

    def test_matches(self):
        value = random.Random(5).getrandbits(512)
        stored = crc31(value)
        assert CRC31_SUDOKU.matches(value, 512, stored)
        assert not CRC31_SUDOKU.matches(value ^ 1, 512, stored)


class TestErrorDetection:
    """CRC-31 must detect every small error pattern on a 64-byte line."""

    @pytest.mark.parametrize("weight", [1, 2, 3, 4, 5, 6, 7])
    def test_detects_small_patterns(self, weight):
        rng = random.Random(weight)
        data = rng.getrandbits(512)
        reference = crc31(data)
        for _ in range(60):
            positions = rng.sample(range(512), weight)
            corrupted = flip_bits(data, positions)
            assert crc31(corrupted) != reference, (
                f"undetected {weight}-bit error at {positions}"
            )

    def test_heavy_random_patterns_mostly_detected(self):
        rng = random.Random(99)
        data = rng.getrandbits(512)
        reference = crc31(data)
        misses = sum(
            1
            for _ in range(2000)
            if crc31(flip_bits(data, rng.sample(range(512), 16))) == reference
        )
        # Misdetection probability is 2^-31; zero misses expected here.
        assert misses == 0


class TestDetectionModel:
    def test_paper_parameters(self):
        assert CRC31_DETECTION.width == 31
        assert CRC31_DETECTION.guaranteed_detect == 7
        assert CRC31_DETECTION.misdetect_probability == pytest.approx(2.0 ** -31)

    def test_custom_model(self):
        model = DetectionModel(width=16, guaranteed_detect=3,
                               misdetect_probability=2.0 ** -16)
        assert model.width == 16


@settings(max_examples=50)
@given(st.binary(min_size=0, max_size=64))
def test_property_crc_is_deterministic(data):
    assert CRC31_SUDOKU.compute(data) == CRC31_SUDOKU.compute(data)


@settings(max_examples=50)
@given(st.binary(min_size=1, max_size=64), st.data())
def test_property_single_bit_always_detected(data, draw):
    bit = draw.draw(st.integers(min_value=0, max_value=8 * len(data) - 1))
    value = int.from_bytes(data, "little")
    corrupted = value ^ (1 << bit)
    width = 8 * len(data)
    assert (
        CRC31_SUDOKU.compute_int(corrupted, width)
        != CRC31_SUDOKU.compute_int(value, width)
    )
