"""Public-API surface tests: exports, docstring example, version."""

import doctest

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing name {name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_engine_hierarchy(self):
        assert issubclass(repro.SuDokuX, repro.SuDokuEngine)
        assert issubclass(repro.SuDokuY, repro.SuDokuEngine)
        assert issubclass(repro.SuDokuZ, repro.SuDokuY)

    def test_subpackage_imports(self):
        import repro.analysis
        import repro.baselines
        import repro.cache
        import repro.coding
        import repro.core
        import repro.perf
        import repro.reliability
        import repro.sttram

        assert repro.coding.BCH is not None
        assert repro.reliability.SuDokuReliabilityModel is not None
        assert repro.perf.SystemSimulator is not None
        assert repro.baselines.RAID6Cache is not None

    def test_paper_constants_exposed(self):
        assert repro.PAPER.sudoku_z_vs_ecc6 == 874.0


class TestDocstringExample:
    def test_module_doctest(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures"


class TestCrossModuleContracts:
    def test_codec_widths_agree_across_layers(self):
        from repro.core.layout import LineLayout

        codec = repro.LineCodec()
        layout = LineLayout()
        assert codec.stored_bits == layout.stored_bits == 553

    def test_scrub_protocol_satisfied_by_engines_and_baselines(self):
        from repro.baselines.common import BaselineCache
        from repro.core.engine import SuDokuEngine

        for cls in (SuDokuEngine, BaselineCache):
            assert callable(getattr(cls, "scrub_line"))
            assert callable(getattr(cls, "scrub_frames"))

    def test_outcome_labels_match_scrub_report_conventions(self):
        from repro.core.outcomes import Outcome

        documented = {
            "clean", "corrected_ecc1", "corrected_raid4", "corrected_sdr",
            "corrected_hash2", "due", "metadata_due", "sdc",
        }
        assert {outcome.value for outcome in Outcome} == documented
