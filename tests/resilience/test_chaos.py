"""Tests for metadata chaos injection and engine-side graceful degradation."""

import random

import pytest

from repro.core.engine import build_engine
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.resilience import ChaosInjector, ChaosPolicy
from repro.sttram.array import STTRAMArray

GROUP_SIZE = 16


def make_engine(level="X", group_size=GROUP_SIZE, seed=7):
    codec = LineCodec()
    array = STTRAMArray(group_size * group_size, codec.stored_bits)
    engine = build_engine(level, array, group_size=group_size, codec=codec)
    rng = random.Random(seed)
    for frame in range(array.num_lines):
        engine.write_data(frame, rng.getrandbits(engine.data_bits))
    return engine


class TestChaosPolicy:
    def test_rejects_non_probability(self):
        with pytest.raises(ValueError):
            ChaosPolicy(plt_flip_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPolicy(map_swap_rate=-0.1)

    def test_enabled(self):
        assert not ChaosPolicy().enabled
        assert ChaosPolicy(visit_drop_rate=0.1).enabled

    def test_as_dict_round_trips(self):
        policy = ChaosPolicy(plt_flip_rate=0.25)
        assert ChaosPolicy(**policy.as_dict()) == policy


class TestChaosInjector:
    def test_zero_policy_consumes_no_randomness(self):
        engine = make_engine()
        injector = ChaosInjector(ChaosPolicy(), seed=3)
        before = injector.rng_state()
        assert injector.corrupt_metadata(engine) == {}
        visits, applied = injector.perturb_visits([1, 2, 3])
        assert visits == [1, 2, 3] and applied == {}
        assert injector.rng_state() == before

    def test_flip_rate_one_corrupts_every_group(self):
        engine = make_engine()
        injector = ChaosInjector(ChaosPolicy(plt_flip_rate=1.0), seed=3)
        applied = injector.corrupt_metadata(engine)
        assert applied["plt_flips"] == engine.plt.num_groups
        assert all(
            not engine.plt.verify(g) for g in range(engine.plt.num_groups)
        )

    def test_swap_fails_location_keyed_crc(self):
        engine = make_engine()
        injector = ChaosInjector(ChaosPolicy(map_swap_rate=1.0), seed=3)
        applied = injector.corrupt_metadata(engine)
        assert applied["map_swaps"] > 0
        plt, _mapper = engine._tables()[0]
        # The entry CRC covers the group index, so a swapped entry fails
        # verification at its new slot even though it is internally
        # consistent.
        assert any(not plt.verify(g) for g in range(plt.num_groups))

    def test_visit_drop_and_duplicate(self):
        injector = ChaosInjector(ChaosPolicy(visit_drop_rate=1.0), seed=0)
        visits, applied = injector.perturb_visits([4, 5])
        assert visits == [] and applied["visits_dropped"] == 2
        injector = ChaosInjector(ChaosPolicy(visit_duplicate_rate=1.0), seed=0)
        visits, applied = injector.perturb_visits([4, 5])
        assert visits == [4, 4, 5, 5] and applied["visits_duplicated"] == 2

    def test_rng_state_round_trip(self):
        injector = ChaosInjector(ChaosPolicy(plt_flip_rate=0.5), seed=11)
        engine = make_engine()
        injector.corrupt_metadata(engine)
        state = injector.rng_state()
        first = injector.corrupt_metadata(make_engine())
        injector.restore_rng_state(state)
        second = injector.corrupt_metadata(make_engine())
        assert first == second


class TestEngineDegradation:
    """Corrupted metadata degrades to detected outcomes, never SDC."""

    def test_corrupt_parity_yields_metadata_due_on_x(self):
        engine = make_engine("X")
        frame = 5
        group = engine.mapper.group_of(frame)
        engine.array.inject(frame, 0b11)  # beyond ECC-1
        engine.plt.corrupt(group, 1 << 9)
        counts = engine.scrub_frames([frame])
        assert counts.get("metadata_due", 0) == 1
        assert counts.get("sdc", 0) == 0
        assert engine.stats.metadata_faults_detected >= 1
        assert engine.stats.metadata_quarantines >= 1
        assert engine.plt.is_quarantined(group)

    def test_swapped_entry_never_reconstructs_silently(self):
        engine = make_engine("X")
        frame = 2
        group = engine.mapper.group_of(frame)
        other = (group + 1) % engine.plt.num_groups
        engine.plt.swap(group, other)
        engine.array.inject(frame, 0b11)
        counts = engine.scrub_frames([frame])
        # Every code in the stack is linear, so the wrong group's parity
        # would reconstruct a valid-but-wrong codeword: only the
        # location-keyed entry CRC stands between this and an SDC.
        assert counts.get("sdc", 0) == 0
        assert counts.get("metadata_due", 0) == 1
        assert engine.stats.metadata_faults_detected >= 1

    def test_stale_entry_detected_by_recompute_on_clean_scan(self):
        engine = make_engine("X")
        frame = 2
        group = engine.mapper.group_of(frame)
        # A stale-but-consistent entry (parity never updated for a
        # write) passes the CRC; the clean-scan recompute catches it.
        engine.plt.rebuild(group, [0] * engine.group_size)
        counts = engine.scrub_frames([frame])
        assert counts.get("sdc", 0) == 0
        report = engine.audit_metadata(repair=True)
        assert report["recompute_faults"] >= 1
        assert report["rebuilt"] >= 1

    def test_audit_rebuilds_crc_fault(self):
        engine = make_engine("X")
        group = 3
        engine.plt.corrupt(group, 1)
        report = engine.audit_metadata(repair=True)
        assert report["crc_faults"] >= 1
        assert report["rebuilt"] >= 1
        assert engine.plt.verify(group)
        assert not engine.plt.is_quarantined(group)
        members = [
            engine.array.read(f) for f in engine.mapper.members(group)
        ]
        assert engine.plt.mismatch(group, members) == 0

    def test_audit_detects_swap(self):
        engine = make_engine("X")
        engine.plt.swap(0, 1)
        report = engine.audit_metadata(repair=True)
        assert report["crc_faults"] >= 2
        assert report["rebuilt"] >= 2
        assert engine.plt.verify(0) and engine.plt.verify(1)

    def test_z_falls_back_to_hash2_after_metadata_fault(self):
        engine = make_engine("Z")
        frame = 9
        group = engine.mapper.group_of(frame)
        engine.array.inject(frame, 0b11)
        engine.plt.corrupt(group, 1 << 4)
        counts = engine.scrub_frames([frame])
        # Hash-1's PLT is untrustworthy, but Hash-2's side group is
        # intact: the line must be repaired through it, not lost.
        assert counts.get("sdc", 0) == 0
        assert counts.get("metadata_due", 0) == 0
        assert engine.array.is_clean(frame)
        assert engine.stats.metadata_faults_detected >= 1

    def test_z_reports_metadata_due_when_both_hashes_poisoned(self):
        engine = make_engine("Z")
        frame = 9
        engine.array.inject(frame, 0b11)
        for plt, mapper in engine._tables():
            plt.corrupt(mapper.group_of(frame), 1 << 4)
        counts = engine.scrub_frames([frame])
        assert counts.get("sdc", 0) == 0
        assert counts.get("metadata_due", 0) == 1

    def test_write_data_rebuilds_quarantined_group(self):
        engine = make_engine("X")
        frame = 4
        group = engine.mapper.group_of(frame)
        engine.plt.corrupt(group, 1 << 2)
        engine.write_data(frame, 12345)
        # The write must not fold its delta into the corrupt entry and
        # launder it behind a fresh CRC: the entry is rebuilt instead.
        members = [
            engine.array.read(f) for f in engine.mapper.members(group)
        ]
        assert engine.plt.verify(group)
        assert engine.plt.mismatch(group, members) == 0

    def test_metadata_due_is_failure_not_sdc(self):
        assert Outcome.METADATA_DUE.is_failure
        assert Outcome.METADATA_DUE.is_due
        assert Outcome.METADATA_DUE is not Outcome.SDC
