"""Tests for checkpoint files, deadline watchdog, and atomic writes."""

import json
import os
import random

import numpy as np
import pytest

from repro.obs import atomic_write_json, atomic_write_text
from repro.resilience import (
    CHECKPOINT_VERSION,
    CancelWatch,
    Checkpointer,
    CheckpointError,
    Deadline,
    build_payload,
    job_checkpoint_path,
    load_checkpoint,
    numpy_rng_state,
    python_rng_state,
    require_config_match,
    restore_numpy_rng_state,
    restore_python_rng_state,
)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "one")
        atomic_write_text(str(path), "two")
        assert path.read_text() == "two"

    def test_no_tmp_droppings_on_success(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(str(path), {"a": 1})
        assert sorted(os.listdir(tmp_path)) == ["out.json"]
        assert json.loads(path.read_text()) == {"a": 1}

    def test_failure_leaves_previous_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(str(path), {"a": 1})

        class Unserialisable:
            def __str__(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            atomic_write_json(str(path), {"bad": Unserialisable()})
        assert json.loads(path.read_text()) == {"a": 1}
        assert sorted(os.listdir(tmp_path)) == ["out.json"]


class TestDeadline:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_expiry_with_injected_clock(self):
        now = [100.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(5.0)
        now[0] = 104.9
        assert not deadline.expired()
        now[0] = 105.1
        assert deadline.expired()
        assert deadline.remaining() < 0


class TestCancelWatch:
    def test_reason_is_deadline_before_cancel_fires(self):
        assert Deadline.reason == "deadline"
        watch = CancelWatch(lambda: False)
        assert not watch.expired()
        assert watch.reason == "deadline"
        assert watch.remaining() == float("inf")

    def test_cancel_fires_and_latches(self):
        state = {"cancel": False}
        watch = CancelWatch(lambda: state["cancel"])
        assert not watch.expired()
        state["cancel"] = True
        assert watch.expired()
        assert watch.reason == "cancelled"
        # Latches: a flapping callback cannot un-cancel the job.
        state["cancel"] = False
        assert watch.expired()
        assert watch.reason == "cancelled"

    def test_composed_deadline_keeps_its_own_reason(self):
        now = [100.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        watch = CancelWatch(lambda: False, deadline=deadline)
        assert not watch.expired()
        assert watch.remaining() == pytest.approx(5.0)
        now[0] = 106.0
        assert watch.expired()
        assert watch.reason == "deadline"

    def test_cancel_wins_when_it_fires_first(self):
        now = [100.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        watch = CancelWatch(lambda: True, deadline=deadline)
        assert watch.expired()
        assert watch.reason == "cancelled"


class TestJobCheckpointPath:
    def test_digest_keyed_layout(self, tmp_path):
        path = job_checkpoint_path(str(tmp_path), "ab12cd")
        assert path == os.path.join(str(tmp_path), "job-ab12cd.ck.json")

    def test_rejects_traversal_and_empty(self, tmp_path):
        for digest in ("", "../x", "a/b", "a.b", "a\\b"):
            with pytest.raises(ValueError):
                job_checkpoint_path(str(tmp_path), digest)


class TestCheckpointer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Checkpointer(path="")
        with pytest.raises(ValueError):
            Checkpointer(path="x.json", every=-1)

    def test_due_schedule(self):
        ck = Checkpointer(path="x.json", every=3)
        assert [n for n in range(1, 10) if ck.due(n)] == [3, 6, 9]
        assert not Checkpointer(path="x.json", every=0).due(5)
        assert not Checkpointer(path="x.json", every=3).due(0)

    def test_save_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = Checkpointer(path=str(path), every=1)
        payload = build_payload("montecarlo", {"ber": 1e-3}, 4, {"n": 4}, {})
        ck.save(payload)
        assert ck.writes == 1
        loaded = load_checkpoint(str(path), "montecarlo")
        assert loaded == payload


class TestLoadCheckpoint:
    def write(self, tmp_path, payload):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def good_payload(self):
        return build_payload("montecarlo", {"ber": 1e-3}, 2, {}, {})

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "nope.json"), "montecarlo")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            load_checkpoint(str(path), "montecarlo")

    def test_not_an_object(self, tmp_path):
        path = self.write(tmp_path, [1, 2, 3])
        with pytest.raises(CheckpointError, match="not a JSON object"):
            load_checkpoint(path, "montecarlo")

    def test_wrong_version(self, tmp_path):
        payload = self.good_payload()
        payload["version"] = CHECKPOINT_VERSION + 1
        path = self.write(tmp_path, payload)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(path, "montecarlo")

    def test_wrong_kind(self, tmp_path):
        path = self.write(tmp_path, self.good_payload())
        with pytest.raises(CheckpointError, match="snapshot"):
            load_checkpoint(path, "raresim")

    def test_missing_key(self, tmp_path):
        payload = self.good_payload()
        del payload["rng"]
        path = self.write(tmp_path, payload)
        with pytest.raises(CheckpointError, match="missing 'rng'"):
            load_checkpoint(path, "montecarlo")

    def test_error_messages_are_one_line(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{bad")
        try:
            load_checkpoint(str(path), "montecarlo")
        except CheckpointError as error:
            assert "\n" not in str(error)


class TestConfigMatch:
    def test_accepts_identical(self):
        payload = build_payload("montecarlo", {"ber": 1e-3, "n": 4}, 0, {}, {})
        require_config_match(payload, {"ber": 1e-3, "n": 4})

    def test_names_mismatched_key(self):
        payload = build_payload("montecarlo", {"ber": 1e-3, "n": 4}, 0, {}, {})
        with pytest.raises(CheckpointError, match="ber"):
            require_config_match(payload, {"ber": 2e-3, "n": 4})

    def test_catches_missing_and_extra_keys(self):
        payload = build_payload("montecarlo", {"ber": 1e-3}, 0, {}, {})
        with pytest.raises(CheckpointError, match="extra"):
            require_config_match(payload, {"ber": 1e-3, "extra": 1})


class TestRngRoundTrips:
    def test_numpy_state_json_round_trip(self):
        generator = np.random.default_rng(42)
        generator.integers(0, 100, size=7)
        state = json.loads(json.dumps(numpy_rng_state(generator)))
        expected = generator.integers(0, 2 ** 32, size=16)
        fresh = np.random.default_rng(0)
        restore_numpy_rng_state(fresh, state)
        assert (fresh.integers(0, 2 ** 32, size=16) == expected).all()

    def test_numpy_wrong_bit_generator(self):
        generator = np.random.default_rng(0)
        state = numpy_rng_state(generator)
        state["bit_generator"] = "MT19937"
        with pytest.raises(CheckpointError, match="MT19937"):
            restore_numpy_rng_state(np.random.default_rng(1), state)

    def test_python_state_json_round_trip(self):
        rng = random.Random(7)
        rng.random()
        state = json.loads(json.dumps(python_rng_state(rng)))
        expected = [rng.random() for _ in range(5)]
        fresh = random.Random(0)
        restore_python_rng_state(fresh, state)
        assert [fresh.random() for _ in range(5)] == expected

    def test_python_corrupt_state(self):
        with pytest.raises(CheckpointError, match="corrupt"):
            restore_python_rng_state(random.Random(), [1])
