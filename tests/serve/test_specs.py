"""Spec validation, normalization, and digest semantics."""

import pytest

from repro.serve.specs import (
    RESULT_VERSION,
    SpecError,
    parse_spec,
    parse_submission,
)

CAMPAIGN = {
    "kind": "campaign", "level": "Z", "ber": 2e-3,
    "intervals": 8, "group_size": 8, "seed": 3,
}


class TestParseSpec:
    def test_campaign_normalizes_with_defaults(self):
        spec = parse_spec(dict(CAMPAIGN))
        assert spec.kind == "campaign"
        assert spec.params["seed"] == 3
        assert spec.params["shards"] == 1
        assert spec.params["interval_s"] == pytest.approx(0.020)
        assert spec.execution == {
            "scrub_mode": "sparse", "backend": "reference",
        }
        assert spec.total_units == 8

    def test_raresim_counts_trials(self):
        spec = parse_spec(
            {"kind": "raresim", "level": "Y", "ber": 1e-3, "trials": 50,
             "group_size": 16, "num_groups": 8}
        )
        assert spec.total_units == 50
        assert spec.params["scenario"] is None

    def test_scenario_requires_scenario_object(self):
        with pytest.raises(SpecError, match="scenario.*required"):
            parse_spec({"kind": "scenario", "scheme": "Z"})

    def test_scenario_round_trips_to_canonical_form(self):
        spec = parse_spec(
            {"kind": "scenario", "scheme": "Z", "intervals": 4,
             "group_size": 8,
             "scenario": {"transient_ber": 1e-3}}
        )
        # Normalization fills the optional burst/stuck fields, so two
        # ways of writing the same scenario share one digest.
        explicit = parse_spec(
            {"kind": "scenario", "scheme": "Z", "intervals": 4,
             "group_size": 8, "scenario": spec.params["scenario"]}
        )
        assert explicit.digest() == spec.digest()

    @pytest.mark.parametrize("mutation, match", [
        ({"kind": "nope"}, "kind"),
        ({"ber": 1.5}, "ber"),
        ({"ber": True}, "ber"),
        ({"intervals": 0}, "intervals"),
        ({"intervals": "8"}, "intervals"),
        ({"seed": -1}, "seed"),
        ({"shards": 100_000}, "shards"),
        ({"level": "Q"}, "level"),
        ({"backend": "cuda"}, "backend"),
    ])
    def test_invalid_fields_rejected(self, mutation, match):
        payload = dict(CAMPAIGN)
        payload.update(mutation)
        with pytest.raises(SpecError, match=match):
            parse_spec(payload)

    def test_non_object_rejected(self):
        with pytest.raises(SpecError):
            parse_spec([1, 2, 3])


class TestDigest:
    def test_digest_is_stable_and_version_pinned(self):
        spec = parse_spec(dict(CAMPAIGN))
        assert spec.digest() == parse_spec(dict(CAMPAIGN)).digest()
        assert spec.digest_payload()["version"] == RESULT_VERSION

    def test_semantic_params_change_digest(self):
        base = parse_spec(dict(CAMPAIGN)).digest()
        for key, value in [("seed", 4), ("intervals", 9), ("shards", 2),
                           ("ber", 3e-3)]:
            payload = dict(CAMPAIGN)
            payload[key] = value
            assert parse_spec(payload).digest() != base, key

    def test_execution_hints_do_not_change_digest(self):
        base = parse_spec(dict(CAMPAIGN)).digest()
        for key, value in [("backend", "numpy"), ("scrub_mode", "dense")]:
            payload = dict(CAMPAIGN)
            payload[key] = value
            assert parse_spec(payload).digest() == base, key


class TestParseSubmission:
    def test_bare_spec_with_inline_tenant(self):
        payload = dict(CAMPAIGN)
        payload.update({"tenant": "team-a", "priority": 7})
        spec, tenant, priority = parse_submission(payload)
        assert (tenant, priority) == ("team-a", 7)
        # Envelope fields never reach the digest.
        assert spec.digest() == parse_spec(dict(CAMPAIGN)).digest()

    def test_envelope_form(self):
        spec, tenant, priority = parse_submission(
            {"spec": dict(CAMPAIGN), "tenant": "team-b", "priority": -2}
        )
        assert (tenant, priority) == ("team-b", -2)
        assert spec.digest() == parse_spec(dict(CAMPAIGN)).digest()

    def test_defaults(self):
        _, tenant, priority = parse_submission(dict(CAMPAIGN))
        assert (tenant, priority) == ("default", 0)

    @pytest.mark.parametrize("envelope", [
        {"tenant": ""}, {"tenant": "x" * 65}, {"tenant": 7},
        {"priority": 101}, {"priority": -101}, {"priority": "high"},
        {"priority": True},
    ])
    def test_bad_envelope_rejected(self, envelope):
        payload = {"spec": dict(CAMPAIGN)}
        payload.update(envelope)
        with pytest.raises(SpecError):
            parse_submission(payload)
