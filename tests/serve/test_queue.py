"""Fair-share queue: priority, tenant rotation, lease protocol."""

from repro.serve.queue import FairShareQueue, QueuedJob


def _job(job_id, tenant="t", priority=0):
    return QueuedJob(
        job_id=job_id, digest=job_id * 4, tenant=tenant, priority=priority
    )


class TestOrdering:
    def test_fifo_within_one_tenant(self):
        queue = FairShareQueue()
        for job_id in ("a", "b", "c"):
            queue.push(_job(job_id))
        assert [queue.claim().job_id for _ in range(3)] == ["a", "b", "c"]
        assert queue.claim() is None

    def test_higher_priority_wins(self):
        queue = FairShareQueue()
        queue.push(_job("low", priority=0))
        queue.push(_job("high", priority=5))
        queue.push(_job("mid", priority=2))
        order = [queue.claim().job_id for _ in range(3)]
        assert order == ["high", "mid", "low"]

    def test_tenants_round_robin_within_priority(self):
        queue = FairShareQueue()
        # Tenant A floods first; B submits one job afterwards.
        for index in range(3):
            queue.push(_job(f"a{index}", tenant="A"))
        queue.push(_job("b0", tenant="B"))
        order = [queue.claim().job_id for _ in range(4)]
        # B's single job waits behind at most ONE of A's, not all three.
        assert order == ["a0", "b0", "a1", "a2"]

    def test_rotation_across_three_tenants(self):
        queue = FairShareQueue()
        for tenant in ("A", "B", "C"):
            for index in range(2):
                queue.push(_job(f"{tenant.lower()}{index}", tenant=tenant))
        order = [queue.claim().job_id for _ in range(6)]
        assert order == ["a0", "b0", "c0", "a1", "b1", "c1"]


class TestLease:
    def test_claim_records_worker(self):
        queue = FairShareQueue()
        queue.push(_job("a"))
        job = queue.claim("worker-7")
        assert job.worker == "worker-7"
        assert queue.leased() == 1
        assert queue.pending() == 0

    def test_complete_releases_lease(self):
        queue = FairShareQueue()
        queue.push(_job("a"))
        job = queue.claim()
        queue.complete(job.job_id)
        assert queue.leased() == 0

    def test_release_requeues_at_front(self):
        queue = FairShareQueue()
        queue.push(_job("a"))
        queue.push(_job("b"))
        claimed = queue.claim()
        assert claimed.job_id == "a"
        queue.release("a")
        # The released job keeps its place ahead of "b".
        assert queue.claim().job_id == "a"
        assert queue.claim().job_id == "b"

    def test_release_unknown_is_noop(self):
        queue = FairShareQueue()
        queue.release("ghost")
        assert len(queue) == 0


class TestIntrospection:
    def test_snapshot_in_claim_order_buckets(self):
        queue = FairShareQueue()
        queue.push(_job("low", tenant="A", priority=0))
        queue.push(_job("high", tenant="B", priority=3))
        snapshot = queue.snapshot()
        assert [entry["job_id"] for entry in snapshot] == ["high", "low"]
        assert snapshot[0]["priority"] == 3
        assert len(queue) == 2
