"""End-to-end service tests against an in-process ServeApp.

Each test boots the asyncio server on an ephemeral port, drives it with
a minimal HTTP/1.1 client over ``asyncio.open_connection``, and tears it
down.  Jobs use the fast Z-scheme campaign (small intervals, tiny
groups) so a full submit -> SSE -> result round trip stays subsecond.
"""

import asyncio
import json
import os

import pytest

from repro.serve.app import ServeApp

SPEC = {
    "kind": "campaign", "level": "Z", "ber": 2e-3,
    "intervals": 6, "group_size": 8, "seed": 3,
}

RARE_SPEC = {
    "kind": "raresim", "level": "Z", "ber": 1e-3, "trials": 60,
    "group_size": 16, "num_groups": 32, "seed": 5,
}


async def _request(port, method, path, payload=None):
    """One-shot HTTP exchange; returns (status, parsed-JSON-or-bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    content_type = b"application/json" in header_blob
    return status, (
        json.loads(response_body) if content_type else response_body
    )


async def _raw_result(port, digest):
    """GET /v1/results/<digest> returning the verbatim body bytes."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET /v1/results/{digest} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body = raw.partition(b"\r\n\r\n")
    return int(header_blob.split(b" ", 2)[1]), body


async def _sse_events(port, job_id, limit=500):
    """Consume the job's SSE stream until a terminal event."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\nHost: t\r\n\r\n".encode()
    )
    await writer.drain()
    events = []
    event_name = None
    for _ in range(limit):
        line = (await reader.readline()).decode("utf-8").rstrip("\n")
        if line.startswith("event: "):
            event_name = line[len("event: "):]
        elif line.startswith("data: ") and event_name is not None:
            events.append((event_name, json.loads(line[len("data: "):])))
            if event_name in ("done", "failed", "cancelled"):
                break
            event_name = None
    writer.close()
    await writer.wait_closed()
    return events


class _RunningApp:
    """Boots a ServeApp + scheduler loop for the duration of a test."""

    def __init__(self, tmp_path, **kwargs):
        kwargs.setdefault("checkpoint_every", 2)
        self.app = ServeApp(
            store_dir=str(tmp_path / "store"),
            checkpoint_dir=str(tmp_path / "ck"),
            **kwargs,
        )
        self.port = None
        self._task = None

    async def __aenter__(self):
        os.makedirs(self.app.scheduler.checkpoint_dir, exist_ok=True)
        _, self.port = await self.app.start("127.0.0.1", 0)
        self._task = asyncio.create_task(
            self.app.scheduler.run(self.app.stop_event)
        )
        return self

    async def __aexit__(self, exc_type, exc, tb):
        self.app.stop_event.set()
        self.app._server.close()
        await self.app._server.wait_closed()
        await self._task


def _units_simulated(metrics_payload):
    return sum(
        series["value"]
        for series in metrics_payload["series"]
        if series["name"] == "serve_units_simulated_total"
    )


class TestSubmitAndDedup:
    def test_submit_runs_to_done_and_resubmit_is_byte_identical_hit(
        self, tmp_path
    ):
        async def scenario():
            async with _RunningApp(tmp_path, workers=1) as running:
                port = running.port
                status, job = await _request(port, "POST", "/v1/jobs", SPEC)
                assert status == 202 and job["created"]
                assert job["status"] in ("queued", "running")
                events = await _sse_events(port, job["job_id"])
                assert events[-1][0] == "done"
                assert not events[-1][1]["cached"]
                # Progress/metrics frames streamed before the terminal.
                names = [name for name, _ in events]
                assert "running" in names and "metrics" in names

                status, first_bytes = await _raw_result(port, job["digest"])
                assert status == 200
                record = json.loads(first_bytes)
                assert record["result"]["truncated"] is False
                assert record["result"]["intervals"] == SPEC["intervals"]

                status, metrics = await _request(port, "GET", "/metrics")
                units_after_first = _units_simulated(metrics)
                assert units_after_first == SPEC["intervals"]

                # Identical resubmission: answered from the store.
                status, again = await _request(port, "POST", "/v1/jobs", SPEC)
                assert status == 200
                assert again["cached"] and not again["created"]
                assert again["status"] == "done"
                assert again["digest"] == job["digest"]
                # The cached job's SSE stream is just the terminal event.
                cached_events = await _sse_events(port, again["job_id"])
                assert cached_events == [
                    ("done", {"cached": True, "digest": job["digest"]})
                ]
                # Zero additional trials simulated...
                status, metrics = await _request(port, "GET", "/metrics")
                assert _units_simulated(metrics) == units_after_first
                # ...and the served body is byte-identical.
                status, second_bytes = await _raw_result(port, job["digest"])
                assert second_bytes == first_bytes

                # Completed jobs leave no checkpoint files behind.
                assert os.listdir(running.app.scheduler.checkpoint_dir) == []

        asyncio.run(scenario())

    def test_inflight_duplicate_joins_existing_job(self, tmp_path):
        async def scenario():
            spec = dict(SPEC)
            spec["intervals"] = 200  # long enough to still be in flight
            async with _RunningApp(tmp_path, workers=1) as running:
                port = running.port
                _, first = await _request(port, "POST", "/v1/jobs", spec)
                _, second = await _request(port, "POST", "/v1/jobs", spec)
                assert not second["created"]
                assert second["job_id"] == first["job_id"]

        asyncio.run(scenario())

    def test_execution_hints_share_the_cache_entry(self, tmp_path):
        async def scenario():
            async with _RunningApp(tmp_path, workers=1) as running:
                port = running.port
                _, job = await _request(port, "POST", "/v1/jobs", SPEC)
                await _sse_events(port, job["job_id"])
                hinted = dict(SPEC)
                hinted["backend"] = "numpy"
                hinted["scrub_mode"] = "dense"
                _, again = await _request(port, "POST", "/v1/jobs", hinted)
                assert again["cached"]
                assert again["digest"] == job["digest"]

        asyncio.run(scenario())


class TestValidationAndRoutes:
    def test_bad_spec_is_400_with_field_name(self, tmp_path):
        async def scenario():
            async with _RunningApp(tmp_path) as running:
                status, body = await _request(
                    running.port, "POST", "/v1/jobs",
                    {"kind": "campaign", "ber": 7.0},
                )
                assert status == 400
                assert "ber" in body["error"]

        asyncio.run(scenario())

    def test_unknown_routes_and_jobs_404(self, tmp_path):
        async def scenario():
            async with _RunningApp(tmp_path) as running:
                port = running.port
                assert (await _request(port, "GET", "/nope"))[0] == 404
                assert (
                    await _request(port, "GET", "/v1/jobs/j9")
                )[0] == 404
                assert (
                    await _request(port, "GET", "/v1/results/" + "0" * 64)
                )[0] == 404
                assert (
                    await _request(port, "GET", "/v1/results/zz")
                )[0] == 400

        asyncio.run(scenario())

    def test_healthz_and_job_listing(self, tmp_path):
        async def scenario():
            async with _RunningApp(tmp_path) as running:
                port = running.port
                status, health = await _request(port, "GET", "/healthz")
                assert status == 200
                assert health == {"status": "ok", "draining": False}
                _, job = await _request(port, "POST", "/v1/jobs", SPEC)
                status, listing = await _request(port, "GET", "/v1/jobs")
                assert status == 200
                assert job["job_id"] in [
                    entry["job_id"] for entry in listing["jobs"]
                ]

        asyncio.run(scenario())


class TestCancelAndResume:
    def test_delete_cancels_and_resubmission_resumes_bit_identical(
        self, tmp_path
    ):
        """The acceptance criterion: cancel mid-job, resume on
        resubmission, final result bit-identical to an uninterrupted
        run of the same spec."""

        spec = dict(SPEC)
        spec["intervals"] = 40

        async def interrupted(tmp):
            async with _RunningApp(tmp, workers=1) as running:
                port = running.port
                _, job = await _request(port, "POST", "/v1/jobs", spec)
                # Wait for some progress, then cancel.
                for _ in range(400):
                    _, state = await _request(
                        port, "GET", f"/v1/jobs/{job['job_id']}"
                    )
                    if state.get("progress", {}).get("done", 0) >= 5:
                        break
                    await asyncio.sleep(0.01)
                status, _ = await _request(
                    port, "DELETE", f"/v1/jobs/{job['job_id']}"
                )
                assert status == 202
                events = await _sse_events(port, job["job_id"])
                assert events[-1][0] == "cancelled"
                assert events[-1][1]["stop_reason"] == "cancelled"
                # Partial work checkpointed, nothing stored.
                assert os.listdir(running.app.scheduler.checkpoint_dir)
                status, _ = await _raw_result(port, job["digest"])
                assert status == 404

                # Resubmit: resumes from the checkpoint and completes.
                _, again = await _request(port, "POST", "/v1/jobs", spec)
                assert again["created"]
                events = await _sse_events(port, again["job_id"])
                by_name = dict(events)
                assert events[-1][0] == "done"
                assert by_name["running"]["resumed_from_checkpoint"]
                status, resumed_bytes = await _raw_result(
                    port, job["digest"]
                )
                assert status == 200
                return resumed_bytes

        async def uninterrupted(tmp):
            async with _RunningApp(tmp, workers=1) as running:
                port = running.port
                _, job = await _request(port, "POST", "/v1/jobs", spec)
                events = await _sse_events(port, job["job_id"])
                assert events[-1][0] == "done"
                _, reference_bytes = await _raw_result(port, job["digest"])
                return reference_bytes

        resumed = asyncio.run(interrupted(tmp_path / "a"))
        reference = asyncio.run(uninterrupted(tmp_path / "b"))
        assert resumed == reference

    def test_delete_after_completion_conflicts(self, tmp_path):
        async def scenario():
            async with _RunningApp(tmp_path, workers=1) as running:
                port = running.port
                _, job = await _request(port, "POST", "/v1/jobs", SPEC)
                await _sse_events(port, job["job_id"])
                status, _ = await _request(
                    port, "DELETE", f"/v1/jobs/{job['job_id']}"
                )
                assert status == 409

        asyncio.run(scenario())


class TestRaresimJob:
    def test_raresim_spec_runs_and_dedups(self, tmp_path):
        async def scenario():
            async with _RunningApp(tmp_path, workers=1) as running:
                port = running.port
                _, job = await _request(port, "POST", "/v1/jobs", RARE_SPEC)
                events = await _sse_events(port, job["job_id"])
                assert events[-1][0] == "done"
                status, body = await _raw_result(port, job["digest"])
                record = json.loads(body)
                assert record["result"]["trials"] == RARE_SPEC["trials"]
                assert "conditional_ci_low" in record["result"]
                _, again = await _request(port, "POST", "/v1/jobs", RARE_SPEC)
                assert again["cached"]

        asyncio.run(scenario())


class TestDrain:
    def test_drain_cancels_checkpointed_and_rejects_new_submissions(
        self, tmp_path
    ):
        spec = dict(SPEC)
        spec["intervals"] = 400  # long job; drain interrupts it

        async def scenario():
            async with _RunningApp(tmp_path, workers=1) as running:
                app, port = running.app, running.port
                _, job = await _request(port, "POST", "/v1/jobs", spec)
                for _ in range(400):
                    _, state = await _request(
                        port, "GET", f"/v1/jobs/{job['job_id']}"
                    )
                    if state.get("progress", {}).get("done", 0) >= 4:
                        break
                    await asyncio.sleep(0.01)
                drain = asyncio.create_task(app.scheduler.drain(10.0))
                await asyncio.sleep(0.05)
                status, _ = await _request(port, "POST", "/v1/jobs", SPEC)
                assert status == 503  # draining: no new work
                await drain
                state = app.scheduler.jobs[job["job_id"]]
                assert state.status == "cancelled"
                # Checkpoint survives for the post-restart resume...
                assert os.listdir(app.scheduler.checkpoint_dir)
                # ...and the store holds no partial/corrupt entry.
                assert len(app.store) == 0

        asyncio.run(scenario())
