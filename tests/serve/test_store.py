"""Content-addressed store: layout, byte identity, atomicity."""

import json
import os

import pytest

from repro.obs.atomicio import atomic_write_json
from repro.serve.store import ResultStore

DIGEST = "ab" + "0" * 62
RECORD = {"digest": DIGEST, "kind": "campaign", "result": {"fit": 1.25}}


class TestLayout:
    def test_two_char_fanout(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.path(DIGEST) == str(
            tmp_path / "ab" / f"{DIGEST}.json"
        )

    @pytest.mark.parametrize("bad", ["", "ab", "../../etc/passwd", "AB" * 32,
                                     "xyz!", "ab/cd"])
    def test_invalid_digests_rejected(self, tmp_path, bad):
        store = ResultStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.path(bad)


class TestRoundTrip:
    def test_put_get_bytes_identical(self, tmp_path):
        store = ResultStore(str(tmp_path))
        written = store.put(DIGEST, RECORD)
        assert store.has(DIGEST)
        assert store.get_bytes(DIGEST) == written
        assert store.get(DIGEST) == RECORD

    def test_put_matches_atomic_write_json_bytes(self, tmp_path):
        """The byte-identity contract: put == atomic_write_json output."""
        store = ResultStore(str(tmp_path / "store"))
        written = store.put(DIGEST, RECORD)
        reference = tmp_path / "ref.json"
        atomic_write_json(str(reference), RECORD)
        assert written == reference.read_bytes()

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get_bytes("cd" + "0" * 62) is None
        assert store.get("cd" + "0" * 62) is None
        assert not store.has("cd" + "0" * 62)

    def test_overwrite_is_idempotent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = store.put(DIGEST, RECORD)
        second = store.put(DIGEST, RECORD)
        assert first == second == store.get_bytes(DIGEST)


class TestEnumeration:
    def test_digests_and_len(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert len(store) == 0
        other = "cd" + "1" * 62
        store.put(DIGEST, RECORD)
        store.put(other, RECORD)
        assert sorted(store.digests()) == sorted([DIGEST, other])
        assert len(store) == 2

    def test_no_temp_file_droppings(self, tmp_path):
        """Atomic writes leave only the final .json files behind."""
        store = ResultStore(str(tmp_path))
        store.put(DIGEST, RECORD)
        names = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
        ]
        assert names == [f"{DIGEST}.json"]

    def test_store_survives_json_reload(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(DIGEST, RECORD)
        with open(store.path(DIGEST), "r", encoding="utf-8") as handle:
            assert json.load(handle) == RECORD
