"""Golden determinism tests for the sharded campaign executor.

These pin the three guarantees docs/parallelism.md promises:

* ``shards=1`` is bit-identical to the serial runners;
* the K-shard outcome of a seed is reproducible run to run;
* a sharded campaign killed mid-flight (deadline as a deterministic
  stand-in for kill -9) and resumed equals the uninterrupted run.
"""

import numpy as np
import pytest

from repro.obs import ProgressReporter, Telemetry
from repro.parallel import (
    ShardError,
    run_sharded_campaign,
    run_sharded_raresim,
)
from repro.reliability.montecarlo import run_group_campaign
from repro.reliability.raresim import estimate_fit
from repro.resilience import CheckpointError

# Small but non-trivial: BER high enough that every run sees corrections
# and some failures, so the determinism assertions have teeth.
LEVEL, BER, INTERVALS, GROUP = "Z", 5e-3, 6, 16
RARE = dict(level="Z", ber=1e-3, trials=80, group_size=16, num_groups=64)
SEED = 7


@pytest.fixture(scope="module")
def sharded_reference():
    """The canonical 2-shard outcome of SEED (shared across tests)."""
    return run_sharded_campaign(
        LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED
    )


class TestSerialEquivalence:
    def test_shards_one_matches_serial_campaign(self):
        sharded = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=1, seed=SEED
        )
        serial = run_group_campaign(
            LEVEL, BER, trials=INTERVALS, group_size=GROUP,
            rng=np.random.default_rng(SEED),
        )
        assert sharded.as_dict() == serial.as_dict()

    def test_shards_one_matches_estimate_fit(self):
        sharded = run_sharded_raresim(
            RARE["level"], RARE["ber"], RARE["trials"],
            RARE["group_size"], RARE["num_groups"], shards=1, seed=SEED,
        )
        serial = estimate_fit(
            RARE["level"], RARE["ber"], trials=RARE["trials"],
            group_size=RARE["group_size"], num_groups=RARE["num_groups"],
            seed=SEED,
        )
        assert sharded.as_dict() == serial.as_dict()


class TestScrubModeThreading:
    def test_sharded_dense_matches_sparse(self, sharded_reference):
        """The modes are bit-identical, so the sharded dense run must
        reproduce the (sparse-default) reference merge exactly."""
        dense = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED,
            scrub_mode="dense",
        )
        assert dense.as_dict() == sharded_reference.as_dict()

    def test_invalid_scrub_mode_fails_fast(self):
        with pytest.raises(ValueError, match="scrub_mode"):
            run_sharded_campaign(
                LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED,
                scrub_mode="bogus",
            )
        with pytest.raises(ValueError, match="scrub_mode"):
            run_sharded_raresim(
                RARE["level"], RARE["ber"], RARE["trials"],
                RARE["group_size"], RARE["num_groups"], shards=2,
                seed=SEED, scrub_mode="bogus",
            )


class TestShardedDeterminism:
    def test_same_seed_same_shards_reproduces(self, sharded_reference):
        again = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED
        )
        assert again.as_dict() == sharded_reference.as_dict()

    def test_merged_covers_all_intervals(self, sharded_reference):
        assert sharded_reference.intervals == INTERVALS
        # Line-level outcome counts from both shards must have survived
        # the merge (at this BER every interval records corrections).
        assert sum(sharded_reference.outcomes.values()) > 0

    def test_kill_then_resume_matches_uninterrupted(
        self, sharded_reference, tmp_path
    ):
        ck = str(tmp_path / "ck.json")
        partial = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED,
            checkpoint_path=ck, checkpoint_every=1, deadline_s=1e-6,
        )
        assert partial.truncated and partial.stop_reason == "deadline"
        assert partial.intervals < INTERVALS
        resumed = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED,
            checkpoint_path=ck, checkpoint_every=1, resume_from=ck,
        )
        assert resumed.as_dict() == sharded_reference.as_dict()

    def test_raresim_kill_then_resume_matches_uninterrupted(self, tmp_path):
        ck = str(tmp_path / "ck.json")
        reference = run_sharded_raresim(
            RARE["level"], RARE["ber"], RARE["trials"],
            RARE["group_size"], RARE["num_groups"], shards=2, seed=SEED,
        )
        run_sharded_raresim(
            RARE["level"], RARE["ber"], RARE["trials"],
            RARE["group_size"], RARE["num_groups"], shards=2, seed=SEED,
            checkpoint_path=ck, checkpoint_every=5, deadline_s=1e-6,
        )
        resumed = run_sharded_raresim(
            RARE["level"], RARE["ber"], RARE["trials"],
            RARE["group_size"], RARE["num_groups"], shards=2, seed=SEED,
            checkpoint_path=ck, checkpoint_every=5, resume_from=ck,
        )
        assert resumed.as_dict() == reference.as_dict()


class TestCancellation:
    """Job-level cancellation: the hook the serve scheduler drives."""

    def test_serial_cancel_truncates_with_cancelled_reason(self):
        result = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=1, seed=SEED,
            cancel=lambda: True,
        )
        assert result.truncated
        assert result.stop_reason == "cancelled"
        assert result.intervals < INTERVALS

    def test_serial_cancel_then_resume_matches_uninterrupted(self, tmp_path):
        reference = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=1, seed=SEED,
        )
        ck = str(tmp_path / "ck.json")
        calls = {"n": 0}

        def cancel_after_three() -> bool:
            calls["n"] += 1
            return calls["n"] > 3

        partial = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=1, seed=SEED,
            checkpoint_path=ck, checkpoint_every=1,
            cancel=cancel_after_three,
        )
        assert partial.truncated and partial.stop_reason == "cancelled"
        assert 0 < partial.intervals < INTERVALS
        resumed = run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=1, seed=SEED,
            checkpoint_path=ck, checkpoint_every=1, resume_from=ck,
        )
        assert resumed.as_dict() == reference.as_dict()

    def test_serial_raresim_cancel_reports_cancelled(self):
        result = run_sharded_raresim(
            RARE["level"], RARE["ber"], RARE["trials"],
            RARE["group_size"], RARE["num_groups"], shards=1, seed=SEED,
            cancel=lambda: True,
        )
        assert result.truncated
        assert result.stop_reason == "cancelled"

    def test_sharded_cancel_interrupts_workers(self, tmp_path):
        # Enough trials that the workers cannot finish before the
        # parent polls the hook; cancellation fires once the merged
        # progress shows the campaign is genuinely under way.
        ck = str(tmp_path / "ck.json")
        state = {"done": 0}

        class CountingProgress:
            enabled = True

            def update(self, done=None, advance=1):
                state["done"] += advance

            def note_resumed(self, units):
                pass

            def finish(self):
                pass

        result = run_sharded_raresim(
            RARE["level"], RARE["ber"], 4000,
            RARE["group_size"], RARE["num_groups"], shards=2, seed=SEED,
            checkpoint_path=ck, checkpoint_every=10,
            progress=CountingProgress(),
            cancel=lambda: state["done"] >= 20,
        )
        assert result.truncated
        assert result.stop_reason == "interrupted"
        assert result.trials < 4000


class TestComposition:
    def test_telemetry_merges_across_shards(self):
        telemetry = Telemetry.create()
        run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED,
            telemetry=telemetry,
        )
        family = telemetry.metrics.get("campaign_intervals_total")
        assert family is not None
        total = sum(child.value for _, child in family.samples())
        assert total == INTERVALS

    def test_aggregated_progress_sees_every_unit(self, capsys):
        progress = ProgressReporter(
            total=INTERVALS, label="t", min_interval_s=0.0
        )
        run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED,
            progress=progress,
        )
        assert progress.done == INTERVALS


class TestMergedTraces:
    """A sharded run yields one coherent trace: worker phase spans are
    adopted under the parent's ``sharded_campaign`` span, shard-tagged,
    and structurally bit-stable across same-seed reruns."""

    @staticmethod
    def _structure(tracer):
        by_id = {span.span_id: span for span in tracer}

        def chain(span):
            names = []
            parent = span.parent_id
            while parent is not None and parent in by_id:
                names.append(by_id[parent].name)
                parent = by_id[parent].parent_id
            return tuple(names)

        return [
            (span.name, span.depth, span.attributes.get("shard"), chain(span))
            for span in tracer
        ]

    @staticmethod
    def _traced_run():
        telemetry = Telemetry.create()
        run_sharded_campaign(
            LEVEL, BER, INTERVALS, GROUP, shards=4, seed=SEED,
            telemetry=telemetry,
        )
        return telemetry.tracer

    def test_trace_contains_per_shard_phase_spans(self):
        tracer = self._traced_run()
        names = set(tracer.names())
        assert {
            "sharded_campaign", "campaign", "phase_inject", "phase_scrub",
        } <= names
        shards = {
            span.attributes["shard"]
            for span in tracer if "shard" in span.attributes
        }
        assert shards == {0, 1, 2, 3}

    def test_every_worker_span_files_under_the_merge_point(self):
        structure = self._structure(self._traced_run())
        adopted = [entry for entry in structure if entry[2] is not None]
        assert adopted
        for name, depth, _shard, parents in adopted:
            assert parents[-1] == "sharded_campaign", (name, parents)
            if name == "campaign":
                assert parents == ("sharded_campaign",)
                assert depth == 1

    def test_structure_is_stable_across_same_seed_reruns(self):
        assert (
            self._structure(self._traced_run())
            == self._structure(self._traced_run())
        )


class TestFailureModes:
    def test_resume_without_shard_files_fails_fast(self, tmp_path):
        ck = str(tmp_path / "missing.json")
        with pytest.raises(CheckpointError, match="no shard checkpoint"):
            run_sharded_campaign(
                LEVEL, BER, INTERVALS, GROUP, shards=2, seed=SEED,
                checkpoint_path=ck, resume_from=ck,
            )

    def test_worker_failure_surfaces_as_shard_error(self):
        with pytest.raises(ShardError) as excinfo:
            run_sharded_campaign(
                "NOPE", BER, INTERVALS, GROUP, shards=2, seed=SEED
            )
        assert excinfo.value.failures

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            run_sharded_campaign(LEVEL, BER, INTERVALS, GROUP, shards=0)
