"""Unit tests for per-shard aggregate merging."""

import pytest

from repro.parallel import merge_campaign_results, merge_conditional_results
from repro.reliability.montecarlo import CampaignResult
from repro.reliability.raresim import ConditionalResult


def _campaign(intervals=4, failures=1, truncated=False, stop_reason="",
              ber=1e-3, outcomes=None, metadata=None):
    result = CampaignResult(
        intervals=intervals, ber=ber, interval_s=0.020, lines=256,
    )
    result.interval_failures = failures
    result.truncated = truncated
    result.stop_reason = stop_reason
    result.outcomes.update(outcomes or {"clean": intervals - failures,
                                        "due": failures})
    result.metadata.update(metadata or {})
    return result


class TestMergeCampaign:
    def test_counts_add(self):
        merged = merge_campaign_results(
            [_campaign(4, 1), _campaign(6, 2, metadata={"plt_flips": 3})]
        )
        assert merged.intervals == 10
        assert merged.interval_failures == 3
        assert merged.outcomes["clean"] == 7
        assert merged.outcomes["due"] == 3
        assert merged.metadata["plt_flips"] == 3
        assert merged.lines == 256

    def test_single_shard_is_identity(self):
        shard = _campaign(5, 2, metadata={"map_swaps": 1})
        assert merge_campaign_results([shard]).as_dict() == shard.as_dict()

    def test_truncation_and_stop_reason_precedence(self):
        merged = merge_campaign_results([
            _campaign(2, 0, truncated=True, stop_reason="deadline"),
            _campaign(4, 0),
        ])
        assert merged.truncated
        assert merged.stop_reason == "deadline"
        merged = merge_campaign_results([
            _campaign(2, 0, truncated=True, stop_reason="deadline"),
            _campaign(1, 0, truncated=True, stop_reason="interrupted"),
        ])
        assert merged.stop_reason == "interrupted"

    def test_differing_ber_rejected(self):
        with pytest.raises(ValueError, match="ber"):
            merge_campaign_results([_campaign(ber=1e-3), _campaign(ber=2e-3)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_campaign_results([])


def _conditional(trials=100, failures=2, truncated=False, stop_reason=""):
    return ConditionalResult(
        trials=trials, conditional_failures=failures,
        conditioning_probability=1e-4, ber=1e-4, group_size=64,
        num_groups=2048, interval_s=0.020, truncated=truncated,
        stop_reason=stop_reason,
    )


class TestMergeConditional:
    def test_counts_add_and_config_is_preserved(self):
        merged = merge_conditional_results(
            [_conditional(100, 2), _conditional(150, 5)]
        )
        assert merged.trials == 250
        assert merged.conditional_failures == 7
        assert merged.conditioning_probability == 1e-4
        assert merged.group_size == 64

    def test_truncation_propagates(self):
        merged = merge_conditional_results([
            _conditional(), _conditional(truncated=True, stop_reason="deadline"),
        ])
        assert merged.truncated
        assert merged.stop_reason == "deadline"

    def test_cancelled_dominates_deadline_but_not_interrupted(self):
        merged = merge_conditional_results([
            _conditional(truncated=True, stop_reason="deadline"),
            _conditional(truncated=True, stop_reason="cancelled"),
        ])
        assert merged.stop_reason == "cancelled"
        merged = merge_conditional_results([
            _conditional(truncated=True, stop_reason="cancelled"),
            _conditional(truncated=True, stop_reason="interrupted"),
        ])
        assert merged.stop_reason == "interrupted"

    def test_merged_ci_recomputed_from_pooled_tallies(self):
        # The merged result must never inherit a per-shard CI: its
        # interval must equal one computed directly from the pooled
        # (trials, failures) tallies.
        shards = [_conditional(100, 2), _conditional(150, 5),
                  _conditional(350, 0)]
        merged = merge_conditional_results(shards)
        pooled = ConditionalResult(
            trials=sum(s.trials for s in shards),
            conditional_failures=sum(s.conditional_failures for s in shards),
            conditioning_probability=1e-4, ber=1e-4, group_size=64,
            num_groups=2048, interval_s=0.020,
        )
        assert merged.conditional_ci() == pooled.conditional_ci()
        assert merged.fit() == pooled.fit()
        # And it differs from every per-shard CI (the value a buggy
        # merge would have carried over).
        for shard in shards:
            assert merged.conditional_ci() != shard.conditional_ci()

    def test_merged_as_dict_carries_recomputed_derived_fields(self):
        merged = merge_conditional_results(
            [_conditional(100, 2), _conditional(150, 5)]
        )
        payload = merged.as_dict()
        low, high = merged.conditional_ci()
        assert payload["conditional_ci_low"] == low
        assert payload["conditional_ci_high"] == high
        assert payload["cache_failure_probability"] == (
            merged.cache_failure_probability()
        )

    def test_differing_geometry_rejected(self):
        other = ConditionalResult(
            trials=1, conditional_failures=0, conditioning_probability=1e-4,
            ber=1e-4, group_size=32, num_groups=2048, interval_s=0.020,
        )
        with pytest.raises(ValueError, match="group_size"):
            merge_conditional_results([_conditional(), other])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_conditional_results([])
