"""Unit tests for the deterministic shard arithmetic."""

import pytest

from repro.parallel import (
    shard_checkpoint_path,
    shard_python_seeds,
    spawn_generators,
    spawn_seed_sequences,
    split_units,
)


class TestSplitUnits:
    def test_even_split(self):
        assert split_units(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_to_first_shards(self):
        assert split_units(10, 4) == [3, 3, 2, 2]

    def test_more_shards_than_units(self):
        assert split_units(2, 5) == [1, 1, 0, 0, 0]

    def test_always_sums_to_total(self):
        for total in (0, 1, 7, 100, 101):
            for shards in (1, 2, 3, 8):
                assert sum(split_units(total, shards)) == total

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            split_units(10, 0)
        with pytest.raises(ValueError):
            split_units(-1, 2)


class TestSeedSpawning:
    def test_same_seed_same_streams(self):
        a = spawn_seed_sequences(42, 3)
        b = spawn_seed_sequences(42, 3)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_generators_are_reproducible_and_distinct(self):
        first = [g.integers(0, 2**32, 8).tolist()
                 for g in spawn_generators(7, 3)]
        second = [g.integers(0, 2**32, 8).tolist()
                  for g in spawn_generators(7, 3)]
        assert first == second
        assert len({tuple(draws) for draws in first}) == 3

    def test_python_seeds_deterministic_and_distinct(self):
        seeds = shard_python_seeds(0, 4)
        assert seeds == shard_python_seeds(0, 4)
        assert len(set(seeds)) == 4
        assert all(seed >= 0 for seed in seeds)

    def test_seed_changes_streams(self):
        assert shard_python_seeds(0, 2) != shard_python_seeds(1, 2)

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, 0)


class TestShardCheckpointPath:
    def test_extension_preserved(self):
        assert (shard_checkpoint_path("out/ck.json", 0, 4)
                == "out/ck.shard0of4.json")
        assert (shard_checkpoint_path("out/ck.json", 3, 4)
                == "out/ck.shard3of4.json")

    def test_no_extension(self):
        assert shard_checkpoint_path("ck", 1, 2) == "ck.shard1of2"

    def test_shard_count_in_name_prevents_cross_k_resume(self):
        assert (shard_checkpoint_path("ck.json", 0, 2)
                != shard_checkpoint_path("ck.json", 0, 4))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            shard_checkpoint_path("", 0, 2)
        with pytest.raises(ValueError):
            shard_checkpoint_path("ck.json", 2, 2)
        with pytest.raises(ValueError):
            shard_checkpoint_path("ck.json", -1, 2)
