"""The trend dashboard: charts per metric, summary deltas, HTML wrap."""

from repro.bench.baseline import Baseline, Threshold
from repro.bench.record import BenchRecord, stable_bench_id
from repro.bench.report import (
    render_dashboard,
    render_dashboard_html,
    trend_chart,
    write_dashboard,
)
from repro.bench.store import TrajectoryStore


def make_record(title, wall_s, scalars=None, sha="deadbeef01"):
    return BenchRecord(
        bench_id=stable_bench_id(title),
        title=title,
        wall_s=wall_s,
        test=f"benchmarks/bench_x.py::{title}",
        scalars=scalars or {},
        git_sha=sha,
    )


def two_run_store(tmp_path):
    """Two bench ids, two recorded runs each -- the trend-chart case."""
    store = TrajectoryStore(tmp_path / "trajectory")
    store.append(make_record("alpha bench", 1.0, {"fit": 3.0}))
    store.append(make_record("alpha bench", 1.2, {"fit": 3.5}))
    store.append(make_record("beta bench", 0.5, {"speedup": 30.0}))
    store.append(make_record("beta bench", 0.4, {"speedup": 31.0}))
    return store


class TestTrendChart:
    def test_wall_clock_chart_has_one_bar_per_run(self):
        records = [make_record("t", 1.0), make_record("t", 2.0)]
        chart = trend_chart(records)
        assert "run0 deadbee" in chart
        assert "run1 deadbee" in chart

    def test_scalar_chart_skips_runs_missing_the_scalar(self):
        records = [
            make_record("t", 1.0, {"fit": 3.0}),
            make_record("t", 1.0),
            make_record("t", 1.0, {"fit": 4.0}),
        ]
        chart = trend_chart(records, metric="fit")
        assert "run0" in chart and "run2" in chart
        assert "run1" not in chart

    def test_no_values_placeholder(self):
        assert trend_chart([], metric="fit") == "(no recorded values)"


class TestRenderDashboard:
    def test_every_bench_id_gets_a_trend_section(self, tmp_path):
        store = two_run_store(tmp_path)
        markdown = render_dashboard(store)
        for bench_id in store.bench_ids():
            assert bench_id in markdown
        # Wall clock charts for both benches, scalar charts for each
        # recorded scalar, two labelled runs per chart.
        assert markdown.count("### wall_s") == 2
        assert "### fit" in markdown and "### speedup" in markdown
        assert "run0" in markdown and "run1" in markdown

    def test_summary_reports_delta_vs_previous(self, tmp_path):
        markdown = render_dashboard(two_run_store(tmp_path))
        assert "+20.0%" in markdown   # alpha: 1.0 -> 1.2
        assert "-20.0%" in markdown   # beta: 0.5 -> 0.4

    def test_baseline_column(self, tmp_path):
        store = two_run_store(tmp_path)
        baseline = Baseline({
            stable_bench_id("alpha bench"): {
                "wall_s": Threshold(value=1.0),
            },
        })
        markdown = render_dashboard(store, baseline=baseline)
        assert "1s" in markdown

    def test_empty_store_renders_hint(self, tmp_path):
        markdown = render_dashboard(TrajectoryStore(tmp_path / "none"))
        assert "No recorded runs yet" in markdown


class TestWriteDashboard:
    def test_writes_markdown_and_html(self, tmp_path):
        store = two_run_store(tmp_path)
        output = tmp_path / "DASHBOARD.md"
        html_output = tmp_path / "DASHBOARD.html"
        markdown = write_dashboard(
            store, str(output), html_output=str(html_output)
        )
        assert output.read_text(encoding="utf-8") == markdown
        html = html_output.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "alpha bench" in html

    def test_html_escapes_content(self):
        html = render_dashboard_html("a < b & c")
        assert "a &lt; b &amp; c" in html
