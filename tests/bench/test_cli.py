"""End-to-end ``repro bench``: run, gate, regress, report.

The centrepiece is the acceptance test the subsystem exists for: a
fixture benchmark whose cost is injected through the environment runs
clean at 1x, the baseline is pinned, and the artificially injected 2x
slowdown must turn ``repro bench --compare`` into a non-zero exit.
"""

import argparse

import pytest

from repro.bench.baseline import Baseline, Threshold
from repro.bench.cli import (
    REGRESSION_EXIT,
    configure_bench_parser,
    run_bench_command,
)
from repro.bench.record import stable_bench_id
from repro.bench.store import TrajectoryStore

# A real benchmark file for the pytest subprocess: its wall clock and
# its ``cost`` scalar both scale with the injected multiplier, so the
# gate trips on either metric.
FIXTURE_BENCH = '''\
import os

from repro.bench.record import record_from_exhibit
from repro.bench.store import TrajectoryStore, resolve_store_root


def test_fixture_cost():
    cost = float(os.environ.get("REPRO_BENCH_FIXTURE_COST", "1.0"))
    exhibit = {
        "title": "fixture benchmark cost",
        "headers": ["metric", "value"],
        "rows": [["cost", cost]],
        "scalars": {"cost": cost},
    }
    TrajectoryStore(resolve_store_root("")).append(
        record_from_exhibit(exhibit, wall_s=0.25 * cost, test="fixture")
    )
'''

FIXTURE_ID = stable_bench_id("fixture benchmark cost")


def bench_args(*argv):
    parser = argparse.ArgumentParser(prog="repro bench")
    configure_bench_parser(parser)
    return parser.parse_args(list(argv))


@pytest.fixture()
def bench_dir(tmp_path):
    directory = tmp_path / "suite"
    directory.mkdir()
    (directory / "bench_fixture.py").write_text(
        FIXTURE_BENCH, encoding="utf-8"
    )
    return directory


class TestUsageErrors:
    def test_no_matching_benchmarks_is_usage_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        args = bench_args(
            "run", "--bench-dir", str(empty), "--store", str(tmp_path / "s")
        )
        assert run_bench_command(args) == 2

    def test_skip_run_requires_a_consumer(self, tmp_path):
        args = bench_args(
            "run", "--skip-run", "--store", str(tmp_path / "s")
        )
        assert run_bench_command(args) == 2


class TestEndToEnd:
    def test_two_x_slowdown_trips_the_gate(
        self, bench_dir, tmp_path, monkeypatch, capsys
    ):
        store_root = tmp_path / "trajectory"
        baseline_path = str(tmp_path / "baseline.json")
        common = [
            "--bench-dir", str(bench_dir),
            "--store", str(store_root),
            "--baseline", baseline_path,
        ]

        # Run at 1x and pin the baseline at the recorded values.
        monkeypatch.setenv("REPRO_BENCH_FIXTURE_COST", "1.0")
        assert run_bench_command(
            bench_args("run", "--update-baseline", *common)
        ) == 0
        store = TrajectoryStore(store_root)
        assert store.counts() == {FIXTURE_ID: 1}

        # Tighten the default 1x slack to 50% so a 2x measurement is
        # unambiguously past the allowance.
        baseline = Baseline.load(baseline_path)
        baseline.benchmarks[FIXTURE_ID] = {
            name: Threshold(
                value=threshold.value,
                tolerance=0.5,
                direction=threshold.direction,
            )
            for name, threshold in baseline.benchmarks[FIXTURE_ID].items()
        }
        baseline.save(baseline_path)

        # A clean re-run at 1x passes the gate.
        assert run_bench_command(
            bench_args("run", "--compare", *common)
        ) == 0
        assert "baseline comparison clean" in capsys.readouterr().out

        # The injected 2x slowdown must be a non-zero exit.
        monkeypatch.setenv("REPRO_BENCH_FIXTURE_COST", "2.0")
        assert run_bench_command(
            bench_args("run", "--compare", *common)
        ) == REGRESSION_EXIT
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert FIXTURE_ID in captured.err

    def test_baselined_bench_that_stopped_running_fails(self, tmp_path):
        store_root = tmp_path / "trajectory"
        baseline_path = str(tmp_path / "baseline.json")
        Baseline({
            "vanished-bench-00000000": {"wall_s": Threshold(value=1.0)},
        }).save(baseline_path)
        args = bench_args(
            "run", "--skip-run", "--compare",
            "--store", str(store_root), "--baseline", baseline_path,
        )
        assert run_bench_command(args) == REGRESSION_EXIT

    def test_list_and_report(self, bench_dir, tmp_path, capsys):
        store_root = tmp_path / "trajectory"
        common = ["--bench-dir", str(bench_dir), "--store", str(store_root)]

        # Two recorded runs so the dashboard has a trend to draw.
        for _ in range(2):
            assert run_bench_command(bench_args("run", *common)) == 0
        capsys.readouterr()

        assert run_bench_command(bench_args("list", *common)) == 0
        listing = capsys.readouterr().out
        assert "bench_fixture.py" in listing
        assert f"{FIXTURE_ID} (2 run(s))" in listing

        output = tmp_path / "DASHBOARD.md"
        html = tmp_path / "DASHBOARD.html"
        assert run_bench_command(bench_args(
            "report", *common,
            "--output", str(output), "--html", str(html),
        )) == 0
        markdown = output.read_text(encoding="utf-8")
        # Every recorded bench id renders a trend section with both runs.
        for bench_id in TrajectoryStore(store_root).bench_ids():
            assert bench_id in markdown
        assert "### wall_s" in markdown and "### cost" in markdown
        assert "run0" in markdown and "run1" in markdown
        assert html.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
