"""Bench identifiers and records: stability, collisions, round-trips."""

import pytest

from repro.bench.record import (
    SCHEMA_VERSION,
    BenchRecord,
    machine_fingerprint,
    record_from_exhibit,
    slugify,
    stable_bench_id,
)


class TestSlugify:
    def test_lowercases_and_collapses_punctuation(self):
        assert slugify("Fig. 7: MTTF vs BER (SuDoku-Z)") == \
            "fig_7_mttf_vs_ber_sudoku_z"

    def test_strips_leading_and_trailing_separators(self):
        assert slugify("  (edge)  ") == "edge"


class TestStableBenchId:
    def test_id_is_deterministic(self):
        assert stable_bench_id("Table 1") == stable_bench_id("Table 1")

    def test_distinct_titles_distinct_ids(self):
        assert stable_bench_id("Table 1") != stable_bench_id("Table 2")

    def test_sixty_char_prefix_collision_resolved(self):
        # The historical bug: two titles agreeing on the first 60 slug
        # characters silently shared one results file.  The digest of
        # the full title must keep them apart while the readable prefix
        # stays identical (so existing artifact globs keep matching).
        stem = "sparse scrub fast path equivalence sweep over dirty line "
        a = stable_bench_id(stem + "counts one")
        b = stable_bench_id(stem + "counts two")
        assert a != b
        assert a.rsplit("-", 1)[0] == b.rsplit("-", 1)[0]

    def test_id_is_filesystem_safe(self):
        bench_id = stable_bench_id("Fig. 7: MTTF vs BER @ 2x10^-3!")
        assert "/" not in bench_id and " " not in bench_id


class TestMachineFingerprint:
    def test_carries_interpretation_context(self):
        fingerprint = machine_fingerprint()
        assert set(fingerprint) == {
            "python", "platform", "machine", "cpu_count",
        }


class TestBenchRecord:
    def test_round_trip_through_dict(self):
        record = BenchRecord(
            bench_id=stable_bench_id("t"),
            title="t",
            wall_s=1.25,
            test="benchmarks/bench_x.py::test_y",
            headers=["metric", "value"],
            rows=[["fit", 3.5]],
            notes="a note",
            scalars={"fit": 3.5},
            git_sha="abc123",
            config={"ber": 2e-3},
        )
        restored = BenchRecord.from_dict(record.to_dict())
        assert restored == record
        assert restored.schema == SCHEMA_VERSION

    def test_missing_core_field_raises(self):
        with pytest.raises(KeyError):
            BenchRecord.from_dict({"title": "t", "wall_s": 1.0})


class TestRecordFromExhibit:
    EXHIBIT = {
        "title": "Fig. 7 MTTF",
        "headers": ["quantity", "value"],
        "rows": [["FIT", 12.5]],
        "notes": None,
        "scalars": {"fit": 12.5},
    }

    def test_derives_id_and_copies_scalars(self):
        record = record_from_exhibit(self.EXHIBIT, wall_s=0.5, test="node")
        assert record.bench_id == stable_bench_id("Fig. 7 MTTF")
        assert record.scalars == {"fit": 12.5}
        assert record.rows == [["FIT", 12.5]]
        assert record.wall_s == 0.5
        assert record.test == "node"
        assert record.notes == ""

    def test_config_passthrough(self):
        record = record_from_exhibit(
            self.EXHIBIT, wall_s=0.5, config={"seed": 7}
        )
        assert record.config == {"seed": 7}

    def test_scalar_values_coerced_to_float(self):
        exhibit = dict(self.EXHIBIT, scalars={"n": 3})
        record = record_from_exhibit(exhibit, wall_s=0.1)
        assert record.scalars == {"n": 3.0}
        assert isinstance(record.scalars["n"], float)
