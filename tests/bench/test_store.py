"""The append-only trajectory store: ordering, corruption, resolution."""

import pytest

from repro.bench.record import BenchRecord, stable_bench_id
from repro.bench.store import (
    DEFAULT_STORE,
    STORE_ENV,
    TrajectoryStore,
    resolve_store_root,
)


def make_record(title="t", wall_s=1.0, **overrides):
    fields = dict(
        bench_id=stable_bench_id(title),
        title=title,
        wall_s=wall_s,
    )
    fields.update(overrides)
    return BenchRecord(**fields)


class TestResolveStoreRoot:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "/env/store")
        assert resolve_store_root("/flag/store") == "/flag/store"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "/env/store")
        assert resolve_store_root() == "/env/store"

    def test_default(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert resolve_store_root() == DEFAULT_STORE


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        store = TrajectoryStore(tmp_path / "trajectory")
        record = make_record(scalars={"fit": 3.0})
        path = store.append(record)
        assert path.name == f"{record.bench_id}.jsonl"
        assert store.load(record.bench_id) == [record]

    def test_appends_preserve_write_order(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        for wall in (1.0, 2.0, 3.0):
            store.append(make_record(wall_s=wall))
        records = store.load(stable_bench_id("t"))
        assert [record.wall_s for record in records] == [1.0, 2.0, 3.0]
        assert store.latest(stable_bench_id("t")).wall_s == 3.0

    def test_one_file_per_bench_id(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        store.append(make_record(title="b"))
        store.append(make_record(title="a"))
        assert store.bench_ids() == sorted(
            [stable_bench_id("a"), stable_bench_id("b")]
        )
        assert store.counts() == {
            stable_bench_id("a"): 1,
            stable_bench_id("b"): 1,
        }

    def test_empty_store(self, tmp_path):
        store = TrajectoryStore(tmp_path / "never_created")
        assert store.bench_ids() == []
        assert store.load("anything") == []
        assert store.latest("anything") is None
        assert store.counts() == {}


class TestCorruption:
    def test_corrupt_line_raises_with_location(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        record = make_record()
        path = store.append(record)
        path.write_text(
            path.read_text(encoding="utf-8") + "{not json\n",
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match=r"corrupt trajectory record .*:2"):
            store.load(record.bench_id)

    def test_blank_lines_tolerated(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        record = make_record()
        path = store.append(record)
        path.write_text(
            path.read_text(encoding="utf-8") + "\n\n", encoding="utf-8"
        )
        assert store.load(record.bench_id) == [record]
