"""The baseline comparator: thresholds, directions, missing data."""

import math

import pytest

from repro.bench.baseline import Baseline, Threshold
from repro.bench.record import BenchRecord, stable_bench_id
from repro.bench.store import TrajectoryStore


def make_record(title="t", wall_s=1.0, scalars=None):
    return BenchRecord(
        bench_id=stable_bench_id(title),
        title=title,
        wall_s=wall_s,
        scalars=scalars or {},
    )


class TestThreshold:
    def test_max_direction_regresses_upward(self):
        threshold = Threshold(value=1.0, tolerance=0.5, direction="max")
        assert threshold.allowed == pytest.approx(1.5)
        assert not threshold.regressed(1.5)
        assert threshold.regressed(1.51)

    def test_min_direction_regresses_downward(self):
        # Speedups: smaller is worse.
        threshold = Threshold(value=20.0, tolerance=0.5, direction="min")
        assert threshold.allowed == pytest.approx(10.0)
        assert not threshold.regressed(10.0)
        assert threshold.regressed(9.9)

    def test_min_direction_tolerance_floor_is_zero(self):
        threshold = Threshold(value=5.0, tolerance=2.0, direction="min")
        assert threshold.allowed == 0.0

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            Threshold(value=1.0, direction="down")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            Threshold(value=1.0, tolerance=-0.1)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        baseline = Baseline({
            "bench-a": {
                "wall_s": Threshold(value=0.8, tolerance=1.0),
                "speedup": Threshold(
                    value=20.0, tolerance=0.5, direction="min"
                ),
            },
        })
        baseline.save(path)
        restored = Baseline.load(path)
        assert restored.benchmarks == baseline.benchmarks

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "absent.json"))
        assert baseline.benchmarks == {}


class TestCompareRecord:
    def test_clean_record_no_regressions(self):
        record = make_record(wall_s=1.0, scalars={"fit": 3.0})
        baseline = Baseline({
            record.bench_id: {
                "wall_s": Threshold(value=1.0),
                "fit": Threshold(value=3.0),
            },
        })
        assert baseline.compare_record(record) == []

    def test_wall_clock_regression_detected(self):
        record = make_record(wall_s=2.1)
        baseline = Baseline({
            record.bench_id: {"wall_s": Threshold(value=1.0, tolerance=1.0)},
        })
        regressions = baseline.compare_record(record)
        assert [r.metric for r in regressions] == ["wall_s"]
        assert "allowed 2" in regressions[0].describe()

    def test_missing_baselined_scalar_is_a_regression(self):
        # A benchmark that stops reporting a gated scalar must fail,
        # not silently relax the gate.
        record = make_record(wall_s=1.0, scalars={})
        baseline = Baseline({
            record.bench_id: {"fit": Threshold(value=3.0)},
        })
        regressions = baseline.compare_record(record)
        assert len(regressions) == 1
        assert "missing from record" in regressions[0].metric
        assert math.isnan(regressions[0].measured)

    def test_unbaselined_record_passes(self):
        baseline = Baseline()
        assert baseline.compare_record(make_record()) == []


class TestCompareStore:
    def test_restricts_to_requested_ids(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        store.append(make_record(title="ran", wall_s=1.0))
        baseline = Baseline({
            stable_bench_id("ran"): {"wall_s": Threshold(value=1.0)},
            stable_bench_id("skipped"): {"wall_s": Threshold(value=1.0)},
        })
        comparison = baseline.compare(
            store, bench_ids=[stable_bench_id("ran")]
        )
        assert comparison.ok
        assert comparison.checked == [stable_bench_id("ran")]
        assert comparison.missing_records == []

    def test_baselined_id_without_record_is_missing(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        baseline = Baseline({
            stable_bench_id("gone"): {"wall_s": Threshold(value=1.0)},
        })
        comparison = baseline.compare(
            store, bench_ids=[stable_bench_id("gone")]
        )
        assert comparison.missing_records == [stable_bench_id("gone")]

    def test_recorded_id_without_baseline_is_noted(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        store.append(make_record(title="new"))
        comparison = Baseline().compare(store)
        assert comparison.ok
        assert comparison.missing_baseline == [stable_bench_id("new")]

    def test_compares_latest_record_only(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        store.append(make_record(wall_s=10.0))  # old, terrible
        store.append(make_record(wall_s=1.0))   # latest, fine
        baseline = Baseline({
            stable_bench_id("t"): {"wall_s": Threshold(value=1.0)},
        })
        assert baseline.compare(store).ok


class TestUpdateFromStore:
    def test_pins_latest_values(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        store.append(make_record(wall_s=2.5, scalars={"fit": 4.0}))
        baseline = Baseline()
        baseline.update_from_store(store)
        entry = baseline.benchmarks[stable_bench_id("t")]
        assert entry["wall_s"].value == 2.5
        assert entry["fit"].value == 4.0

    def test_keeps_existing_tolerance_and_direction(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        store.append(make_record(wall_s=1.0, scalars={"speedup": 30.0}))
        baseline = Baseline({
            stable_bench_id("t"): {
                "speedup": Threshold(
                    value=20.0, tolerance=0.25, direction="min"
                ),
            },
        })
        baseline.update_from_store(store)
        pinned = baseline.benchmarks[stable_bench_id("t")]["speedup"]
        assert pinned.value == 30.0
        assert pinned.tolerance == 0.25
        assert pinned.direction == "min"
