"""Unit tests on the exhibit-assembly functions (shape + paper columns).

The integration suite checks the scientific assertions; these tests pin
the *contract* of each exhibit builder -- titles, header widths, the
presence of paper-reference columns -- so benches and the report
generator can rely on them.
"""

import pytest

from repro.analysis import experiments


def assert_well_formed(exhibit, expected_title_fragment):
    assert expected_title_fragment in exhibit["title"]
    headers = exhibit["headers"]
    rows = exhibit["rows"]
    assert rows, exhibit["title"]
    for row in rows:
        assert len(row) == len(headers), (
            f"{exhibit['title']}: row width {len(row)} != {len(headers)}"
        )
    assert isinstance(exhibit.get("notes", ""), str)


class TestExhibitContracts:
    def test_table1(self):
        exhibit = experiments.table1_ber()
        assert_well_formed(exhibit, "Table I")
        assert [row[0] for row in exhibit["rows"]] == [60.0, 35.0]

    def test_table2(self):
        exhibit = experiments.table2_ecc_fit()
        assert_well_formed(exhibit, "Table II")
        assert [row[0] for row in exhibit["rows"]] == [
            f"ECC-{t}" for t in range(1, 7)
        ]

    def test_table3(self):
        exhibit = experiments.table3_sdc()
        assert_well_formed(exhibit, "Table III")

    def test_fig3_custom_trials(self):
        exhibit = experiments.fig3_sdr_cases(trials=2000)
        assert_well_formed(exhibit, "Fig. 3")
        fractions = [row[1] for row in exhibit["rows"]]
        assert sum(fractions) == pytest.approx(1.0)

    def test_fig7(self):
        exhibit = experiments.fig7_reliability()
        assert_well_formed(exhibit, "Fig. 7")

    def test_table4(self):
        exhibit = experiments.table4_sram()
        assert_well_formed(exhibit, "Table IV")
        schemes = [str(row[0]) for row in exhibit["rows"]]
        assert sum(1 for s in schemes if s.startswith("SuDoku")) >= 2

    def test_table8(self):
        exhibit = experiments.table8_scrub_interval()
        assert_well_formed(exhibit, "Table VIII")
        assert [row[0] for row in exhibit["rows"]] == ["10ms", "20ms", "40ms"]

    def test_table9(self):
        exhibit = experiments.table9_cache_size()
        assert_well_formed(exhibit, "Table IX")
        assert [row[0] for row in exhibit["rows"]] == ["32MB", "64MB", "128MB"]

    def test_table10(self):
        exhibit = experiments.table10_delta()
        assert_well_formed(exhibit, "Table X")
        assert [row[0] for row in exhibit["rows"]] == [35, 34, 33]

    def test_table11(self):
        exhibit = experiments.table11_baselines()
        assert_well_formed(exhibit, "Table XI")
        assert {row[0] for row in exhibit["rows"]} == {
            "CPPC + CRC-31", "RAID-6 + CRC-31",
            "2DP + ECC-1 + CRC-31", "SuDoku",
        }

    def test_table12(self):
        exhibit = experiments.table12_hiecc()
        assert_well_formed(exhibit, "Table XII")

    def test_latency_and_storage(self):
        assert_well_formed(experiments.latency_summary(), "VII-B")
        assert_well_formed(experiments.storage_summary(), "VII-H")

    def test_custom_ber_propagates(self):
        mild = experiments.table2_ecc_fit(ber=1e-6)
        harsh = experiments.table2_ecc_fit(ber=1e-5)
        # Higher BER -> higher FIT in every row.
        for mild_row, harsh_row in zip(mild["rows"], harsh["rows"]):
            assert harsh_row[5] > mild_row[5]

    def test_tornado_summary(self):
        exhibit = experiments.tornado_summary()
        assert_well_formed(exhibit, "tornado")
        swings = [row[4] for row in exhibit["rows"]]
        assert swings == sorted(swings, reverse=True)

    def test_all_experiments_enumerates_fourteen(self):
        exhibits = experiments.all_experiments()
        assert len(exhibits) == 14
        titles = [e["title"] for e in exhibits]
        assert len(set(titles)) == len(titles)


class TestPerformanceExhibitContracts:
    def test_fig8_contract(self):
        exhibit = experiments.fig8_performance(
            workloads=["povray"], accesses_per_core=1500
        )
        assert_well_formed(exhibit, "Fig. 8")
        assert exhibit["rows"][-1][0] == "MEAN"
        assert len(exhibit["rows"]) == 2

    def test_fig9_contract(self):
        exhibit = experiments.fig9_edp(
            workloads=["povray"], accesses_per_core=1500
        )
        assert_well_formed(exhibit, "Fig. 9")
        assert exhibit["rows"][-1][0] == "MEAN"
