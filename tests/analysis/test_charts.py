"""Tests for the terminal chart renderers."""

import pytest

from repro.analysis.charts import bar_chart, exhibit_chart, log_ladder


class TestBarChart:
    def test_basic_shape(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        # The larger value fills the full width.
        assert "█" * 10 in lines[1]
        # Labels right-aligned to common width.
        assert lines[0].startswith(" a |")

    def test_fractional_cells(self):
        text = bar_chart(["x", "y"], [1.0, 2.0], width=4)
        # 1.0/2.0 -> half of 4 cells = 2 full blocks.
        assert "██" in text.splitlines()[0]

    def test_negative_marker(self):
        text = bar_chart(["neg", "pos"], [-1.0, 1.0])
        assert "|-" in text.splitlines()[0]

    def test_unit_suffix(self):
        text = bar_chart(["a"], [3.5], unit="%")
        assert "3.5%" in text

    def test_empty(self):
        assert bar_chart([], []) == "(empty chart)"

    def test_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_all_zero_values(self):
        text = bar_chart(["a", "b"], [0.0, 0.0], width=5)
        assert "█" not in text


class TestLogLadder:
    def test_orders_of_magnitude(self):
        text = log_ladder(
            ["X", "Y", "Z"], [1e12, 1e6, 1e-4], width=30
        )
        lines = text.splitlines()
        assert len(lines) == 4  # three series + axis footer
        positions = [line.index("●") for line in lines[:3]]
        assert positions[0] > positions[1] > positions[2]
        assert "10^" in lines[-1]

    def test_zero_pinned_left(self):
        text = log_ladder(["zero", "one"], [0.0, 1.0])
        assert text.splitlines()[0].count("<") == 1

    def test_no_positive_values(self):
        assert log_ladder(["a"], [0.0]) == "(no positive values)"

    def test_bounds_override(self):
        text = log_ladder(["mid"], [1.0], bounds=(1e-2, 1e2))
        line = text.splitlines()[0]
        index = line.index("●")
        bar_start = line.index("|") + 1
        bar_end = line.rindex("|")
        centre = (bar_start + bar_end) / 2
        assert abs(index - centre) <= 2

    def test_mismatch(self):
        with pytest.raises(ValueError):
            log_ladder(["a", "b"], [1.0])


class TestExhibitChart:
    def test_renders_numeric_column(self):
        exhibit = {
            "title": "t",
            "headers": ["name", "value"],
            "rows": [["a", 1.0], ["b", 2.0], ["skip", None]],
        }
        text = exhibit_chart(exhibit, value_column=1)
        assert "a" in text and "b" in text
        assert "skip" not in text
