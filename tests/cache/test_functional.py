"""Unit tests for repro.cache.functional and repro.cache.lru."""

import random

import pytest

from repro.cache.functional import FunctionalCache
from repro.cache.geometry import CacheGeometry
from repro.cache.lru import LRUState


def small_cache(ways=2, sets=4):
    geometry = CacheGeometry(
        capacity_bytes=ways * sets * 64, line_bytes=64, ways=ways
    )
    return FunctionalCache(geometry)


class TestLRUState:
    def test_initial_victim(self):
        lru = LRUState(4)
        assert lru.victim() == 3

    def test_touch_moves_to_front(self):
        lru = LRUState(3)
        lru.touch(2)
        assert lru.order() == [2, 0, 1]
        assert lru.victim() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUState(0)


class TestFunctionalCache:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        first = cache.access(0x1000, is_write=False)
        assert not first.hit
        second = cache.access(0x1000, is_write=False)
        assert second.hit
        assert second.frame_index == first.frame_index

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0x1000, is_write=False)
        assert cache.access(0x103F, is_write=False).hit

    def test_lru_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0 << 6, False)   # A
        cache.access(1 << 6, False)   # B
        cache.access(0 << 6, False)   # touch A -> B is LRU
        result = cache.access(2 << 6, False)  # C evicts B
        assert not result.hit
        assert result.victim_line_address == 1
        assert cache.access(0 << 6, False).hit   # A survived

    def test_dirty_eviction_reports_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, True)
        result = cache.access(1 << 6, False)
        assert result.victim_dirty
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, False)
        result = cache.access(1 << 6, False)
        assert not result.victim_dirty

    def test_write_hit_sets_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, False)
        cache.access(0, True)
        _, dirty = cache.frame_state(0)
        assert dirty

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x40, False)
        assert cache.invalidate(0x40)
        assert not cache.invalidate(0x40)
        assert not cache.access(0x40, False).hit

    def test_probe_does_not_allocate(self):
        cache = small_cache()
        assert cache.probe(0x1000) is None
        cache.access(0x1000, False)
        assert cache.probe(0x1000) is not None
        assert cache.misses == 1

    def test_statistics(self):
        cache = small_cache()
        cache.access(0, False)
        cache.access(0, False)
        assert cache.accesses == 2
        assert cache.miss_rate() == pytest.approx(0.5)

    def test_residency_bounded_by_capacity(self):
        cache = small_cache(ways=2, sets=4)
        rng = random.Random(1)
        for _ in range(500):
            cache.access(rng.randrange(1 << 16) << 6, rng.random() < 0.3)
        assert cache.resident_lines() <= 8

    def test_walk_frames_consistent_with_lookup(self):
        cache = small_cache(ways=2, sets=4)
        for address in (0, 64, 128, 4096):
            cache.access(address, False)
        found = {}

        def visit(frame_index, line_address, dirty):
            if line_address is not None:
                found[line_address] = frame_index

        cache.walk_frames(visit)
        for line_address, frame_index in found.items():
            assert cache.probe(line_address << 6) == frame_index
