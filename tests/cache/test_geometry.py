"""Unit tests for repro.cache.geometry."""

import pytest

from repro.cache.geometry import CacheGeometry


class TestDefaults:
    def test_paper_geometry(self):
        geometry = CacheGeometry()
        assert geometry.capacity_bytes == 64 * 1024 * 1024
        assert geometry.line_bytes == 64
        assert geometry.ways == 8
        assert geometry.num_lines == 1 << 20
        assert geometry.num_sets == 1 << 17
        assert geometry.line_bits == 512

    def test_group_counts(self):
        geometry = CacheGeometry()
        assert geometry.num_groups(512) == 2048

    def test_describe(self):
        assert "64MB" in CacheGeometry().describe()


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(capacity_bytes=3 * 1024 * 1024)
        with pytest.raises(ValueError):
            CacheGeometry(line_bytes=48)
        with pytest.raises(ValueError):
            CacheGeometry(ways=3)

    def test_group_size_must_tile(self):
        with pytest.raises(ValueError):
            CacheGeometry().num_groups(3)
        with pytest.raises(ValueError):
            CacheGeometry().num_groups(0)


class TestAddressCodecs:
    def setup_method(self):
        self.geometry = CacheGeometry(
            capacity_bytes=64 * 1024, line_bytes=64, ways=4
        )  # 1024 lines, 256 sets

    def test_split_roundtrip(self):
        address = 0xDEAD40
        parts = self.geometry.split(address)
        rebuilt = (
            (parts.tag << self.geometry.set_bits | parts.set_index)
            << self.geometry.offset_bits
        ) | parts.block_offset
        assert rebuilt == address

    def test_offset_extraction(self):
        parts = self.geometry.split(0x7F)
        assert parts.block_offset == 0x3F
        assert parts.set_index == 1

    def test_line_address(self):
        assert self.geometry.line_address(128) == 2

    def test_frame_index_roundtrip(self):
        for set_index in (0, 7, 255):
            for way in range(4):
                frame = self.geometry.frame_index(set_index, way)
                assert self.geometry.frame_location(frame) == (set_index, way)

    def test_frame_bounds(self):
        with pytest.raises(ValueError):
            self.geometry.frame_index(256, 0)
        with pytest.raises(ValueError):
            self.geometry.frame_index(0, 4)
        with pytest.raises(ValueError):
            self.geometry.frame_location(1024)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            self.geometry.split(-1)
