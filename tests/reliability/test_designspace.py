"""Tests for the design-space exploration module."""

import pytest

from repro.reliability.designspace import (
    DesignPoint,
    cheapest_meeting_target,
    enumerate_design_space,
    pareto_front,
)


@pytest.fixture(scope="module")
def points():
    return enumerate_design_space(delta=34.0)


class TestEnumeration:
    def test_full_sweep_size(self, points):
        # (2 sudoku codes x 4 groups + 4 uniform codes) x 3 intervals.
        assert len(points) == (2 * 4 + 4) * 3

    def test_schemes_present(self, points):
        schemes = {point.scheme for point in points}
        assert "SuDoku-Z (ECC-1)" in schemes
        assert "SuDoku-Z (ECC-2)" in schemes
        assert "uniform ECC-6" in schemes

    def test_ber_tracks_interval(self, points):
        by_interval = {}
        for point in points:
            by_interval.setdefault(point.scrub_interval_s, set()).add(point.ber)
        # One BER per interval, increasing with interval length.
        assert all(len(bers) == 1 for bers in by_interval.values())
        ordered = [next(iter(by_interval[i])) for i in sorted(by_interval)]
        assert ordered == sorted(ordered)

    def test_sudoku_overheads_below_ecc6(self, points):
        for point in points:
            if point.scheme == "SuDoku-Z (ECC-1)":
                assert point.overhead_bits_per_line < 60

    def test_ecc2_dominates_ecc1_on_fit(self, points):
        by_key = {
            (p.scheme, p.group_size, p.scrub_interval_s): p.fit for p in points
        }
        for (scheme, group, interval), fit in by_key.items():
            if scheme == "SuDoku-Z (ECC-1)":
                assert by_key[("SuDoku-Z (ECC-2)", group, interval)] < fit


class TestSelection:
    def test_pareto_members_are_feasible_and_nondominated(self, points):
        front = pareto_front(points, target_fit=1.0)
        assert front
        for candidate in front:
            assert candidate.meets(1.0)
            for other in front:
                if other is candidate:
                    continue
                strictly_better = (
                    other.overhead_bits_per_line < candidate.overhead_bits_per_line
                    and other.scrub_bandwidth_fraction
                    <= candidate.scrub_bandwidth_fraction
                    and other.correction_latency_us <= candidate.correction_latency_us
                )
                assert not strictly_better

    def test_cheapest_is_sudoku_at_paper_node(self):
        points_35 = enumerate_design_space(delta=35.0)
        winner = cheapest_meeting_target(points_35, target_fit=1.0)
        assert winner is not None
        assert winner.scheme.startswith("SuDoku-Z")
        assert winner.overhead_bits_per_line < 60

    def test_no_feasible_configuration(self):
        # An absurd target defeats everything in the sweep.
        some_points = enumerate_design_space(
            delta=30.0, scrub_intervals_s=(0.040,), uniform_ecc_ts=(4,),
            sudoku_ecc_ts=(1,),
        )
        assert cheapest_meeting_target(some_points, target_fit=1e-30) is None
        assert pareto_front(some_points, target_fit=1e-30) == []

    def test_design_point_label(self):
        point = DesignPoint(
            scheme="SuDoku-Z (ECC-1)", group_size=512, scrub_interval_s=0.020,
            ber=5e-6, fit=1e-5, overhead_bits_per_line=43.0,
            scrub_bandwidth_fraction=0.47, correction_latency_us=4.6,
        )
        assert "G=512" in point.label and "20ms" in point.label
