"""Tests for the ECC, SuDoku, baseline, and SRAM analytical models.

Paper-comparison tolerances are deliberately explicit: where our
first-principles composition differs from the paper's accounting the
test asserts the documented relationship (band / ordering), not blind
equality -- see EXPERIMENTS.md for the discussion of each delta.
"""

import pytest

from repro.core.config import PAPER
from repro.reliability.baselinemodel import (
    cppc_model,
    ecc6_per_line_model,
    hiecc_model,
    raid6_model,
    twodp_model,
)
from repro.reliability.eccmodel import ECCCacheModel, table2_rows
from repro.reliability.sram import (
    ecc_k_cache_failure,
    sram_vmin_table,
    sudoku_persistent_cache_failure,
)
from repro.reliability.sudokumodel import SuDokuReliabilityModel

BER = 5.3e-6


class TestECCModel:
    def test_table2_reproduced_within_tolerance(self):
        rows = table2_rows(ber=BER)
        for index, row in enumerate(rows):
            paper_line = PAPER.ecc_line_failure_20ms[index]
            assert row["line_failure"] == pytest.approx(paper_line, rel=0.15)
        # The FIT anchor: ECC-6 lands within 15% of the paper's 0.092.
        assert rows[5]["fit"] == pytest.approx(PAPER.ecc_fit[5], rel=0.15)

    def test_monotone_in_t(self):
        fits = [ECCCacheModel(t=t, ber=BER).fit() for t in range(1, 7)]
        assert all(a > b for a, b in zip(fits, fits[1:]))

    def test_storage_overhead(self):
        assert ECCCacheModel(t=6, ber=BER).storage_overhead_bits() == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            ECCCacheModel(t=-1, ber=BER)
        with pytest.raises(ValueError):
            ECCCacheModel(t=1, ber=2.0)


class TestSuDokuModel:
    def setup_method(self):
        self.model = SuDokuReliabilityModel(ber=BER)

    def test_expected_multi_lines_paper_four(self):
        # Section III-A: "only four lines are expected to have multi-bit
        # errors" per interval.
        assert self.model.expected_multi_lines() == pytest.approx(4.0, rel=0.2)

    def test_x_mttf_matches_paper(self):
        assert self.model.mttf_x_seconds() == pytest.approx(
            PAPER.sudoku_x_mttf_s, rel=0.25
        )

    def test_y_much_stronger_than_x_but_insufficient(self):
        # Ordering: X (seconds) << Y (hours-days); Y still far from 1 FIT.
        assert self.model.mttf_y_seconds() > 1000 * self.model.mttf_x_seconds()
        assert self.model.fit_y() > 1e5

    def test_z_beats_target_and_ecc6(self):
        ecc6 = ECCCacheModel(t=6, ber=BER).fit()
        assert self.model.fit_z() < 1e-3          # far below the 1-FIT target
        assert ecc6 / self.model.fit_z() > PAPER.sudoku_z_vs_ecc6  # >= 874x

    def test_z_without_sdr_matches_footnote4(self):
        # Footnote 4: skewed hashing alone gives ~4M FIT.
        assert self.model.fit_z_without_sdr() == pytest.approx(
            PAPER.sudoku_z_alone_fit, rel=0.25
        )

    def test_sdc_floor_below_due(self):
        assert self.model.sdc_fit() < 1e-6
        assert self.model.sdc_fit() < self.model.fit_z_due() * 1e3

    def test_failure_probability_curve_monotone(self):
        times = [1.0, 10.0, 100.0]
        for level in ("X", "Y", "Z"):
            values = [self.model.failure_probability_by(level, t) for t in times]
            assert values == sorted(values)

    def test_fit_scales_linearly_with_cache_size(self):
        double = SuDokuReliabilityModel(ber=BER, num_lines=2 << 20)
        assert double.fit_z_due() == pytest.approx(2 * self.model.fit_z_due(), rel=1e-6)

    def test_fit_monotone_in_ber(self):
        worse = SuDokuReliabilityModel(ber=2 * BER)
        assert worse.fit_z() > self.model.fit_z()
        assert worse.fit_y() > self.model.fit_y()
        assert worse.mttf_x_seconds() < self.model.mttf_x_seconds()

    def test_group_fail_y_component_structure(self):
        components = self.model.group_fail_y_components()
        # Full-overlap 2+2 and heavy pairs dominate at the paper's BER.
        assert components["full_overlap_22"] > components["containment_23"]
        assert components["heavy_pair"] > components["pair_light_capping_heavy"]

    def test_ecc2_variant_strictly_stronger(self):
        # Section VII-G: replacing ECC-1 with ECC-2 enhances every level.
        ecc2 = SuDokuReliabilityModel.for_ecc2(ber=BER)
        assert ecc2.fit_x() < self.model.fit_x()
        assert ecc2.fit_y() < self.model.fit_y()
        assert ecc2.fit_z() < self.model.fit_z()

    def test_ecc2_heavy_threshold_shifts(self):
        ecc2 = SuDokuReliabilityModel.for_ecc2(ber=BER)
        assert ecc2.p_light == ecc2.p_exact(3)
        assert ecc2.p_heavy == ecc2.p_at_least(4)

    def test_sdr_cap_sanity_enforced(self):
        with pytest.raises(ValueError):
            SuDokuReliabilityModel(ber=BER, ecc_t=3)  # pair needs 8 > 6

    def test_summary_keys(self):
        summary = self.model.summary()
        for key in ("fit_x", "fit_y", "fit_z", "sdc_fit", "mttf_x_seconds"):
            assert key in summary

    def test_validation(self):
        with pytest.raises(ValueError):
            SuDokuReliabilityModel(ber=-0.1)
        with pytest.raises(ValueError):
            SuDokuReliabilityModel(ber=BER, num_lines=1000, group_size=512)


class TestBaselineModels:
    def test_cppc_fails_continuously(self):
        # Paper: 1.69e14 FIT, i.e. essentially every interval.
        assert cppc_model(BER).fit == pytest.approx(1.8e14, rel=0.1)

    def test_ordering_matches_table11(self):
        sudoku = SuDokuReliabilityModel(ber=BER).fit_z()
        raid6 = raid6_model(BER).fit
        twodp = twodp_model(BER).fit
        cppc = cppc_model(BER).fit
        # SuDoku << RAID-6 <= 2DP << CPPC (the table's ordering).
        assert sudoku < 1e-3 < raid6 < cppc
        assert sudoku * 1e6 < min(raid6, twodp)  # ">= 10^6 times as strong"

    def test_hiecc_weaker_than_per_line_ecc6_and_sudoku(self):
        hiecc = hiecc_model(BER).fit
        ecc6 = ecc6_per_line_model(BER).fit
        sudoku = SuDokuReliabilityModel(ber=BER).fit_z()
        assert hiecc > ecc6 > sudoku

    def test_hiecc_uses_wider_field(self):
        result = hiecc_model(BER)
        assert "1024B" in result.name


class TestSRAMModel:
    def test_ecc_rows_match_paper_band(self):
        assert ecc_k_cache_failure(7) == pytest.approx(PAPER.sram_cache_fail_ecc7, rel=0.7)
        assert ecc_k_cache_failure(8) == pytest.approx(PAPER.sram_cache_fail_ecc8, rel=1.5)
        assert ecc_k_cache_failure(9) == pytest.approx(PAPER.sram_cache_fail_ecc9, rel=2.0)

    def test_ecc_rows_monotone(self):
        assert (
            ecc_k_cache_failure(7)
            > ecc_k_cache_failure(8)
            > ecc_k_cache_failure(9)
        )

    def test_sudoku_improves_with_smaller_groups(self):
        failures = [
            sudoku_persistent_cache_failure(group_size=g) for g in (8, 16, 32)
        ]
        assert failures == sorted(failures)

    def test_sudoku_small_group_beats_ecc9(self):
        # The qualitative Table IV claim our model supports: SuDoku with a
        # fault-rate-appropriate group size outperforms ECC-9.
        assert sudoku_persistent_cache_failure(group_size=8) < ecc_k_cache_failure(9)

    def test_table_assembly(self):
        rows = sram_vmin_table()
        schemes = [row["scheme"] for row in rows]
        assert schemes[:3] == ["ECC-7", "ECC-8", "ECC-9"]
        assert any("SuDoku" in s for s in schemes[3:])
