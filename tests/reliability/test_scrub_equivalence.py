"""Dense-vs-sparse golden equivalence for the scrub fast path.

The sparse scrub mode decodes only the array's dirty frames and
bulk-accounts every other line as ``clean``.  These tests pin the load
bearing claim from docs/performance.md: for the same seed, the outcome
counters (and hence every failure statistic derived from them) are
*bit-identical* between modes -- for the SuDoku engines, for every
baseline, under metadata/visit chaos, and for the rare-event simulator.
"""

import random

import numpy as np
import pytest

from repro.baselines.cppc import CPPCCache
from repro.baselines.eccline import ECCLineCache
from repro.baselines.hiecc import HiECCCache
from repro.baselines.raid6 import RAID6Cache
from repro.baselines.twodp import TwoDPCache
from repro.coding.bch import BCH
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import (
    run_engine_campaign,
    run_group_campaign,
)
from repro.reliability.raresim import ConditionalGroupSimulator
from repro.resilience.chaos import ChaosInjector, ChaosPolicy
from repro.sttram.array import STTRAMArray

BER = 3e-4
INTERVALS = 12
GROUP = 8

#: Small shared BCH codes so the module builds generator polynomials once.
LINE_CODE = BCH(64, 3, m=8)
REGION_CODE = BCH(256, 3, m=9)


def _campaign(make_scheme, scrub_mode, seed=5, ber=BER, chaos_policy=None):
    """One campaign on a freshly built scheme; twin runs share the seed."""
    chaos = (
        ChaosInjector(chaos_policy, seed=99) if chaos_policy is not None else None
    )
    return run_engine_campaign(
        make_scheme(),
        ber=ber,
        intervals=INTERVALS,
        rng=np.random.default_rng(seed),
        chaos=chaos,
        scrub_mode=scrub_mode,
    )


def _assert_equivalent(make_scheme, ber=BER, chaos_policy=None):
    dense = _campaign(make_scheme, "dense", ber=ber, chaos_policy=chaos_policy)
    sparse = _campaign(make_scheme, "sparse", ber=ber, chaos_policy=chaos_policy)
    assert sparse.as_dict() == dense.as_dict()
    assert sum(sparse.outcomes.values()) > 0


class TestSuDokuEngines:
    @pytest.mark.parametrize("level", ["X", "Y", "Z"])
    def test_group_campaign_equivalence(self, level):
        results = [
            run_group_campaign(
                level, BER, trials=INTERVALS, group_size=GROUP,
                rng=np.random.default_rng(21), scrub_mode=mode,
            )
            for mode in ("dense", "sparse")
        ]
        assert results[0].as_dict() == results[1].as_dict()

    @pytest.mark.parametrize("level", ["X", "Y", "Z"])
    def test_equivalence_under_chaos(self, level):
        """Visit drops/duplicates and metadata faults perturb both modes
        identically (the chaos RNG is consumed before mode dispatch)."""
        policy = ChaosPolicy(
            plt_flip_rate=0.02,
            map_swap_rate=0.01,
            visit_drop_rate=0.05,
            visit_duplicate_rate=0.05,
        )
        results = [
            run_group_campaign(
                level, 8e-4, trials=INTERVALS, group_size=GROUP,
                rng=np.random.default_rng(33),
                chaos=ChaosInjector(policy, seed=7),
                scrub_mode=mode,
            )
            for mode in ("dense", "sparse")
        ]
        assert results[0].as_dict() == results[1].as_dict()


class TestBaselines:
    def test_eccline(self):
        _assert_equivalent(
            lambda: ECCLineCache(
                num_lines=16, t=LINE_CODE.t, data_bits=LINE_CODE.k,
                code=LINE_CODE,
            ),
            ber=2e-3,
        )

    def test_cppc(self):
        _assert_equivalent(lambda: CPPCCache(num_lines=16), ber=1e-3)

    def test_raid6(self):
        _assert_equivalent(
            lambda: RAID6Cache(num_lines=32, group_size=8), ber=1e-3
        )

    def test_twodp(self):
        def make():
            codec = LineCodec()
            array = STTRAMArray(GROUP * GROUP, codec.stored_bits)
            return TwoDPCache(array, group_size=GROUP, codec=codec)

        _assert_equivalent(make, ber=8e-4)

    def test_hiecc(self):
        _assert_equivalent(
            lambda: HiECCCache(
                num_regions=8, region_bytes=32, t=REGION_CODE.t,
                code=REGION_CODE,
            ),
            ber=1e-3,
        )


class TestRaresim:
    def test_sparse_matches_dense_trials(self):
        results = []
        for sparse in (False, True):
            simulator = ConditionalGroupSimulator(
                ber=4e-4, group_size=16, num_groups=16,
                rng=random.Random(3), sparse=sparse,
            )
            results.append(simulator.run("Z", 40).as_dict())
        assert results[0] == results[1]


class TestPermanentFaults:
    """Sparse == dense with stuck-at faults attached.

    Stuck bits re-assert after every correction, so frames whose stuck
    value conflicts with the written content are *permanently* dirty --
    the sparse pass must keep visiting them forever, not just while a
    transient residue lasts.  These tests pin that the raw-dirty
    bookkeeping (``stored != golden``, not residual-clean) keeps the two
    modes bit-identical.
    """

    @staticmethod
    def _stuck_engine(seed=17, ppm=4000.0):
        from repro.sttram.faults import PermanentFaultMap

        engine = ECCLineCache(
            num_lines=16, t=LINE_CODE.t, data_bits=LINE_CODE.k,
            code=LINE_CODE,
        )
        engine.array.attach_permanent_faults(
            PermanentFaultMap.random(
                engine.array.num_lines, engine.array.line_bits,
                fault_ppm=ppm, rng=np.random.default_rng(seed),
            )
        )
        return engine

    def test_engine_campaign_equivalence_with_stuck_bits(self):
        _assert_equivalent(self._stuck_engine, ber=1e-3)

    def test_stuck_conflicting_frames_stay_dirty(self):
        engine = self._stuck_engine()
        array = engine.array
        assert array.has_permanent_faults
        run_engine_campaign(
            engine, ber=0.0, intervals=3,
            rng=np.random.default_rng(1), scrub_mode="sparse",
        )
        # After scrubbing with zero transient faults, any line whose
        # stored value still differs from golden does so only because
        # of stuck bits -- and must still be tracked as dirty.
        for line in array.dirty_frames():
            faults = array.permanent_faults
            assert faults.error_vector(line, array.golden(line)) != 0

    @pytest.mark.parametrize("scheme", ["Z", "eccline", "raid6", "twodp"])
    def test_scenario_campaign_equivalence(self, scheme):
        from repro.reliability.scenario import (
            BurstSpec,
            FaultScenario,
            StuckSpec,
            run_scenario_campaign,
        )

        scenario = FaultScenario(
            transient_ber=2e-3,
            burst=BurstSpec.fixed_length(rate=0.05, length=3, interleave=2),
            stuck=StuckSpec(ppm=400.0),
        )
        results = [
            run_scenario_campaign(
                scheme, scenario, intervals=INTERVALS, group_size=4,
                seed=13, scrub_mode=mode,
            )
            for mode in ("dense", "sparse")
        ]
        assert results[0].as_dict() == results[1].as_dict()
        assert sum(results[0].outcomes.values()) > 0


class TestCLIFlags:
    def test_scrub_mode_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["campaign"]).scrub_mode == "sparse"
        assert parser.parse_args(["campaign", "--dense"]).scrub_mode == "dense"
        assert parser.parse_args(["campaign", "--sparse"]).scrub_mode == "sparse"
        assert parser.parse_args(["raresim", "--dense"]).scrub_mode == "dense"
        assert parser.parse_args(["chaos", "--dense"]).scrub_mode == "dense"

    def test_flags_mutually_exclusive(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["campaign", "--sparse", "--dense"])
