"""Unit tests for FIT/MTTF conversions."""

import pytest

from repro.reliability.fit import (
    fit_from_interval_probability,
    fit_to_mttf_hours,
    interval_probability_from_fit,
    intervals_per_billion_hours,
    mttf_hours_to_fit,
    mttf_seconds_from_interval_probability,
)


class TestConversions:
    def test_intervals_per_billion_hours(self):
        assert intervals_per_billion_hours(0.020) == pytest.approx(1.8e14)

    def test_paper_ecc6_anchor(self):
        # Table II: cache failure 5.1e-16 per 20 ms -> 0.092 FIT.
        assert fit_from_interval_probability(5.1e-16, 0.020) == pytest.approx(
            0.0918, rel=1e-3
        )

    def test_roundtrip(self):
        for p in (1e-16, 1e-8, 0.01, 0.5):
            fit = fit_from_interval_probability(p, 0.020)
            assert interval_probability_from_fit(fit, 0.020) == pytest.approx(p, rel=1e-9)

    def test_saturation_clamp(self):
        # Certain failure per interval reports the saturation rate.
        assert fit_from_interval_probability(1.0, 0.020) == pytest.approx(1.8e14)

    def test_zero(self):
        assert fit_from_interval_probability(0.0, 0.020) == 0.0


class TestMTTF:
    def test_paper_sudoku_x_anchor(self):
        # SuDoku-X: cache failure ~5e-3 per 20 ms -> MTTF of seconds.
        mttf = mttf_seconds_from_interval_probability(5.4e-3, 0.020)
        assert 3.0 < mttf < 4.5

    def test_fit_mttf_inverse(self):
        assert fit_to_mttf_hours(1.0) == pytest.approx(1e9)
        assert mttf_hours_to_fit(1e9) == pytest.approx(1.0)

    def test_zero_probability_is_infinite_mttf(self):
        assert mttf_seconds_from_interval_probability(0.0, 0.020) == float("inf")
        assert fit_to_mttf_hours(0.0) == float("inf")


class TestValidation:
    def test_probability_range(self):
        with pytest.raises(ValueError):
            fit_from_interval_probability(1.5, 0.020)
        with pytest.raises(ValueError):
            mttf_seconds_from_interval_probability(-0.1, 0.020)

    def test_interval_positive(self):
        with pytest.raises(ValueError):
            intervals_per_billion_hours(0.0)

    def test_fit_nonnegative(self):
        with pytest.raises(ValueError):
            interval_probability_from_fit(-1.0, 0.020)
        with pytest.raises(ValueError):
            mttf_hours_to_fit(0.0)
