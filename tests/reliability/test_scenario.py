"""Determinism and composition tests for mixed fault scenarios.

The scenario subsystem's contract (docs/faultmodels.md): for the same
``(scheme, scenario, intervals, seed)`` the campaign result is
bit-identical whether it runs serial or sharded, dense or sparse,
uninterrupted or killed-and-resumed, with or without the work split
across ``interval_start`` boundaries.  Every test here pins one face of
that contract; the CI fault-scenario job re-checks the same guarantees
end-to-end through the CLI.
"""

import json
import random

import pytest

from repro.parallel import run_sharded_scenario
from repro.reliability.scenario import (
    SCHEMES,
    BurstSpec,
    FaultScenario,
    StuckSpec,
    build_scheme,
    run_scenario_campaign,
)
from repro.resilience import Checkpointer, ChaosPolicy, Deadline, load_checkpoint

# Small but non-trivial geometry: every run sees corrections and most
# see failures, so the bit-identity assertions have teeth.
GROUP, INTERVALS, SEED = 4, 12, 11

MIXED = FaultScenario(
    transient_ber=2e-3,
    burst=BurstSpec(rate=0.05, length_pmf=((2, 0.5), (4, 0.5)), interleave=2),
    stuck=StuckSpec(ppm=300.0),
)

CHAOS = ChaosPolicy(plt_flip_rate=0.02, visit_drop_rate=0.02)


def _serial(scheme, scenario=MIXED, **kwargs):
    defaults = dict(
        intervals=INTERVALS, group_size=GROUP, seed=SEED, scrub_mode="sparse"
    )
    defaults.update(kwargs)
    return run_scenario_campaign(scheme, scenario, **defaults)


class TestSpecs:
    def test_burst_spec_roundtrip(self):
        spec = BurstSpec(
            rate=0.05, length_pmf=((2, 0.25), (5, 0.75)),
            span=32, alignment=4, multiplicity=2, interleave=2,
        )
        assert BurstSpec.from_dict(spec.as_dict()) == spec

    def test_fixed_length_constructor(self):
        spec = BurstSpec.fixed_length(rate=0.1, length=3)
        assert spec.pmf_dict() == {3: 1.0}

    def test_scenario_roundtrip(self):
        assert FaultScenario.from_dict(MIXED.as_dict()) == MIXED

    def test_scenario_json_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(MIXED.as_dict()))
        assert FaultScenario.load(str(path)) == MIXED

    def test_inactive_scenario(self):
        assert not FaultScenario().active
        assert MIXED.active

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstSpec(rate=1.5, length_pmf=((2, 1.0),))
        with pytest.raises(ValueError):
            BurstSpec(rate=0.1, length_pmf=())
        with pytest.raises(ValueError):
            StuckSpec(ppm=-1.0)
        with pytest.raises(ValueError):
            FaultScenario(transient_ber=2.0)


class TestSchemes:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_runs_the_mixed_scenario(self, scheme):
        result = _serial(scheme, intervals=4)
        assert result.intervals == 4
        assert sum(result.outcomes.values()) > 0

    def test_build_scheme_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_scheme("NOPE")


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["Z", "eccline", "raid6"])
    def test_sparse_matches_dense(self, scheme):
        dense = _serial(scheme, scrub_mode="dense")
        sparse = _serial(scheme, scrub_mode="sparse")
        assert sparse.as_dict() == dense.as_dict()

    def test_interval_split_matches_serial(self):
        """Splitting [0,12) into [0,5)+[5,9)+[9,12) via interval_start is
        the in-process version of what the shard executor does."""
        serial = _serial("Z")
        parts = [
            _serial("Z", intervals=n, interval_start=start)
            for start, n in ((0, 5), (5, 4), (9, 3))
        ]
        from repro.parallel import merge_campaign_results

        merged = merge_campaign_results(parts)
        assert merged.outcomes == serial.outcomes
        assert merged.metadata == serial.metadata
        assert merged.interval_failures == serial.interval_failures

    def test_shards_one_matches_serial(self):
        sharded = run_sharded_scenario(
            "Z", MIXED, INTERVALS, GROUP, shards=1, seed=SEED
        )
        assert sharded.as_dict() == _serial("Z").as_dict()

    def test_multiprocess_shards_match_serial(self):
        sharded = run_sharded_scenario(
            "Z", MIXED, INTERVALS, GROUP, shards=3, seed=SEED
        )
        assert sharded.as_dict() == _serial("Z").as_dict()

    def test_seed_changes_the_run(self):
        assert _serial("Z").as_dict() != _serial("Z", seed=SEED + 1).as_dict()


class TestChaosComposition:
    @pytest.mark.parametrize("scheme", ["Z", "raid6"])
    def test_chaos_sparse_matches_dense(self, scheme):
        runs = [
            _serial(
                scheme, chaos_policy=CHAOS, chaos_seed=5, scrub_mode=mode
            )
            for mode in ("dense", "sparse")
        ]
        assert runs[0].as_dict() == runs[1].as_dict()

    def test_chaos_shards_match_serial(self):
        serial = _serial("Z", chaos_policy=CHAOS, chaos_seed=5)
        sharded = run_sharded_scenario(
            "Z", MIXED, INTERVALS, GROUP, shards=2, seed=SEED,
            chaos_policy=CHAOS, chaos_seed=5,
        )
        assert sharded.as_dict() == serial.as_dict()


class TestCheckpointResume:
    def test_kill_then_resume_matches_uninterrupted(self, tmp_path):
        reference = _serial("Z")
        ck = str(tmp_path / "ck.json")
        partial = _serial(
            "Z",
            checkpointer=Checkpointer(ck, every=3),
            deadline=Deadline(1e-9),
        )
        assert partial.truncated and partial.stop_reason == "deadline"
        assert partial.intervals < INTERVALS
        resumed = _serial(
            "Z",
            checkpointer=Checkpointer(
                ck, every=3, resume=load_checkpoint(ck, "scenario")
            ),
        )
        assert resumed.as_dict() == reference.as_dict()

    def test_sharded_kill_then_resume_matches_uninterrupted(self, tmp_path):
        reference = run_sharded_scenario(
            "Z", MIXED, INTERVALS, GROUP, shards=2, seed=SEED
        )
        ck = str(tmp_path / "ck.json")
        run_sharded_scenario(
            "Z", MIXED, INTERVALS, GROUP, shards=2, seed=SEED,
            checkpoint_path=ck, checkpoint_every=1, deadline_s=1e-6,
        )
        resumed = run_sharded_scenario(
            "Z", MIXED, INTERVALS, GROUP, shards=2, seed=SEED,
            checkpoint_path=ck, checkpoint_every=1, resume_from=ck,
        )
        assert resumed.as_dict() == reference.as_dict()

    def test_checkpoint_carries_no_rng_state(self, tmp_path):
        """The seed tree makes interval RNG a pure function of (seed,
        index); the checkpoint must stay RNG-free so resumes cannot
        diverge from the serial stream."""
        ck = str(tmp_path / "ck.json")
        _serial("Z", checkpointer=Checkpointer(ck, every=1))
        payload = load_checkpoint(ck, "scenario")
        assert payload["rng"] == {}
        assert payload["config"]["scenario"] == MIXED.as_dict()

    def test_mismatched_scenario_rejected_on_resume(self, tmp_path):
        from repro.resilience import CheckpointError

        ck = str(tmp_path / "ck.json")
        _serial("Z", checkpointer=Checkpointer(ck, every=1))
        other = FaultScenario(transient_ber=1e-3)
        with pytest.raises(CheckpointError):
            run_scenario_campaign(
                "Z", other, INTERVALS, GROUP, seed=SEED,
                checkpointer=Checkpointer(
                    ck, every=1, resume=load_checkpoint(ck, "scenario")
                ),
            )


class TestRaresimOverlay:
    @staticmethod
    def _simulator(scenario, sparse=True, seed=3):
        from repro.reliability.raresim import ConditionalGroupSimulator

        return ConditionalGroupSimulator(
            ber=1e-3, group_size=8, num_groups=32,
            rng=random.Random(seed), sparse=sparse, scenario=scenario,
        )

    def test_overlay_is_deterministic(self):
        results = [
            self._simulator(MIXED).run("Z", 60).as_dict() for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_overlay_sparse_matches_dense(self):
        sparse = self._simulator(MIXED, sparse=True).run("Z", 60)
        dense = self._simulator(MIXED, sparse=False).run("Z", 60)
        assert sparse.as_dict() == dense.as_dict()

    def test_overlay_changes_the_estimate(self):
        plain = self._simulator(None).run("Z", 60)
        mixed = self._simulator(MIXED).run("Z", 60)
        assert plain.as_dict() != mixed.as_dict()

    def test_overlay_kill_then_resume(self, tmp_path):
        reference = self._simulator(MIXED).run("Z", 60)
        ck = str(tmp_path / "ck.json")
        self._simulator(MIXED).run(
            "Z", 60,
            checkpointer=Checkpointer(ck, every=10),
            deadline=Deadline(1e-9),
        )
        resumed = self._simulator(MIXED).run(
            "Z", 60,
            checkpointer=Checkpointer(
                ck, every=10, resume=load_checkpoint(ck, "raresim")
            ),
        )
        assert resumed.as_dict() == reference.as_dict()
