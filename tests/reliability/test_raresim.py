"""Tests for the conditional rare-event simulator."""

import random

import pytest

from repro.reliability.raresim import (
    ConditionalGroupSimulator,
    ConditionalResult,
    estimate_fit,
)
from repro.reliability.sudokumodel import SuDokuReliabilityModel

GROUP = 16
BER = 4e-4


def make_simulator(ber=BER, group=GROUP, seed=3):
    return ConditionalGroupSimulator(
        ber=ber, group_size=group, num_groups=group, rng=random.Random(seed)
    )


class TestConditionalDistributions:
    def test_conditioning_probability_matches_model(self):
        simulator = make_simulator()
        model = SuDokuReliabilityModel(
            ber=BER, group_size=GROUP, num_lines=GROUP * GROUP, line_bits=553
        )
        assert simulator.conditioning_probability == pytest.approx(
            model.group_fail_x(), rel=1e-9
        )

    def test_injected_patterns_are_conditioned(self):
        simulator = make_simulator()
        for _ in range(20):
            array, _ = simulator._fresh_group()
            frames = simulator._inject_conditioned(array)
            assert len(frames) >= 2
            for frame in frames:
                faults = bin(array.error_vector(frame)).count("1")
                assert faults >= 2

    def test_fresh_group_parity_consistent(self):
        simulator = make_simulator()
        array, plt = simulator._fresh_group()
        from repro.coding.parity import xor_reduce

        assert plt.parity(0) == xor_reduce(
            array.read(f) for f in range(GROUP)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConditionalGroupSimulator(ber=0.0)
        with pytest.raises(ValueError):
            make_simulator().run("X", 10)


class TestTrials:
    def test_y_trial_runs_and_repairs_common_case(self):
        # At a mild BER most conditioned patterns are two 2-fault lines,
        # which Y repairs; failures must be the rare exception.
        simulator = make_simulator(seed=5)
        failures = sum(simulator.trial_y() for _ in range(60))
        assert failures < 15

    def test_z_trial_no_worse_than_y(self):
        simulator_y = make_simulator(ber=1.5e-3, seed=6)
        failures_y = sum(simulator_y.trial_y() for _ in range(60))
        simulator_z = make_simulator(ber=1.5e-3, seed=6)
        failures_z = sum(simulator_z.trial_z() for _ in range(60))
        assert failures_z <= failures_y

    def test_y_estimate_brackets_model(self):
        result = estimate_fit("Y", 6e-4, trials=400, group_size=GROUP, seed=9)
        model = SuDokuReliabilityModel(
            ber=6e-4, group_size=GROUP, num_lines=GROUP * GROUP
        )
        conditional_model = model.group_fail_y() / result.conditioning_probability
        low, high = result.conditional_ci(z=2.8)
        # The model is a (mild) upper bound built from the same rules.
        assert result.conditional_failure_probability <= conditional_model * 2.0
        assert high >= conditional_model * 0.2


class TestResultArithmetic:
    def test_composition(self):
        result = ConditionalResult(
            trials=100, conditional_failures=10,
            conditioning_probability=1e-3, ber=1e-4,
            group_size=16, num_groups=1000, interval_s=0.020,
        )
        assert result.conditional_failure_probability == pytest.approx(0.1)
        assert result.group_failure_probability == pytest.approx(1e-4)
        assert result.cache_failure_probability() == pytest.approx(
            1 - (1 - 1e-4) ** 1000
        )
        assert result.fit() > 0

    def test_ci_bounds(self):
        result = ConditionalResult(
            trials=0, conditional_failures=0, conditioning_probability=1e-3,
            ber=1e-4, group_size=16, num_groups=10, interval_s=0.02,
        )
        assert result.conditional_ci() == (0.0, 1.0)
        assert result.conditional_failure_probability == 0.0
