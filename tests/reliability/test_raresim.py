"""Tests for the conditional rare-event simulator."""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.reliability.raresim import (
    ConditionalGroupSimulator,
    ConditionalResult,
    estimate_fit,
)
from repro.reliability.sudokumodel import SuDokuReliabilityModel

GROUP = 16
BER = 4e-4


def make_simulator(ber=BER, group=GROUP, seed=3):
    return ConditionalGroupSimulator(
        ber=ber, group_size=group, num_groups=group, rng=random.Random(seed)
    )


class TestConditionalDistributions:
    def test_conditioning_probability_matches_model(self):
        simulator = make_simulator()
        model = SuDokuReliabilityModel(
            ber=BER, group_size=GROUP, num_lines=GROUP * GROUP, line_bits=553
        )
        assert simulator.conditioning_probability == pytest.approx(
            model.group_fail_x(), rel=1e-9
        )

    def test_injected_patterns_are_conditioned(self):
        simulator = make_simulator()
        for _ in range(20):
            array, _ = simulator._fresh_group()
            frames = simulator._inject_conditioned(array)
            assert len(frames) >= 2
            for frame in frames:
                faults = bin(array.error_vector(frame)).count("1")
                assert faults >= 2

    def test_fresh_group_parity_consistent(self):
        simulator = make_simulator()
        array, plt = simulator._fresh_group()
        from repro.coding.parity import xor_reduce

        assert plt.parity(0) == xor_reduce(
            array.read(f) for f in range(GROUP)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConditionalGroupSimulator(ber=0.0)
        with pytest.raises(ValueError):
            make_simulator().run("X", 10)


class TestTrials:
    def test_y_trial_runs_and_repairs_common_case(self):
        # At a mild BER most conditioned patterns are two 2-fault lines,
        # which Y repairs; failures must be the rare exception.
        simulator = make_simulator(seed=5)
        failures = sum(simulator.trial_y() for _ in range(60))
        assert failures < 15

    def test_z_trial_no_worse_than_y(self):
        simulator_y = make_simulator(ber=1.5e-3, seed=6)
        failures_y = sum(simulator_y.trial_y() for _ in range(60))
        simulator_z = make_simulator(ber=1.5e-3, seed=6)
        failures_z = sum(simulator_z.trial_z() for _ in range(60))
        assert failures_z <= failures_y

    def test_y_estimate_brackets_model(self):
        result = estimate_fit("Y", 6e-4, trials=400, group_size=GROUP, seed=9)
        model = SuDokuReliabilityModel(
            ber=6e-4, group_size=GROUP, num_lines=GROUP * GROUP
        )
        conditional_model = model.group_fail_y() / result.conditioning_probability
        low, high = result.conditional_ci(z=2.8)
        # The model is a (mild) upper bound built from the same rules.
        assert result.conditional_failure_probability <= conditional_model * 2.0
        assert high >= conditional_model * 0.2


class TestResultArithmetic:
    def test_composition(self):
        result = ConditionalResult(
            trials=100, conditional_failures=10,
            conditioning_probability=1e-3, ber=1e-4,
            group_size=16, num_groups=1000, interval_s=0.020,
        )
        assert result.conditional_failure_probability == pytest.approx(0.1)
        assert result.group_failure_probability == pytest.approx(1e-4)
        assert result.cache_failure_probability() == pytest.approx(
            1 - (1 - 1e-4) ** 1000
        )
        assert result.fit() > 0

    def test_ci_bounds(self):
        result = ConditionalResult(
            trials=0, conditional_failures=0, conditioning_probability=1e-3,
            ber=1e-4, group_size=16, num_groups=10, interval_s=0.02,
        )
        assert result.conditional_ci() == (0.0, 1.0)
        assert result.conditional_failure_probability == 0.0


class TestResultSchema:
    def make(self, trials=200, failures=7):
        return ConditionalResult(
            trials=trials, conditional_failures=failures,
            conditioning_probability=1e-3, ber=1e-4,
            group_size=16, num_groups=1000, interval_s=0.020,
            truncated=True, stop_reason="deadline",
        )

    def test_as_dict_includes_derived_statistics(self):
        result = self.make()
        payload = result.as_dict()
        low, high = result.conditional_ci()
        assert payload["conditional_ci_low"] == low
        assert payload["conditional_ci_high"] == high
        assert payload["cache_failure_probability"] == (
            result.cache_failure_probability()
        )
        assert payload["fit"] == result.fit()

    def test_round_trip(self):
        result = self.make()
        clone = ConditionalResult.from_dict(result.as_dict())
        assert clone.as_dict() == result.as_dict()

    def test_round_trip_through_json(self):
        result = self.make()
        payload = json.loads(json.dumps(result.as_dict()))
        clone = ConditionalResult.from_dict(payload)
        assert clone.as_dict() == result.as_dict()

    def test_from_dict_ignores_stale_derived_fields(self):
        payload = self.make().as_dict()
        payload["conditional_ci_low"] = 0.9  # corrupt a derived field
        payload["fit"] = -1.0
        clone = ConditionalResult.from_dict(payload)
        assert clone.as_dict() == self.make().as_dict()


class TestConditionalCiProperties:
    @staticmethod
    def make(trials, failures):
        return ConditionalResult(
            trials=trials, conditional_failures=failures,
            conditioning_probability=1e-3, ber=1e-4,
            group_size=16, num_groups=1000, interval_s=0.020,
        )

    @given(trials=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_zero_failures_lower_bound_is_exactly_zero(self, trials):
        low, high = self.make(trials, 0).conditional_ci()
        assert low == 0.0
        assert 0.0 <= high <= 1.0

    @given(trials=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_all_failures_upper_bound_is_exactly_one(self, trials):
        low, high = self.make(trials, trials).conditional_ci()
        assert high == 1.0
        assert 0.0 <= low <= 1.0

    @given(
        trials=st.integers(min_value=1, max_value=10**6),
        rate=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_bounds_within_unit_interval_and_bracket_estimate(
        self, trials, rate
    ):
        failures = min(trials, int(rate * trials))
        result = self.make(trials, failures)
        low, high = result.conditional_ci()
        assert 0.0 <= low <= high <= 1.0
        assert low <= result.conditional_failure_probability <= high

    @given(
        trials=st.integers(min_value=10, max_value=10**6),
        factor=st.integers(min_value=2, max_value=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_width_shrinks_as_trials_grow(self, trials, factor):
        # Same observed failure rate, more trials -> narrower interval.
        failures = trials // 5
        low_a, high_a = self.make(trials, failures).conditional_ci()
        low_b, high_b = self.make(
            trials * factor, failures * factor
        ).conditional_ci()
        assert (high_b - low_b) <= (high_a - low_a)


class TestEstimateFitSeedResolution:
    def test_seeded_stream_matches_inline_random(self):
        # resolve_pyrandom(seed=s) must be bit-identical to the
        # historical inline random.Random(s) construction.
        via_api = estimate_fit("Y", BER, trials=40, group_size=GROUP, seed=11)
        simulator = ConditionalGroupSimulator(
            ber=BER, group_size=GROUP, num_groups=2048,
            rng=random.Random(11),
        )
        direct = simulator.run("Y", 40)
        assert via_api.as_dict() == direct.as_dict()

    def test_injected_rng_unsupported_seed_still_deterministic(self):
        first = estimate_fit("Z", BER, trials=30, group_size=GROUP, seed=4)
        second = estimate_fit("Z", BER, trials=30, group_size=GROUP, seed=4)
        assert first.as_dict() == second.as_dict()
