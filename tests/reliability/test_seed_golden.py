"""Golden same-seed results: the RNG refactor changed nothing.

These exact dictionaries were captured from the seeded sharded runners
*before* the ``core.rng`` seed-threading refactor and the RPR001-RPR003
repairs landed.  A seeded campaign is a pure function of its seed; any
drift here means a code change silently rewired an RNG stream or an
outcome label, which is precisely the regression class the refactor is
not allowed to introduce.

Do not "update" these values to make a failure pass without
establishing exactly which change moved them and why that is correct.
"""

from repro.parallel.runner import run_sharded_campaign, run_sharded_raresim

GOLDEN_CAMPAIGN = {
    "intervals": 5,
    "ber": 0.005,
    "interval_s": 0.02,
    "outcomes": {
        "due": 235,
        "corrected_ecc1": 54,
        "clean": 29,
        "corrected_hash2": 2,
    },
    "interval_failures": 5,
    "lines": 64,
    "truncated": False,
    "stop_reason": "",
    "metadata": {},
    "failure_probability": 1.0,
}

GOLDEN_RARESIM = {
    "trials": 6,
    "conditional_failures": 1,
    "conditioning_probability": 0.5208748866882723,
    "ber": 0.001,
    "group_size": 16,
    "num_groups": 64,
    "interval_s": 0.02,
    "truncated": False,
    "stop_reason": "",
    "conditional_failure_probability": 0.16666666666666666,
    "fit": 1046177647133291.6,
    # Derived fields added to as_dict() by the serve PR; every tally
    # above is untouched, and these are pure functions of those tallies
    # (pinned against ConditionalResult's own recomputation in
    # tests/reliability/test_raresim.py::TestResultSchema).
    "conditional_ci_low": 0.03005258587173032,
    "conditional_ci_high": 0.563509436563646,
    "cache_failure_probability": 0.9970088520623641,
}


def test_seeded_campaign_is_bit_identical_to_pre_refactor_capture():
    result = run_sharded_campaign(
        "Z", 5e-3, 5, 8, shards=1, seed=7
    ).as_dict()
    assert result == GOLDEN_CAMPAIGN


def test_seeded_raresim_is_bit_identical_to_pre_refactor_capture():
    result = run_sharded_raresim(
        "Z", 1e-3, 6, 16, 64, shards=1, seed=3
    ).as_dict()
    assert result == GOLDEN_RARESIM
