"""Unit tests for log-domain binomial utilities (vs scipy ground truth)."""

import math

import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats

from repro.reliability.binomial import (
    at_least_m_of,
    binomial_pmf,
    binomial_tail,
    complement_power,
    log_binomial_coefficient,
    log_binomial_pmf,
    poisson_tail,
    union_bound,
)


class TestLogCoefficients:
    def test_known_values(self):
        assert math.exp(log_binomial_coefficient(5, 2)) == pytest.approx(10)
        assert math.exp(log_binomial_coefficient(553, 0)) == pytest.approx(1)

    def test_out_of_range(self):
        assert log_binomial_coefficient(5, 6) == float("-inf")
        assert log_binomial_coefficient(5, -1) == float("-inf")


class TestPMF:
    def test_matches_scipy_moderate(self):
        for k in range(6):
            ours = binomial_pmf(553, k, 1e-3)
            reference = stats.binom.pmf(k, 553, 1e-3)
            assert ours == pytest.approx(reference, rel=1e-9)

    def test_extreme_tail_no_underflow(self):
        # ECC-6 regime: P[X = 7] at p = 5.3e-6 over 572 bits ~ 4e-22.
        value = binomial_pmf(572, 7, 5.3e-6)
        assert 1e-23 < value < 1e-20

    def test_edge_probabilities(self):
        assert binomial_pmf(10, 0, 0.0) == 1.0
        assert binomial_pmf(10, 3, 0.0) == 0.0
        assert binomial_pmf(10, 10, 1.0) == 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            log_binomial_pmf(10, 2, 1.5)


class TestTail:
    def test_matches_scipy(self):
        for k in (1, 2, 5):
            ours = binomial_tail(553, k, 1e-4)
            reference = stats.binom.sf(k - 1, 553, 1e-4)
            assert ours == pytest.approx(reference, rel=1e-6)

    def test_boundaries(self):
        assert binomial_tail(10, 0, 0.3) == 1.0
        assert binomial_tail(10, 11, 0.3) == 0.0

    def test_alias(self):
        assert at_least_m_of(100, 2, 0.01) == binomial_tail(100, 2, 0.01)

    def test_paper_table2_line_probability(self):
        # ECC-1 line failure: P[>= 2 faults over 522 bits] ~ 3.9e-6.
        value = binomial_tail(522, 2, 5.3e-6)
        assert value == pytest.approx(3.9e-6, rel=0.05)


class TestPoissonTail:
    def test_matches_scipy(self):
        for k in (1, 3, 8):
            ours = poisson_tail(0.553, k)
            reference = stats.poisson.sf(k - 1, 0.553)
            assert ours == pytest.approx(reference, rel=1e-9)

    def test_boundary(self):
        assert poisson_tail(1.0, 0) == 1.0

    def test_binomial_limit(self):
        # Binomial(n, p) -> Poisson(np) as n grows.
        assert binomial_tail(10_000, 3, 1e-4) == pytest.approx(
            poisson_tail(1.0, 3), rel=1e-3
        )


class TestComposition:
    def test_union_bound_clips(self):
        assert union_bound([0.7, 0.7]) == 1.0
        assert union_bound([0.1, 0.2]) == pytest.approx(0.3)

    def test_complement_power_small_p(self):
        # Survives the regime that underflows the naive formula.
        value = complement_power(1e-20, 1 << 20)
        assert value == pytest.approx(1e-20 * (1 << 20), rel=1e-6)

    def test_complement_power_edges(self):
        assert complement_power(0.0, 100) == 0.0
        assert complement_power(1.0, 1) == 1.0
        assert complement_power(0.5, 0) == 0.0

    def test_complement_power_matches_naive(self):
        assert complement_power(0.01, 100) == pytest.approx(
            1 - 0.99 ** 100, rel=1e-9
        )


@settings(max_examples=60)
@given(
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=0, max_value=10),
    st.floats(min_value=1e-9, max_value=0.5),
)
def test_property_tail_vs_scipy(n, k, p):
    ours = binomial_tail(n, k, p)
    reference = stats.binom.sf(k - 1, n, p)
    assert ours == pytest.approx(reference, rel=1e-5, abs=1e-12)
