"""Kill-and-resume acceptance tests: resumed == uninterrupted, bit for bit."""

import random

import numpy as np
import pytest

from repro.reliability.montecarlo import run_group_campaign
from repro.reliability.raresim import ConditionalGroupSimulator
from repro.resilience import (
    ChaosInjector,
    ChaosPolicy,
    Checkpointer,
    Deadline,
    load_checkpoint,
)

LEVEL = "Y"
BER = 5e-3
GROUP_SIZE = 16
INTERVALS = 8


class InterruptAfter:
    """Progress reporter that raises KeyboardInterrupt after N updates."""

    def __init__(self, updates: int) -> None:
        self.remaining = updates

    def update(self, n: int = 1) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt

    def finish(self) -> None:
        pass


def mc_campaign(seed=0, **kwargs):
    return run_group_campaign(
        LEVEL, BER, trials=INTERVALS, group_size=GROUP_SIZE,
        rng=np.random.default_rng(seed), **kwargs,
    )


class TestMonteCarloResume:
    def test_interrupted_then_resumed_equals_uninterrupted(self, tmp_path):
        path = str(tmp_path / "ck.json")
        partial = mc_campaign(
            checkpointer=Checkpointer(path=path),
            progress=InterruptAfter(3),
        )
        assert partial.truncated
        assert partial.stop_reason == "interrupted"
        assert partial.intervals == 3
        resumed = mc_campaign(
            checkpointer=Checkpointer(
                path=path, resume=load_checkpoint(path, "montecarlo")
            ),
        )
        baseline = mc_campaign()
        assert not resumed.truncated
        assert resumed.as_dict() == baseline.as_dict()

    def test_deadline_then_resumed_equals_uninterrupted(self, tmp_path):
        path = str(tmp_path / "ck.json")
        now = [0.0]

        def clock():
            now[0] += 1.0
            return now[0]

        partial = mc_campaign(
            checkpointer=Checkpointer(path=path),
            deadline=Deadline(1.5, clock=clock),
        )
        assert partial.truncated
        assert partial.stop_reason == "deadline"
        assert 0 < partial.intervals < INTERVALS
        resumed = mc_campaign(
            checkpointer=Checkpointer(
                path=path, resume=load_checkpoint(path, "montecarlo")
            ),
        )
        assert resumed.as_dict() == mc_campaign().as_dict()

    def test_periodic_checkpoints_flush_on_schedule(self, tmp_path):
        path = str(tmp_path / "ck.json")
        ck = Checkpointer(path=path, every=2)
        mc_campaign(checkpointer=ck)
        # INTERVALS/2 periodic writes plus the final completion flush.
        assert ck.writes == INTERVALS // 2 + 1
        final = load_checkpoint(path, "montecarlo")
        assert final["completed"] == INTERVALS

    def test_chaos_campaign_resumes_bit_identically(self, tmp_path):
        path = str(tmp_path / "ck.json")
        policy = ChaosPolicy(plt_flip_rate=0.05, visit_drop_rate=0.05)
        partial = mc_campaign(
            chaos=ChaosInjector(policy, seed=5),
            checkpointer=Checkpointer(path=path),
            progress=InterruptAfter(4),
        )
        assert partial.truncated
        resumed = mc_campaign(
            chaos=ChaosInjector(policy, seed=5),
            checkpointer=Checkpointer(
                path=path, resume=load_checkpoint(path, "montecarlo")
            ),
        )
        baseline = mc_campaign(chaos=ChaosInjector(policy, seed=5))
        assert resumed.as_dict() == baseline.as_dict()

    def test_resume_refuses_different_config(self, tmp_path):
        from repro.resilience import CheckpointError

        path = str(tmp_path / "ck.json")
        mc_campaign(checkpointer=Checkpointer(path=path))
        with pytest.raises(CheckpointError, match="ber"):
            run_group_campaign(
                LEVEL, 2 * BER, trials=INTERVALS, group_size=GROUP_SIZE,
                rng=np.random.default_rng(0),
                checkpointer=Checkpointer(
                    path=path, resume=load_checkpoint(path, "montecarlo")
                ),
            )

    def test_chaos_off_bit_identical_to_no_chaos_argument(self):
        zero = ChaosInjector(ChaosPolicy(), seed=9)
        with_knob = mc_campaign(chaos=zero)
        without = mc_campaign()
        assert with_knob.as_dict() == without.as_dict()

    def test_randomized_content_resume(self, tmp_path):
        from repro.core.engine import build_engine
        from repro.core.linecodec import LineCodec
        from repro.reliability.montecarlo import run_engine_campaign
        from repro.sttram.array import STTRAMArray

        def engine():
            codec = LineCodec()
            array = STTRAMArray(GROUP_SIZE * GROUP_SIZE, codec.stored_bits)
            return build_engine(
                LEVEL, array, group_size=GROUP_SIZE, codec=codec
            )

        def campaign(**kwargs):
            return run_engine_campaign(
                engine(), BER, INTERVALS, rng=np.random.default_rng(1),
                randomize_content=True, **kwargs,
            )

        path = str(tmp_path / "ck.json")
        partial = campaign(
            checkpointer=Checkpointer(path=path),
            progress=InterruptAfter(3),
        )
        assert partial.truncated
        resumed = campaign(
            checkpointer=Checkpointer(
                path=path, resume=load_checkpoint(path, "montecarlo")
            ),
        )
        assert resumed.as_dict() == campaign().as_dict()


class TestRaresimResume:
    def simulator(self):
        return ConditionalGroupSimulator(
            ber=1e-3, group_size=GROUP_SIZE, num_groups=64,
            rng=random.Random(3),
        )

    def test_interrupted_then_resumed_equals_uninterrupted(self, tmp_path):
        path = str(tmp_path / "ck.json")
        partial = self.simulator().run(
            "Z", 10,
            checkpointer=Checkpointer(path=path),
            progress=InterruptAfter(4),
        )
        assert partial.truncated
        assert partial.stop_reason == "interrupted"
        assert partial.trials == 4
        resumed = self.simulator().run(
            "Z", 10,
            checkpointer=Checkpointer(
                path=path, resume=load_checkpoint(path, "raresim")
            ),
        )
        baseline = self.simulator().run("Z", 10)
        assert not resumed.truncated
        assert resumed.as_dict() == baseline.as_dict()

    def test_deadline_truncates_cleanly(self, tmp_path):
        now = [0.0]

        def clock():
            now[0] += 1.0
            return now[0]

        result = self.simulator().run(
            "Y", 10, deadline=Deadline(2.5, clock=clock)
        )
        assert result.truncated
        assert result.stop_reason == "deadline"
        assert 0 < result.trials < 10

    def test_resume_refuses_different_level(self, tmp_path):
        from repro.resilience import CheckpointError

        path = str(tmp_path / "ck.json")
        self.simulator().run("Y", 4, checkpointer=Checkpointer(path=path))
        with pytest.raises(CheckpointError, match="level"):
            self.simulator().run(
                "Z", 4,
                checkpointer=Checkpointer(
                    path=path, resume=load_checkpoint(path, "raresim")
                ),
            )
