"""Tests for the tornado sensitivity analysis."""

import pytest

from repro.reliability.sensitivity import (
    DEFAULT_PERTURBATIONS,
    OperatingPoint,
    SensitivityEntry,
    tornado,
)


class TestOperatingPoint:
    def test_nominal_fit_matches_paper_point(self):
        fit = OperatingPoint().fit()
        assert 1e-7 < fit < 1e-4   # the validated Z band at (35, 10%, 20ms)

    def test_ecc2_point(self):
        assert OperatingPoint(ecc_t=2).fit() < OperatingPoint().fit()

    def test_worse_delta_worse_fit(self):
        assert OperatingPoint(delta_mean=33.0).fit() > OperatingPoint().fit()


class TestTornado:
    @pytest.fixture(scope="class")
    def entries(self):
        return tornado()

    def test_all_parameters_present(self, entries):
        assert {entry.parameter for entry in entries} == set(DEFAULT_PERTURBATIONS)

    def test_sorted_by_swing(self, entries):
        swings = [entry.swing_orders for entry in entries]
        assert swings == sorted(swings, reverse=True)

    def test_device_physics_dominates(self, entries):
        # The physical headline: reliability is exponential in the
        # device parameters. Variation sigma is the single most
        # dangerous exposure (it sets the weak-tail steepness), with
        # mean delta next; both dwarf every architectural knob.
        top_two = {entries[0].parameter, entries[1].parameter}
        assert top_two == {
            "process variation (sigma)", "thermal stability (delta)",
        }
        assert entries[0].swing_orders > 10.0
        assert entries[1].swing_orders > 3.0

    def test_scrub_interval_is_strong_actuator(self, entries):
        by_name = {entry.parameter: entry for entry in entries}
        assert by_name["scrub interval"].swing_orders > 2.0

    def test_cache_size_is_linear(self, entries):
        by_name = {entry.parameter: entry for entry in entries}
        entry = by_name["cache size"]
        # 32MB -> 128MB spans 4x = 0.6 orders.
        assert entry.swing_orders == pytest.approx(0.6, abs=0.05)
        assert entry.fit_low < entry.fit_nominal < entry.fit_high

    def test_directionality(self, entries):
        by_name = {entry.parameter: entry for entry in entries}
        # Shorter scrub -> lower FIT; bigger groups -> higher FIT.
        assert by_name["scrub interval"].fit_low < by_name["scrub interval"].fit_high
        assert by_name["RAID-Group size"].fit_low < by_name["RAID-Group size"].fit_high

    def test_swing_orders_math(self):
        entry = SensitivityEntry("x", "a", "b", 1e-6, 1e-4, 1e-5)
        assert entry.swing_orders == pytest.approx(2.0)
