"""Tests for the Monte-Carlo campaign harness (fast configurations)."""

import numpy as np
import pytest

from repro.baselines.cppc import CPPCCache
from repro.core.engine import SuDokuX
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import (
    CampaignResult,
    agreement_ratio,
    heal,
    run_engine_campaign,
    run_group_campaign,
)
from repro.reliability.sudokumodel import SuDokuReliabilityModel
from repro.sttram.array import STTRAMArray


class TestCampaignResult:
    def test_failure_probability(self):
        result = CampaignResult(intervals=100, ber=1e-3, interval_s=0.02)
        result.interval_failures = 25
        assert result.failure_probability == pytest.approx(0.25)

    def test_wilson_interval_contains_point(self):
        result = CampaignResult(intervals=200, ber=1e-3, interval_s=0.02)
        result.interval_failures = 20
        low, high = result.wilson_interval()
        assert low < 0.1 < high
        assert 0.0 <= low < high <= 1.0

    def test_wilson_empty(self):
        result = CampaignResult(intervals=0, ber=1e-3, interval_s=0.02)
        assert result.wilson_interval() == (0.0, 1.0)

    def test_fit_and_mttf(self):
        result = CampaignResult(intervals=100, ber=1e-3, interval_s=0.02)
        result.interval_failures = 1
        assert result.fit() > 0
        assert result.mttf_seconds() == pytest.approx(2.0)

    def test_outcome_rate(self):
        result = CampaignResult(intervals=10, ber=1e-3, interval_s=0.02)
        result.outcomes["corrected_ecc1"] = 50
        assert result.outcome_rate("corrected_ecc1") == pytest.approx(5.0)
        assert result.outcome_rate("missing") == 0.0


class TestHeal:
    def test_restores_golden(self):
        array = STTRAMArray(8, 64)
        array.write(0, 0xAA)
        array.inject(0, 0x0F)
        heal(array)
        assert array.is_clean(0)
        assert array.read(0) == 0xAA


class TestEngineCampaign:
    def test_small_campaign_runs_and_counts(self):
        codec = LineCodec()
        array = STTRAMArray(64, codec.stored_bits)
        engine = SuDokuX(array, group_size=8, codec=codec)
        result = run_engine_campaign(
            engine, ber=2e-4, intervals=30,
            rng=np.random.default_rng(7), randomize_content=True,
        )
        assert result.intervals == 30
        total_outcomes = sum(result.outcomes.values())
        assert total_outcomes > 0
        assert result.outcomes.get("sdc", 0) == 0
        # Campaign healed everything between intervals.
        assert array.faulty_lines() == []

    def test_campaign_with_baseline_scheme(self):
        cache = CPPCCache(num_lines=32)
        result = run_engine_campaign(
            cache, ber=1e-4, intervals=20, rng=np.random.default_rng(8)
        )
        assert result.intervals == 20

    def test_zero_ber_never_fails(self):
        codec = LineCodec()
        array = STTRAMArray(64, codec.stored_bits)
        engine = SuDokuX(array, group_size=8, codec=codec)
        result = run_engine_campaign(
            engine, ber=0.0, intervals=10, rng=np.random.default_rng(9),
            randomize_content=False,
        )
        assert result.interval_failures == 0
        # Sparse mode bulk-accounts every untouched line as clean: with
        # zero BER that is all 64 lines in each of the 10 intervals.
        assert result.outcomes == {"clean": 640}

    def test_zero_ber_dense_decodes_everything(self):
        codec = LineCodec()
        array = STTRAMArray(64, codec.stored_bits)
        engine = SuDokuX(array, group_size=8, codec=codec)
        result = run_engine_campaign(
            engine, ber=0.0, intervals=10, rng=np.random.default_rng(9),
            randomize_content=False, scrub_mode="dense",
        )
        assert result.interval_failures == 0
        assert result.outcomes == {"clean": 640}

    def test_rejects_unknown_scrub_mode(self):
        codec = LineCodec()
        array = STTRAMArray(16, codec.stored_bits)
        engine = SuDokuX(array, group_size=4, codec=codec)
        with pytest.raises(ValueError, match="scrub_mode"):
            run_engine_campaign(
                engine, ber=0.0, intervals=1,
                rng=np.random.default_rng(0), scrub_mode="bogus",
            )


class TestGroupCampaignValidation:
    def test_x_measurement_brackets_model(self):
        """The headline validation: functional X vs analytical X."""
        ber = 3e-4
        group = 16
        result = run_group_campaign(
            "X", ber, trials=250, group_size=group,
            rng=np.random.default_rng(10),
        )
        model = SuDokuReliabilityModel(
            ber=ber, group_size=group, num_lines=group * group
        )
        low, high = result.wilson_interval(z=2.6)
        predicted = model.cache_fail_x()
        assert low <= predicted <= high, (
            f"model {predicted:.4f} outside CI ({low:.4f}, {high:.4f})"
        )

    def test_agreement_ratio_helper(self):
        assert agreement_ratio(2.0, 1.0) == 2.0
        assert agreement_ratio(0.0, 0.0) == 1.0
        assert agreement_ratio(1.0, 0.0) == float("inf")
