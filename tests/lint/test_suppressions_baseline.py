"""Round trips for the two debt mechanisms: suppressions and baseline.

Inline suppressions silence a finding at the line that owns it; the
committed baseline grandfathers findings across the whole tree.  Both
must neither over- nor under-silence, and the baseline must survive a
serialise/parse round trip and path-prefix drift (repo root vs CI
checkout vs tmpdir).
"""

import json
import textwrap

import pytest

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    from_findings,
    load_baseline,
    write_baseline,
)
from repro.lint.findings import Finding, Severity
from repro.lint.runner import lint_paths, lint_source
from repro.lint.suppressions import SuppressionIndex


def lint(source, path="pkg/mod.py"):
    return lint_source(textwrap.dedent(source), path)


class TestInlineSuppressions:
    def test_same_line_directive(self):
        source = """\
        f = open(p, "w")  # repro-lint: disable=RPR003
        """
        assert lint(source) == []

    def test_preceding_comment_only_line(self):
        source = """\
        # The historical CLI stream predates the atomic writer.
        # repro-lint: disable=RPR003
        f = open(p, "w")
        """
        assert lint(source) == []

    def test_disable_all(self):
        source = """\
        f = open(p, "w")  # repro-lint: disable=all
        """
        assert lint(source) == []

    def test_multiple_rules_in_one_directive(self):
        source = """\
        import numpy as np
        rng = np.random.default_rng(); f = open(p, "w")  # repro-lint: disable=RPR002,RPR003
        """
        assert lint(source) == []

    def test_wrong_rule_does_not_suppress(self):
        source = """\
        f = open(p, "w")  # repro-lint: disable=RPR001
        """
        assert [f.rule for f in lint(source)] == ["RPR003"]

    def test_preceding_code_line_does_not_carry(self):
        # The directive rides a *code* line, so it must not leak onto
        # the next line's finding.
        source = """\
        a = 1  # repro-lint: disable=RPR003
        f = open(p, "w")
        """
        assert [f.rule for f in lint(source)] == ["RPR003"]

    def test_index_directly(self):
        index = SuppressionIndex(
            ["x = 1", "# repro-lint: disable=RPR001, RPR002", "y = 2"]
        )
        assert index.is_suppressed("RPR001", 3)
        assert index.is_suppressed("RPR002", 3)
        assert index.is_suppressed("RPR001", 2)
        assert not index.is_suppressed("RPR003", 3)
        assert not index.is_suppressed("RPR001", 1)


def make_finding(rule="RPR003", path="src/repro/perf/tracefile.py",
                 content='with open(path, "w") as handle:', line=50):
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        path=path,
        line=line,
        column=0,
        message="non-atomic write",
        content=content,
    )


class TestBaseline:
    def test_round_trip_filters_to_empty(self, tmp_path):
        findings = [make_finding()]
        target = tmp_path / "baseline.json"
        write_baseline(str(target), from_findings(findings))
        loaded = load_baseline(str(target))
        assert loaded.filter_new(findings) == []

    def test_line_number_drift_still_matches(self):
        baseline = from_findings([make_finding(line=50)])
        drifted = make_finding(line=93)
        assert baseline.filter_new([drifted]) == []

    def test_changed_content_invalidates_entry(self):
        baseline = from_findings([make_finding()])
        fixed = make_finding(content="atomic_write_text(path, text)")
        assert baseline.filter_new([fixed]) == [fixed]
        assert len(baseline.stale_entries([fixed])) == 1

    def test_count_budget_absorbs_exactly_n(self):
        findings = [make_finding(line=10), make_finding(line=20)]
        baseline = from_findings(findings)
        assert baseline.entries[0].count == 2
        third = make_finding(line=30)
        fresh = baseline.filter_new(findings + [third])
        assert fresh == [third]

    def test_path_prefix_tolerance(self):
        baseline = Baseline(
            [BaselineEntry(
                rule="RPR003",
                path="src/repro/perf/tracefile.py",
                content='with open(path, "w") as handle:',
            )]
        )
        absolute = make_finding(path="/ci/checkout/src/repro/perf/tracefile.py")
        assert baseline.filter_new([absolute]) == []
        other_file = make_finding(path="src/repro/perf/other.py")
        assert baseline.filter_new([other_file]) == [other_file]

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = load_baseline(str(tmp_path / "nope.json"))
        assert len(baseline) == 0

    def test_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))

    def test_wrong_version_raises(self, tmp_path):
        bad = tmp_path / "v2.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError):
            load_baseline(str(bad))

    def test_malformed_entry_raises(self, tmp_path):
        bad = tmp_path / "entry.json"
        bad.write_text(
            json.dumps({"version": 1, "findings": [{"rule": "RPR003"}]})
        )
        with pytest.raises(BaselineError):
            load_baseline(str(bad))


class TestLintPathsWithBaseline:
    def test_baselined_findings_do_not_gate(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text('f = open(p, "w")\n', encoding="utf-8")
        report = lint_paths([str(tmp_path)])
        assert [f.rule for f in report.new_findings] == ["RPR003"]
        assert report.failed(Severity.WARNING)

        baseline = from_findings(report.findings)
        report = lint_paths([str(tmp_path)], baseline=baseline)
        assert report.new_findings == []
        assert report.baselined == 1
        assert not report.failed(Severity.WARNING)

    def test_new_finding_alongside_baselined_still_gates(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text('f = open(p, "w")\n', encoding="utf-8")
        baseline = from_findings(lint_paths([str(tmp_path)]).findings)
        module.write_text(
            'f = open(p, "w")\ng = open(q, "w")\n', encoding="utf-8"
        )
        report = lint_paths([str(tmp_path)], baseline=baseline)
        assert len(report.new_findings) == 1
        assert report.failed(Severity.WARNING)
