"""Shared helpers for the lint test suite."""

import os

import pytest

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def load_fixture_files():
    """Every fixture ``.py`` as a ``(path, source)`` pair, sorted."""
    out = []
    for root, _, names in os.walk(FIXTURES):
        for name in sorted(names):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            with open(path, "r", encoding="utf-8") as handle:
                out.append((path, handle.read()))
    return sorted(out)


@pytest.fixture(scope="session")
def fixture_files():
    files = load_fixture_files()
    assert files, "fixture project missing under tests/lint/fixtures"
    return files
