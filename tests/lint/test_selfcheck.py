"""The linter's own acceptance gate: the tree at HEAD is clean.

``repro lint src/`` must report zero non-baselined findings against
the committed ``lint-baseline.json`` -- the same invariant the CI lint
job enforces -- and must *fail* the moment a file regresses one of the
policed patterns.  Running it here keeps the gate honest even where CI
is not wired up.
"""

import os
import shutil

from repro.lint.baseline import load_baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Severity
from repro.lint.runner import lint_paths

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")


def test_tree_is_clean_at_head():
    config = LintConfig(baseline_path=BASELINE)
    report = lint_paths([SRC], config)
    assert report.files_checked > 50
    assert report.new_findings == [], (
        "repro lint found non-baselined findings at HEAD:\n"
        + "\n".join(
            f"  {f.location}: {f.rule} {f.message}"
            for f in report.new_findings
        )
    )


def test_baseline_has_no_stale_entries():
    report = lint_paths([SRC], LintConfig())
    stale = load_baseline(BASELINE).stale_entries(report.findings)
    assert stale == [], (
        "lint-baseline.json grandfathers findings that no longer exist; "
        f"refresh with --write-baseline: {stale}"
    )


def test_regression_fixture_fails_the_gate(tmp_path):
    # A copy of the tree plus one regressed file must gate: the clean
    # state is an equilibrium, not an accident of the exemptions.
    fixture_dir = tmp_path / "src"
    fixture_dir.mkdir()
    shutil.copy(
        os.path.join(SRC, "repro", "__init__.py"),
        fixture_dir / "clean.py",
    )
    (fixture_dir / "regressed.py").write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()\n",
        encoding="utf-8",
    )
    config = LintConfig(baseline_path=BASELINE)
    report = lint_paths([str(fixture_dir)], config)
    assert [f.rule for f in report.new_findings] == ["RPR002"]
    assert report.failed(Severity.WARNING)
