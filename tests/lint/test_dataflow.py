"""Interprocedural taint rules (RPR010-RPR012) over the fixtures.

Every TP/TN pair lives in the same index, sharing helpers, so these
tests also pin the precision property: one caller's unseeded taint must
not leak into another caller's seed-rooted chain through a shared
pass-through function.
"""

import os

import pytest

from repro.lint.config import LintConfig
from repro.lint.dataflow import (
    ImpureDigestChecker,
    UnorderedPersistChecker,
    UnrootedCampaignRngChecker,
    analyze_project,
    module_seed_rooted_names,
)
from repro.lint.runner import lint_paths

from .conftest import FIXTURES


@pytest.fixture(scope="module")
def analysis(fixture_files):
    return analyze_project(fixture_files)


def paths_flagged(checker, analysis):
    return {os.path.basename(f.path) for f in checker.check_project(analysis)}


class TestRPR010:
    def test_unseeded_two_hop_chain_is_flagged(self, analysis):
        flagged = paths_flagged(UnrootedCampaignRngChecker(), analysis)
        assert "bad_runner.py" in flagged

    def test_seed_rooted_chain_is_not_flagged(self, analysis):
        flagged = paths_flagged(UnrootedCampaignRngChecker(), analysis)
        assert "good_runner.py" not in flagged

    def test_flag_lands_on_the_consumption_site(self, analysis):
        (finding,) = [
            f
            for f in UnrootedCampaignRngChecker().check_project(analysis)
            if f.path.endswith("bad_runner.py")
        ]
        assert "gen.integers" in finding.content
        assert "unseeded" in finding.message

    def test_non_campaign_modules_are_out_of_scope(self, analysis):
        # core.py holds the unseeded constructor but is not under a
        # reliability/parallel/serve path; only consumption in campaign
        # scope is flagged.
        flagged = paths_flagged(UnrootedCampaignRngChecker(), analysis)
        assert "core.py" not in flagged


class TestRPR011:
    def test_set_comprehension_into_json_dumps_is_flagged(self, analysis):
        findings = [
            f
            for f in UnorderedPersistChecker().check_project(analysis)
            if f.path.endswith("persistence.py")
        ]
        assert any("dump_bad" in f.message for f in findings)

    def test_sorted_clears_the_taint(self, analysis):
        findings = [
            f
            for f in UnorderedPersistChecker().check_project(analysis)
            if f.path.endswith("persistence.py")
        ]
        assert not any("dump_good" in f.message for f in findings)


class TestRPR012:
    def test_wallclock_into_digest_is_flagged(self, analysis):
        findings = list(ImpureDigestChecker().check_project(analysis))
        assert any("digest_bad" in f.message for f in findings)

    def test_env_into_checkpoint_payload_is_flagged(self, analysis):
        findings = list(ImpureDigestChecker().check_project(analysis))
        assert any("checkpoint_bad" in f.message for f in findings)

    def test_pure_variants_are_clean(self, analysis):
        findings = list(ImpureDigestChecker().check_project(analysis))
        assert not any("digest_good" in f.message for f in findings)
        assert not any("checkpoint_good" in f.message for f in findings)


class TestSeedRootedNames:
    def test_flow_rooted_chain_resolves_through_hops(self):
        source = (
            "import numpy as np\n"
            "def run(root):\n"
            "    tree = np.random.SeedSequence(root)\n"
            "    child = tree.spawn(1)[0]\n"
            "    rng = np.random.default_rng(child)\n"
            "    return rng\n"
        )
        rooted = module_seed_rooted_names("src/repro/parallel/x.py", source)
        assert {"tree", "child", "rng"} <= rooted

    def test_unseeded_names_are_not_rooted(self):
        source = (
            "import numpy as np\n"
            "def run():\n"
            "    rng = np.random.default_rng()\n"
            "    return rng\n"
        )
        rooted = module_seed_rooted_names("src/repro/parallel/y.py", source)
        assert "rng" not in rooted


class TestRunnerIntegration:
    def test_project_rules_surface_through_lint_paths(self):
        report = lint_paths([FIXTURES], LintConfig())
        rules = {f.rule for f in report.findings}
        assert {"RPR010", "RPR011", "RPR012"} <= rules

    def test_per_module_rpr006_accepts_flow_rooted_derivation(self):
        # good_runner derives its seed through tree.spawn(1)[0]; the
        # flow-fact upgrade of RPR006 must accept it.
        report = lint_paths([FIXTURES], LintConfig())
        assert not any(
            f.rule == "RPR006" and f.path.endswith("good_runner.py")
            for f in report.findings
        )
