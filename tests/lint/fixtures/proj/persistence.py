"""RPR011 TP/TN pair: unordered provenance into persisted artifacts."""

import json


def dump_bad(shards):
    seen = {shard.name for shard in shards}
    payload = {"shards": list(seen)}
    return json.dumps(payload)


def dump_good(shards):
    seen = {shard.name for shard in shards}
    payload = {"shards": sorted(seen)}
    return json.dumps(payload)
