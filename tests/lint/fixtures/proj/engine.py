"""Method/class fixture: constructor routing and inherited methods."""

from proj import helpers as h


class Base:
    def setup(self, seed):
        self.gen = h.fresh(seed)


class Engine(Base):
    def __init__(self, seed):
        self.setup(seed)

    def draw(self):
        return self.gen.integers(0, 4)
