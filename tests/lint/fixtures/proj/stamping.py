"""RPR012 TP/TN pairs: wall-clock/env into digests and checkpoints."""

import hashlib
import json
import os
import time


def write_checkpoint(payload):
    return json.dumps(payload)


def digest_bad(spec):
    stamp = time.time()
    return hashlib.sha256(str((spec, stamp)).encode()).hexdigest()


def digest_good(spec):
    return hashlib.sha256(str(spec).encode()).hexdigest()


def checkpoint_bad(state):
    payload = {"state": state, "host": os.environ["HOSTNAME"]}
    return write_checkpoint(payload)


def checkpoint_good(state):
    return write_checkpoint({"state": state})
