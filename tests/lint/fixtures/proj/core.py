"""Generator construction helpers (one sanctioned, one not)."""

import numpy as np


def make_generator(seed):
    """The sanctioned shape: provenance flows from the caller's seed."""
    return np.random.default_rng(seed)


def make_unseeded():
    """The bug shape: a generator with no provenance at all."""
    return np.random.default_rng()
