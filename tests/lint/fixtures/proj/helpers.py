"""Pass-through helpers shared by seeded and unseeded callers.

``wrap`` is the precision trap: both the TP and the TN fixture route
their generator through it, so a context-insensitive summary that
unions tags across callers would flag the seed-rooted chain too.
"""

from proj import core as c


def wrap(gen):
    return gen


def fresh(seed):
    return c.make_generator(seed)
