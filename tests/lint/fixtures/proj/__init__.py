"""Fixture project for the whole-program analyzer tests.

A miniature repo exercising exactly the resolution and flow shapes the
call-graph and taint tests pin: aliased imports, re-export chains,
methods and inheritance, and TP/TN pairs for RPR010/RPR011/RPR012.
Nothing here is imported at test time -- the files are read as text
and fed to :func:`repro.lint.callgraph.build_index`.
"""
