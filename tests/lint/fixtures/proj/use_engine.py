"""Driver whose constructor call must route to ``Engine.__init__``."""

from proj.engine import Engine


def build():
    return Engine(7)
