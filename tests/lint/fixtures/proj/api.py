"""Re-export facade: callers import the constructors from here.

The call graph must chase ``proj.api.make_unseeded`` through this hop
to ``proj.core.make_unseeded``.
"""

from proj.core import make_generator, make_unseeded

__all__ = ["make_generator", "make_unseeded"]
