"""RPR010 TN: the same two-hop shape rooted in the SeedSequence tree.

Shares ``wrap`` with the TP fixture, so flagging this module means the
analysis leaked one caller's taint into another's chain.
"""

import numpy as np

from proj.helpers import wrap


def run_campaign(root_seed):
    tree = np.random.SeedSequence(root_seed)
    child = tree.spawn(1)[0]
    gen = wrap(np.random.default_rng(child))
    return gen.integers(0, 10)
