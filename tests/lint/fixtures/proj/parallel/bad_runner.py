"""RPR010 TP: an unseeded RNG crosses two call hops into a draw.

The generator is constructed in ``proj.core.make_unseeded`` (hop 1,
reached through the ``proj.api`` re-export), passed through
``proj.helpers.wrap`` (hop 2), and consumed here -- no single module
looks wrong.
"""

from proj.api import make_unseeded
from proj.helpers import wrap


def run_campaign():
    gen = wrap(make_unseeded())
    return gen.integers(0, 10)
