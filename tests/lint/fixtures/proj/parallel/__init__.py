"""Campaign-scoped fixture modules (the RPR010 enforcement scope)."""
