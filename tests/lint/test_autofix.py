"""``repro lint --fix``: correctness and idempotency of the autofixes."""

import os

from repro.lint.autofix import FIXABLE_RULES, fix_paths, fix_source
from repro.lint.config import LintConfig
from repro.lint.runner import lint_paths

FIXABLE_SOURCE = (
    '"""Module docstring."""\n'
    "\n"
    "import time\n"
    "\n"
    "\n"
    "def weight(x):\n"
    '    return bin(x).count("1")\n'
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
    "\n"
    "\n"
    "def save(path, text):\n"
    '    with open(path, "w", encoding="utf-8") as handle:\n'
    "        handle.write(text)\n"
)


class TestFixSource:
    def test_all_three_rules_repair(self):
        result = fix_source(FIXABLE_SOURCE, "mod.py")
        assert result.changed
        assert {edit.rule for edit in result.edits} == set(FIXABLE_RULES)
        fixed = result.fixed_source
        assert "time.perf_counter()" in fixed
        assert "popcount(x)" in fixed
        assert "atomic_write_text(path, text)" in fixed
        assert "from repro.coding.bitvec import popcount" in fixed
        assert "from repro.obs.atomicio import atomic_write_text" in fixed

    def test_fix_is_idempotent(self):
        once = fix_source(FIXABLE_SOURCE, "mod.py").fixed_source
        twice = fix_source(once, "mod.py").fixed_source
        assert once == twice

    def test_fixed_source_parses_and_lints_clean(self, tmp_path):
        fixed = fix_source(FIXABLE_SOURCE, "mod.py").fixed_source
        compile(fixed, "mod.py", "exec")
        target = tmp_path / "mod.py"
        target.write_text(fixed, encoding="utf-8")
        report = lint_paths([str(target)], LintConfig())
        assert not any(f.rule in FIXABLE_RULES for f in report.findings)

    def test_imports_inserted_after_existing_import_block(self):
        fixed = fix_source(FIXABLE_SOURCE, "mod.py").fixed_source
        lines = fixed.splitlines()
        assert lines[2] == "import time"
        assert lines[3].startswith("from repro.")

    def test_suppressed_line_is_not_rewritten(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPR007\n"
        )
        assert not fix_source(source, "mod.py").changed

    def test_append_mode_open_is_left_alone(self):
        source = (
            'with open(p, "a", encoding="utf-8") as handle:\n'
            "    handle.write(text)\n"
        )
        assert not fix_source(source, "mod.py").changed

    def test_multi_statement_write_block_is_left_alone(self):
        source = (
            'with open(p, "w", encoding="utf-8") as handle:\n'
            "    handle.write(head)\n"
            "    handle.write(tail)\n"
        )
        assert not fix_source(source, "mod.py").changed

    def test_bare_from_import_time_is_left_alone(self):
        # Rewriting ``time()`` from ``from time import time`` would need
        # import surgery; the fixer must decline, not corrupt.
        source = "from time import time\nt = time()\n"
        assert not fix_source(source, "mod.py").changed

    def test_syntax_error_returns_input_unchanged(self):
        source = "def broken(:\n"
        result = fix_source(source, "mod.py")
        assert not result.changed
        assert result.fixed_source == source


class TestFixPaths:
    def test_round_trip_on_disk_is_idempotent(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(FIXABLE_SOURCE, encoding="utf-8")
        first = fix_paths([str(tmp_path)])
        assert first.files_changed == 1
        assert first.edits_applied == 3
        fixed_once = target.read_text(encoding="utf-8")
        second = fix_paths([str(tmp_path)])
        assert second.files_changed == 0
        assert target.read_text(encoding="utf-8") == fixed_once

    def test_clean_files_are_untouched(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n", encoding="utf-8")
        before = os.stat(target).st_mtime_ns
        report = fix_paths([str(tmp_path)])
        assert report.files_changed == 0
        assert os.stat(target).st_mtime_ns == before
