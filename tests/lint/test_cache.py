"""Incremental lint cache: content addressing and invalidation."""

import json

from repro.lint.cache import LintCache, content_hash, load_cache
from repro.lint.config import LintConfig
from repro.lint.runner import lint_paths


def make_tree(tmp_path):
    (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "dirty.py").write_text(
        'f = open(p, "w")\n', encoding="utf-8"
    )
    return tmp_path


class TestWarmRuns:
    def test_second_run_replays_from_cache(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        config = LintConfig()

        cold_cache = load_cache(cache_path)
        cold = lint_paths([str(tree)], config, cache=cold_cache)
        assert cold_cache.misses > 0

        warm_cache = load_cache(cache_path)
        warm = lint_paths([str(tree)], config, cache=warm_cache)
        assert warm_cache.hits > 0
        assert warm_cache.misses == 0
        assert [f.as_dict() for f in warm.findings] == [
            f.as_dict() for f in cold.findings
        ]

    def test_edited_file_misses_while_others_hit(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        config = LintConfig()
        lint_paths([str(tree)], config, cache=load_cache(cache_path))

        (tree / "dirty.py").write_text("x = 2\n", encoding="utf-8")
        cache = load_cache(cache_path)
        report = lint_paths([str(tree)], config, cache=cache)
        assert cache.hits > 0       # clean.py replays
        assert cache.misses > 0     # dirty.py (and the project entry) re-run
        assert not any(f.rule == "RPR003" for f in report.findings)

    def test_rule_selection_is_part_of_the_key(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        lint_paths([str(tree)], LintConfig(), cache=load_cache(cache_path))

        cache = load_cache(cache_path)
        narrowed = LintConfig(select=frozenset({"RPR001"}))
        lint_paths([str(tree)], narrowed, cache=cache)
        assert cache.misses > 0


class TestRobustness:
    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json", encoding="utf-8")
        assert load_cache(str(cache_path)).entries == {}

    def test_version_mismatch_is_ignored(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text(
            json.dumps({"version": 999, "entries": {"a": {}}}),
            encoding="utf-8",
        )
        assert load_cache(str(cache_path)).entries == {}

    def test_toolchain_fingerprint_invalidates(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        lint_paths([str(tree)], LintConfig(), cache=load_cache(cache_path))

        stale = load_cache(cache_path)
        stale.fingerprint = "a-different-toolchain"
        lint_paths([str(tree)], LintConfig(), cache=stale)
        assert stale.hits == 0
        assert stale.misses > 0

    def test_content_hash_is_stable(self):
        assert content_hash("abc") == content_hash("abc")
        assert content_hash("abc") != content_hash("abd")

    def test_pathless_cache_never_persists(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = LintCache(path="")
        cache.store("a.py", "h", ["RPR001"], [], 0)
        cache.save()
        assert list(tmp_path.iterdir()) == []
