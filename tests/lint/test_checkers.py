"""Per-rule fixture tests: each RPR rule on minimal good/bad snippets.

Every bad snippet is the distilled form of a bug this repository
actually shipped (see the checker ``rationale`` strings); every good
snippet is the sanctioned repair.  The fixtures lint in memory through
:func:`repro.lint.runner.lint_source` -- no filesystem involved.
"""

import textwrap

import pytest

from repro.lint.config import LintConfig
from repro.lint.findings import Severity
from repro.lint.registry import all_checkers, get_checker
from repro.lint.runner import PARSE_ERROR_RULE, lint_source


def rules_of(source, path="pkg/mod.py", config=None):
    """Sorted rule ids the snippet trips."""
    source = textwrap.dedent(source)
    return sorted(f.rule for f in lint_source(source, path, config))


class TestRegistry:
    def test_all_twelve_rules_registered(self):
        assert [c.rule for c in all_checkers()] == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008", "RPR009", "RPR010", "RPR011", "RPR012",
        ]

    def test_get_checker(self):
        assert get_checker("RPR001").name == "outcome-literal"
        with pytest.raises(KeyError):
            get_checker("RPR999")

    def test_every_rule_documents_its_origin(self):
        for checker in all_checkers():
            assert checker.rationale, f"{checker.rule} has no rationale"
            assert checker.description, f"{checker.rule} has no description"


class TestParseError:
    def test_unparseable_file_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n", "pkg/mod.py")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert findings[0].severity is Severity.ERROR


class TestOutcomeLiteral:
    def test_comparison_flagged(self):
        assert rules_of('ok = outcome == "sdc"') == ["RPR001"]

    def test_dict_get_flagged(self):
        assert rules_of('n = counts.get("due", 0)') == ["RPR001"]

    def test_subscript_flagged(self):
        assert rules_of('n = counts["metadata_due"]') == ["RPR001"]

    def test_membership_container_flags_each_label(self):
        assert rules_of('bad = x in ("due", "sdc")') == ["RPR001", "RPR001"]

    def test_display_only_use_not_flagged(self):
        assert rules_of('print("due")') == []
        assert rules_of('header = ["level", "due", "sdc"]') == []

    def test_non_label_strings_not_flagged(self):
        assert rules_of('ok = x == "corrected"') == []

    def test_startswith_outcome_prefix_flagged(self):
        assert rules_of('ok = label.startswith("corrected")') == ["RPR001"]
        assert rules_of('ok = label.startswith("corrected_")') == ["RPR001"]
        assert rules_of('ok = label.startswith("metadata")') == ["RPR001"]

    def test_startswith_full_label_flagged(self):
        assert rules_of('ok = label.startswith("due")') == ["RPR001"]

    def test_startswith_tuple_flags_each_prefix(self):
        source = 'ok = label.startswith(("corrected", "due"))'
        assert rules_of(source) == ["RPR001", "RPR001"]

    def test_startswith_unrelated_prefixes_clean(self):
        assert rules_of('ok = line.startswith("#")') == []
        assert rules_of('ok = name.startswith("SuDoku")') == []
        assert rules_of('ok = path.startswith(prefix)') == []

    def test_taxonomy_module_exempt(self):
        source = 'ok = label == "sdc"'
        assert rules_of(source, path="src/repro/core/outcomes.py") == []


class TestUnseededRng:
    def test_zero_arg_default_rng_flagged(self):
        source = """\
        import numpy as np
        rng = np.random.default_rng()
        """
        assert rules_of(source) == ["RPR002"]

    def test_from_import_alias_resolved(self):
        source = """\
        from numpy.random import default_rng
        rng = default_rng()
        """
        assert rules_of(source) == ["RPR002"]

    def test_zero_arg_stdlib_random_flagged(self):
        source = """\
        import random
        r = random.Random()
        """
        assert rules_of(source) == ["RPR002"]

    def test_numpy_global_rng_call_flagged(self):
        source = """\
        import numpy as np
        x = np.random.normal(0.0, 1.0)
        """
        assert rules_of(source) == ["RPR002"]

    def test_seeded_constructions_clean(self):
        source = """\
        import random
        import numpy as np
        a = np.random.default_rng(7)
        b = np.random.default_rng(seed)
        c = random.Random(3)
        d = np.random.SeedSequence(5)
        """
        assert rules_of(source) == []

    def test_blessed_fallback_module_exempt(self):
        source = """\
        import numpy as np
        rng = np.random.default_rng()
        """
        assert rules_of(source, path="src/repro/core/rng.py") == []

    CAMPAIGN = "src/repro/reliability/raresim.py"

    def test_inline_construction_in_campaign_path_flagged(self):
        # The estimate_fit bug class: rng=random.Random(seed) as a call
        # argument bypasses resolve_pyrandom entirely.
        source = """\
        import random
        sim = Simulator(ber=ber, rng=random.Random(seed))
        """
        assert rules_of(source, path=self.CAMPAIGN) == ["RPR002"]

    def test_inline_positional_construction_flagged(self):
        source = """\
        import random
        sim = Simulator(random.Random(7))
        """
        assert rules_of(source, path=self.CAMPAIGN) == ["RPR002"]

    def test_assignment_form_not_flagged(self):
        source = """\
        import random
        local = random.Random(seed)
        """
        assert rules_of(source, path=self.CAMPAIGN) == []

    def test_inline_construction_outside_campaign_paths_clean(self):
        source = """\
        import random
        sim = Simulator(rng=random.Random(seed))
        """
        assert rules_of(source) == []

    def test_seed_tree_inline_construction_clean(self):
        source = """\
        import random
        from repro.parallel.sharding import shard_python_seeds
        sim = Simulator(rng=random.Random(shard_python_seeds(seed, k)[i]))
        """
        assert rules_of(source, path="src/repro/parallel/runner.py") == []

    def test_resolve_pyrandom_repair_clean(self):
        source = """\
        from repro.core.rng import resolve_pyrandom
        sim = Simulator(rng=resolve_pyrandom(seed=seed, owner="sim"))
        """
        assert rules_of(source, path=self.CAMPAIGN) == []


class TestNonAtomicWrite:
    def test_write_mode_open_flagged(self):
        assert rules_of('f = open(p, "w")') == ["RPR003"]

    def test_mode_keyword_flagged(self):
        assert rules_of('f = open(p, mode="ab")') == ["RPR003"]

    def test_path_open_method_flagged(self):
        assert rules_of('f = path.open("x")') == ["RPR003"]

    def test_read_modes_clean(self):
        source = """\
        a = open(p)
        b = open(p, "r")
        c = open(p, "rb")
        d = path.open()
        """
        assert rules_of(source) == []

    def test_atomic_writer_module_exempt(self):
        source = 'f = open(tmp, "w")'
        assert rules_of(source, path="src/repro/obs/atomicio.py") == []


class TestRawPopcount:
    def test_bin_count_flagged(self):
        assert rules_of('n = bin(x).count("1")') == ["RPR004"]

    def test_format_count_flagged(self):
        assert rules_of('n = format(x, "b").count("1")') == ["RPR004"]
        assert rules_of('n = format(x, "010b").count("1")') == ["RPR004"]

    def test_manual_bit_walk_flagged(self):
        source = """\
        def walk(value):
            positions = []
            index = 0
            while value:
                if value & 1:
                    positions.append(index)
                value >>= 1
                index += 1
            return positions
        """
        assert rules_of(source) == ["RPR004"]

    def test_is_warning_severity(self):
        findings = lint_source('n = bin(x).count("1")', "pkg/mod.py")
        assert findings[0].severity is Severity.WARNING

    def test_sanctioned_kernels_clean(self):
        source = """\
        from repro.coding.bitvec import bit_positions, popcount
        n = popcount(x)
        m = x.bit_count()
        positions = bit_positions(x)
        """
        assert rules_of(source) == []

    def test_non_popcount_while_loop_clean(self):
        source = """\
        while a:
            a, b = b % a, a
        """
        assert rules_of(source) == []

    def test_kernel_module_exempt(self):
        source = 'table = bytes(bin(b).count("1") for b in range(256))'
        assert rules_of(source, path="src/repro/coding/bitvec.py") == []


class TestUnvalidatedWidth:
    def test_missing_width_flagged(self):
        source = """\
        from repro.coding.bitvec import flip_bits
        v = flip_bits(value, positions)
        """
        assert rules_of(source) == ["RPR005"]

    def test_width_keyword_clean(self):
        source = """\
        from repro.coding.bitvec import flip_bits
        v = flip_bits(value, positions, width=512)
        """
        assert rules_of(source) == []

    def test_third_positional_clean(self):
        source = """\
        from repro.coding.bitvec import flip_bits
        v = flip_bits(value, positions, 512)
        """
        assert rules_of(source) == []

    def test_attribute_call_resolved(self):
        source = """\
        from repro.coding import bitvec
        v = bitvec.flip_bits(value, positions)
        """
        assert rules_of(source) == ["RPR005"]


class TestParallelRng:
    PARALLEL = "src/repro/parallel/worker.py"

    def test_ad_hoc_rng_in_parallel_path_flagged(self):
        source = """\
        import numpy as np
        rng = np.random.default_rng(seed)
        """
        assert rules_of(source, path=self.PARALLEL) == ["RPR006"]

    def test_stdlib_random_in_parallel_path_flagged(self):
        source = """\
        import random
        rng = random.Random(seed + shard)
        """
        assert rules_of(source, path=self.PARALLEL) == ["RPR006"]

    def test_seed_tree_derivation_clean(self):
        source = """\
        import numpy as np
        from repro.parallel.sharding import spawn_seed_sequences
        rngs = [
            np.random.default_rng(sequence)
            for sequence in spawn_seed_sequences(seed, shards)
        ]
        direct = np.random.default_rng(np.random.SeedSequence(seed))
        """
        assert rules_of(source, path=self.PARALLEL) == []

    def test_same_code_outside_parallel_clean(self):
        source = """\
        import numpy as np
        rng = np.random.default_rng(seed)
        """
        assert rules_of(source, path="src/repro/sttram/faults.py") == []

    def test_sharding_module_exempt(self):
        source = """\
        import numpy as np
        rng = np.random.default_rng(entropy)
        """
        assert rules_of(source, path="src/repro/parallel/sharding.py") == []


class TestWallClockDuration:
    def test_module_call_flagged(self):
        source = """\
        import time
        started = time.time()
        """
        assert rules_of(source) == ["RPR007"]

    def test_from_import_alias_resolved(self):
        source = """\
        from time import time
        elapsed = time() - started
        """
        assert rules_of(source) == ["RPR007"]

    def test_module_alias_resolved(self):
        source = """\
        import time as t
        started = t.time()
        """
        assert rules_of(source) == ["RPR007"]

    def test_sanctioned_clocks_clean(self):
        source = """\
        import time
        from datetime import datetime, timezone
        started = time.perf_counter()
        mono = time.monotonic()
        stamp = datetime.now(timezone.utc)
        """
        assert rules_of(source) == []

    def test_unrelated_time_attribute_clean(self):
        # ``record.time()`` on some other object must not resolve to the
        # stdlib clock.
        assert rules_of("value = record.time()") == []


class TestRawFaultPrimitive:
    CAMPAIGN = "src/repro/reliability/montecarlo.py"

    def test_direct_map_construction_flagged(self):
        source = """\
        from repro.sttram.faults import PermanentFaultMap
        fault_map = PermanentFaultMap(line_bits)
        """
        assert rules_of(source, path=self.CAMPAIGN) == ["RPR008"]

    def test_random_classmethod_flagged(self):
        source = """\
        from repro.sttram.faults import PermanentFaultMap
        fault_map = PermanentFaultMap.random(lines, bits, ppm, rng)
        """
        assert rules_of(source, path=self.CAMPAIGN) == ["RPR008"]

    def test_burst_injector_flagged_in_parallel(self):
        source = """\
        from repro.sttram import faults
        injector = faults.BurstFaultInjector(bits, rate, pmf, seed=1)
        """
        assert rules_of(
            source, path="src/repro/parallel/runner.py"
        ) == ["RPR008"]

    def test_burst_error_vector_flagged(self):
        source = """\
        from repro.sttram.faults import burst_error_vector
        mask = burst_error_vector(64, 8, 4)
        """
        assert rules_of(source, path=self.CAMPAIGN) == ["RPR008"]

    def test_same_code_outside_campaign_paths_clean(self):
        source = """\
        from repro.sttram.faults import PermanentFaultMap
        fault_map = PermanentFaultMap(line_bits)
        """
        assert rules_of(source, path="src/repro/sttram/disturb.py") == []

    def test_scenario_layer_exempt(self):
        source = """\
        from repro.sttram.faults import BurstFaultInjector
        injector = BurstFaultInjector(bits, rate, pmf, seed=1)
        """
        assert rules_of(
            source, path="src/repro/reliability/scenario.py"
        ) == []

    def test_unrelated_random_attribute_clean(self):
        # ``rng.random()`` is a plain draw, not a fault primitive.
        assert rules_of(
            "u = rng.random()", path=self.CAMPAIGN
        ) == []


class TestPerLineLoop:
    def test_for_over_num_lines_flagged(self):
        source = """\
        for index in range(self.array.num_lines):
            decode(index)
        """
        assert rules_of(source) == ["RPR009"]

    def test_bare_num_lines_name_flagged(self):
        source = """\
        for frame in range(num_lines):
            scrub(frame)
        """
        assert rules_of(source) == ["RPR009"]

    def test_comprehension_flagged(self):
        source = "words = [array[i] for i in range(array.num_lines)]"
        assert rules_of(source) == ["RPR009"]

    def test_unrelated_range_loop_clean(self):
        source = """\
        for index in range(group_size):
            visit(index)
        """
        assert rules_of(source) == []

    def test_non_range_iteration_clean(self):
        source = """\
        for frame in dirty_frames:
            scrub(frame)
        """
        assert rules_of(source) == []

    def test_reference_backend_exempt(self):
        source = """\
        for index in range(num_lines):
            scrub(index)
        """
        assert rules_of(
            source, path="src/repro/kernels/reference.py"
        ) == []


class TestConfigSelection:
    def test_select_restricts_rules(self):
        source = """\
        import numpy as np
        rng = np.random.default_rng()
        f = open(p, "w")
        """
        config = LintConfig(select=frozenset({"RPR003"}))
        assert rules_of(source, config=config) == ["RPR003"]

    def test_disable_skips_rules(self):
        source = 'f = open(p, "w")'
        config = LintConfig(disable=frozenset({"RPR003"}))
        assert rules_of(source, config=config) == []
