"""``repro lint`` command behaviour: exit codes, formats, baselines.

Drives :func:`repro.lint.cli.run_lint_command` in-process through a
real argparse parser (the same one ``python -m repro lint`` builds), so
the exit-code contract the CI job relies on -- 0 clean, 1 findings,
2 usage error -- is pinned without subprocess overhead.
"""

import argparse
import json

import pytest

from repro.lint.cli import configure_lint_parser, run_lint_command


def run(argv):
    parser = argparse.ArgumentParser(prog="repro lint")
    configure_lint_parser(parser)
    return run_lint_command(parser.parse_args(argv))


@pytest.fixture()
def dirty_tree(tmp_path, monkeypatch):
    """A tmp cwd holding one file with one RPR003 finding."""
    (tmp_path / "mod.py").write_text('f = open(p, "w")\n', encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert run(["."]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert run(["."]) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out
        assert "mod.py:1:" in out

    def test_unknown_rule_exits_two(self, dirty_tree, capsys):
        assert run([".", "--select", "RPR999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, dirty_tree, capsys):
        assert run(["does-not-exist"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_bad_fail_on_exits_two(self, dirty_tree, capsys):
        assert run([".", "--fail-on", "catastrophic"]) == 2
        assert "unknown severity" in capsys.readouterr().err

    def test_fail_on_error_passes_warnings(self, tmp_path, monkeypatch):
        (tmp_path / "mod.py").write_text(
            'n = bin(x).count("1")\n', encoding="utf-8"
        )
        monkeypatch.chdir(tmp_path)
        assert run(["."]) == 1                       # warning gates by default
        assert run([".", "--fail-on", "error"]) == 0  # relaxed gate

    def test_select_and_disable(self, dirty_tree):
        assert run([".", "--select", "RPR001"]) == 0
        assert run([".", "--disable", "RPR003"]) == 0

    def test_list_rules(self, capsys):
        assert run(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("RPR001", "RPR006"):
            assert rule in out


class TestFormats:
    def test_json_format_is_machine_readable(self, dirty_tree, capsys):
        assert run([".", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_rule"] == {"RPR003": 1}
        (finding,) = payload["new_findings"]
        assert finding["rule"] == "RPR003"
        assert finding["line"] == 1

    def test_github_format_emits_workflow_commands(self, dirty_tree, capsys):
        assert run([".", "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=RPR003" in out


class TestFixFlag:
    def test_fix_repairs_then_lints_clean(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        assert run([".", "--fix"]) == 0
        out = capsys.readouterr().out
        assert "1 fix(es)" in out
        assert "RPR007: 1" in out
        fixed = (tmp_path / "mod.py").read_text(encoding="utf-8")
        assert "time.perf_counter()" in fixed

    def test_fix_is_a_noop_on_clean_trees(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert run([".", "--fix"]) == 0
        assert "nothing to fix" in capsys.readouterr().out

    def test_unfixable_findings_still_gate_after_fix(self, dirty_tree, capsys):
        # open(p, "w") without a with-block is RPR003 but not the
        # mechanical shape; --fix leaves it and the lint still fails.
        assert run([".", "--fix"]) == 1
        assert "RPR003" in capsys.readouterr().out


class TestChangedOnly:
    def test_outside_a_git_checkout_exits_two(self, dirty_tree, capsys):
        assert run([".", "--changed-only", "HEAD"]) == 2
        assert "cannot diff" in capsys.readouterr().err


class TestCacheFlags:
    def test_default_cache_file_is_written(self, dirty_tree):
        assert run(["."]) == 1
        assert (dirty_tree / ".lint-cache.json").exists()

    def test_no_cache_skips_the_file(self, dirty_tree):
        assert run([".", "--no-cache"]) == 1
        assert not (dirty_tree / ".lint-cache.json").exists()

    def test_warm_run_matches_cold_run(self, dirty_tree, capsys):
        assert run(["."]) == 1
        cold = capsys.readouterr().out
        assert run(["."]) == 1
        warm = capsys.readouterr().out
        assert warm == cold


class TestSarifFormat:
    def test_sarif_output_parses_and_carries_the_finding(
        self, dirty_tree, capsys
    ):
        assert run([".", "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "RPR003"


class TestBaselineFlow:
    def test_write_then_gate_round_trip(self, dirty_tree, capsys):
        assert run([".", "--write-baseline"]) == 0
        assert (dirty_tree / "lint-baseline.json").exists()
        capsys.readouterr()
        # The default baseline is picked up from the cwd automatically.
        assert run(["."]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # A new finding still gates.
        (dirty_tree / "new.py").write_text(
            'g = open(q, "w")\n', encoding="utf-8"
        )
        assert run(["."]) == 1

    def test_no_baseline_reports_everything(self, dirty_tree):
        assert run([".", "--write-baseline"]) == 0
        assert run([".", "--no-baseline"]) == 1

    def test_stale_baseline_noted(self, dirty_tree, capsys):
        assert run([".", "--write-baseline"]) == 0
        (dirty_tree / "mod.py").write_text("x = 1\n", encoding="utf-8")
        capsys.readouterr()
        assert run(["."]) == 0
        assert "stale baseline" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, dirty_tree, capsys):
        (dirty_tree / "lint-baseline.json").write_text(
            "{broken", encoding="utf-8"
        )
        assert run(["."]) == 2
        assert "not valid JSON" in capsys.readouterr().err
