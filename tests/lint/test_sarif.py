"""SARIF 2.1.0 output: structural contract for the code-scanning upload."""

import json

from repro.lint.config import LintConfig
from repro.lint.registry import known_rules
from repro.lint.reporting import FORMATTERS, format_sarif
from repro.lint.runner import lint_paths


def sarif_for(tmp_path, source):
    (tmp_path / "mod.py").write_text(source, encoding="utf-8")
    report = lint_paths([str(tmp_path)], LintConfig())
    return json.loads(format_sarif(report))


def test_sarif_is_a_registered_formatter():
    assert "sarif" in FORMATTERS


def test_log_skeleton(tmp_path):
    log = sarif_for(tmp_path, "x = 1\n")
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["columnKind"] == "unicodeCodePoints"
    assert run["results"] == []


def test_rule_catalog_is_complete(tmp_path):
    log = sarif_for(tmp_path, "x = 1\n")
    rules = log["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == list(known_rules())
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "note",
            "warning",
            "error",
        )


def test_result_shape_and_rule_index(tmp_path):
    log = sarif_for(tmp_path, 'f = open(p, "w")\n')
    (run,) = log["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "RPR003"
    rules = run["tool"]["driver"]["rules"]
    assert rules[result["ruleIndex"]]["id"] == "RPR003"
    (location,) = result["locations"]
    physical = location["physicalLocation"]
    assert physical["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    region = physical["region"]
    assert region["startLine"] == 1
    assert region["startColumn"] >= 1


def test_severity_maps_to_sarif_levels(tmp_path):
    # RPR003 is error-severity; the SARIF level must say so.
    log = sarif_for(tmp_path, 'f = open(p, "w")\n')
    (result,) = log["runs"][0]["results"]
    assert result["level"] == "error"
