"""Call-graph construction over the fixture project.

Pins the resolution behaviours the taint pass depends on: module
naming from the on-disk package structure, aliased imports, re-export
chains, constructor routing to ``__init__``, inherited-method lookup,
and argument-to-parameter binding.
"""

import ast

import pytest

from repro.lint.callgraph import build_index, module_name_for


@pytest.fixture(scope="module")
def index(fixture_files):
    return build_index(fixture_files)


def sites_to(index, callee):
    return index.calls_to.get(callee, [])


class TestModuleNaming:
    def test_package_climbing_names_fixture_modules(self, fixture_files):
        names = {module_name_for(path) for path, _ in fixture_files}
        assert "proj.core" in names
        assert "proj.parallel.bad_runner" in names
        assert "proj" in names  # __init__.py maps to the package itself

    def test_src_fallback_for_in_memory_paths(self):
        assert module_name_for("src/repro/core/rng.py") == "repro.core.rng"
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"


class TestResolution:
    def test_aliased_module_import_resolves(self, index):
        # engine.py does ``from proj import helpers as h`` then h.fresh.
        sites = sites_to(index, "proj.helpers.fresh")
        assert any(s.module == "proj.engine" for s in sites)
        assert all(s.internal for s in sites)

    def test_reexport_chain_canonicalizes(self, index):
        assert (
            index.canonicalize("proj.api.make_unseeded")
            == "proj.core.make_unseeded"
        )

    def test_call_through_reexport_lands_on_definition(self, index):
        # bad_runner imports make_unseeded from proj.api (a re-export).
        sites = sites_to(index, "proj.core.make_unseeded")
        assert any(s.module == "proj.parallel.bad_runner" for s in sites)

    def test_constructor_routes_to_init(self, index):
        sites = sites_to(index, "proj.engine.Engine.__init__")
        assert any(s.caller == "proj.use_engine.build" for s in sites)

    def test_inherited_method_resolves_to_base(self, index):
        # Engine.__init__ calls self.setup, defined only on Base.
        sites = sites_to(index, "proj.engine.Base.setup")
        assert any(
            s.caller == "proj.engine.Engine.__init__" for s in sites
        )


class TestBindings:
    def test_positional_binding_maps_parameter_names(self, index):
        (site,) = [
            s
            for s in sites_to(index, "proj.helpers.fresh")
            if s.caller == "proj.engine.Base.setup"
        ]
        assert set(site.bindings) == {"seed"}
        assert isinstance(site.bindings["seed"], ast.Name)

    def test_self_is_not_a_bindable_parameter(self, index):
        function = index.functions["proj.engine.Base.setup"]
        assert function.params == ("seed",)
