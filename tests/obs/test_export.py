"""Tests for exporters: Prometheus text format, JSONL, manifests."""

import json

from repro.obs import Telemetry
from repro.obs.export import (
    build_manifest,
    git_sha,
    metrics_to_json_lines,
    to_prometheus_text,
    write_manifest,
    write_metrics_json_lines,
    write_metrics_text,
    write_spans_json_lines,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter(
        "sudoku_corrections_total", "Corrections by mechanism.",
        labels=("mechanism",),
    )
    counter.labels(mechanism="raid4").inc(3)
    counter.labels(mechanism="sdr").inc()
    registry.gauge("llc_utilisation", "Bank utilisation.").set(0.25)
    histogram = registry.histogram(
        "campaign_interval_seconds", "Interval wall time.",
        buckets=(0.01, 0.1, 1.0),
    )
    for value in (0.005, 0.05, 0.05, 2.0):
        histogram.observe(value)
    return registry


GOLDEN = """\
# HELP sudoku_corrections_total Corrections by mechanism.
# TYPE sudoku_corrections_total counter
sudoku_corrections_total{mechanism="raid4"} 3
sudoku_corrections_total{mechanism="sdr"} 1
# HELP llc_utilisation Bank utilisation.
# TYPE llc_utilisation gauge
llc_utilisation 0.25
# HELP campaign_interval_seconds Interval wall time.
# TYPE campaign_interval_seconds histogram
campaign_interval_seconds_bucket{le="0.01"} 1
campaign_interval_seconds_bucket{le="0.1"} 3
campaign_interval_seconds_bucket{le="1"} 3
campaign_interval_seconds_bucket{le="+Inf"} 4
campaign_interval_seconds_sum 2.105
campaign_interval_seconds_count 4
"""


class TestPrometheusText:
    def test_golden_output(self):
        assert to_prometheus_text(build_registry()) == GOLDEN

    def test_empty_registry(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        text = to_prometheus_text(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_write_to_file(self, tmp_path):
        target = tmp_path / "metrics.prom"
        write_metrics_text(build_registry(), str(target))
        assert target.read_text() == GOLDEN


class TestMetricsJsonLines:
    def test_every_series_is_a_record(self):
        lines = metrics_to_json_lines(build_registry()).strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 4  # 2 counter series + gauge + histogram
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        raid4 = [
            r for r in by_name["sudoku_corrections_total"]
            if r["labels"] == {"mechanism": "raid4"}
        ]
        assert raid4[0]["value"] == 3
        histogram = by_name["campaign_interval_seconds"][0]
        assert histogram["counts"] == [1, 3, 3, 4]
        assert histogram["buckets"] == [0.01, 0.1, 1.0]


class TestSpansExport:
    def test_write_spans(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        target = tmp_path / "trace.jsonl"
        write_spans_json_lines(tracer, str(target))
        records = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert [record["name"] for record in records] == ["inner", "outer"]

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        write_spans_json_lines(Tracer(), str(target))
        assert target.read_text() == ""


class TestManifest:
    def test_build_manifest_fields(self):
        manifest = build_manifest(
            "campaign",
            config={"level": "Z", "ber": 8e-4},
            seed=7,
            durations_s={"total": 1.5},
            extra={"note": "test"},
        )
        assert manifest["command"] == "campaign"
        assert manifest["config"]["level"] == "Z"
        assert manifest["seed"] == 7
        assert manifest["durations_s"] == {"total": 1.5}
        assert manifest["note"] == "test"
        assert "python" in manifest and "platform" in manifest

    def test_git_sha_in_this_repo(self):
        # The test suite runs inside the repro git repo, so a SHA exists.
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_write_manifest_roundtrip(self, tmp_path):
        target = tmp_path / "manifest.json"
        write_manifest(str(target), build_manifest("perf", seed=1))
        loaded = json.loads(target.read_text())
        assert loaded["command"] == "perf"
        assert loaded["seed"] == 1


class TestTelemetryBundle:
    def test_create_and_export(self):
        telemetry = Telemetry.create()
        assert telemetry.enabled
        telemetry.metrics.counter("x_total", "X.").inc()
        with telemetry.tracer.span("s"):
            pass
        assert "x_total 1" in telemetry.prometheus_text()
        assert '"name":"s"' in telemetry.spans_json_lines()

    def test_null_bundle_disabled(self):
        null = Telemetry.null()
        assert not null.enabled
        assert null.prometheus_text() == ""
        assert null.spans_json_lines() == ""


class TestCrashSafeWriters:
    """Every exporter writes via tmp-file + atomic rename (no torn files)."""

    def fresh_telemetry(self):
        telemetry = Telemetry.create()
        telemetry.metrics.counter("y_total", "Y.").inc(3)
        with telemetry.tracer.span("op"):
            pass
        return telemetry

    def test_no_tmp_droppings_after_exports(self, tmp_path):
        telemetry = self.fresh_telemetry()
        write_metrics_text(telemetry.metrics, str(tmp_path / "m.txt"))
        write_metrics_json_lines(telemetry.metrics, str(tmp_path / "m.jsonl"))
        write_spans_json_lines(telemetry.tracer, str(tmp_path / "s.jsonl"))
        write_manifest(str(tmp_path / "mf.json"), build_manifest("t"))
        import os

        assert sorted(os.listdir(tmp_path)) == [
            "m.jsonl", "m.txt", "mf.json", "s.jsonl",
        ]

    def test_rewrite_replaces_atomically(self, tmp_path):
        telemetry = self.fresh_telemetry()
        target = tmp_path / "m.txt"
        write_metrics_text(telemetry.metrics, str(target))
        first = target.read_text()
        telemetry.metrics.counter("y_total", "Y.").inc()
        write_metrics_text(telemetry.metrics, str(target))
        assert target.read_text() != first
        assert "y_total 4" in target.read_text()

    def test_write_failure_preserves_existing_file(self, tmp_path):
        telemetry = self.fresh_telemetry()
        target = tmp_path / "m.txt"
        write_metrics_text(telemetry.metrics, str(target))
        before = target.read_text()
        import pytest

        with pytest.raises(OSError):
            write_metrics_text(
                telemetry.metrics, str(tmp_path / "missing" / "m.txt")
            )
        assert target.read_text() == before
