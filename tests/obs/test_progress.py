"""Tests for the progress heartbeat reporter."""

import io

import pytest

from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter


class ManualClock:
    """Clock the test advances explicitly."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def make_reporter(total=100, min_interval_s=1.0):
    clock = ManualClock()
    stream = io.StringIO()
    reporter = ProgressReporter(
        total=total, label="campaign", stream=stream,
        min_interval_s=min_interval_s, clock=clock,
    )
    return reporter, clock, stream


class TestThrottling:
    def test_updates_within_interval_are_silent(self):
        reporter, clock, stream = make_reporter()
        clock.advance(0.5)
        reporter.update()
        assert stream.getvalue() == ""
        assert reporter.done == 1

    def test_update_after_interval_emits(self):
        reporter, clock, stream = make_reporter()
        clock.advance(2.0)
        reporter.update()
        assert stream.getvalue().count("\n") == 1

    def test_finish_always_emits(self):
        reporter, clock, stream = make_reporter()
        reporter.update(done=100)
        reporter.finish()
        text = stream.getvalue()
        assert "done in" in text
        reporter.finish()  # idempotent
        assert stream.getvalue() == text


class TestMath:
    def test_rate_and_eta(self):
        reporter, clock, stream = make_reporter(total=100)
        clock.advance(10.0)
        reporter.update(done=20)
        assert reporter.rate() == pytest.approx(2.0)
        assert reporter.eta_s() == pytest.approx(40.0)

    def test_render_format(self):
        reporter, clock, stream = make_reporter(total=200)
        clock.advance(10.0)
        reporter.update(done=50)
        line = reporter.render()
        assert line.startswith("[campaign] 50/200 (25.0%)")
        assert "5.0/s" in line
        assert "eta 30.0s" in line

    def test_unknown_total_has_no_eta(self):
        reporter, clock, stream = make_reporter(total=None)
        clock.advance(1.0)
        reporter.update(advance=5)
        line = reporter.render()
        assert "eta" not in line
        assert "%" not in line
        assert reporter.eta_s() is None

    def test_long_durations_formatted(self):
        reporter, clock, _ = make_reporter(total=1000)
        clock.advance(100.0)
        reporter.update(done=1)
        line = reporter.render()
        # 999 items at 0.01/s -> ETA in hours
        assert "h" in line.split("eta ")[1]

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(total=-1)


class TestResume:
    """Regression tests: resumed work must not inflate rate or ETA.

    The original ``rate()`` divided *total* done (including checkpointed
    work restored instantaneously at startup) by session elapsed time, so
    a campaign resumed at 80/100 after 10s reported 9.0/s instead of
    1.0/s and a nonsense ETA.
    """

    def make_resumed(self, initial_done, total=100):
        clock = ManualClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=total, label="campaign", stream=stream,
            min_interval_s=1.0, clock=clock, initial_done=initial_done,
        )
        return reporter, clock, stream

    def test_resumed_units_do_not_inflate_rate(self):
        reporter, clock, _ = self.make_resumed(initial_done=80)
        clock.advance(10.0)
        reporter.update(advance=10)  # 90/100, but only 10 done this session
        assert reporter.rate() == pytest.approx(1.0)
        assert reporter.eta_s() == pytest.approx(10.0)

    def test_note_resumed_equivalent_to_constructor_offset(self):
        reporter, clock, _ = make_reporter(total=100)
        reporter.note_resumed(80)
        assert reporter.done == 80
        assert reporter.initial_done == 80
        clock.advance(5.0)
        reporter.update(advance=5)
        assert reporter.rate() == pytest.approx(1.0)

    def test_no_session_work_means_no_rate_or_eta(self):
        reporter, clock, _ = self.make_resumed(initial_done=50)
        clock.advance(10.0)
        assert reporter.rate() == 0.0
        assert reporter.eta_s() is None

    def test_position_and_percent_count_resumed_work(self):
        reporter, clock, _ = self.make_resumed(initial_done=80)
        clock.advance(10.0)
        reporter.update(advance=10)
        assert reporter.render().startswith("[campaign] 90/100 (90.0%)")

    def test_negative_initial_done_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(total=10, initial_done=-1)

    def test_negative_note_resumed_rejected(self):
        reporter, _, _ = make_reporter()
        with pytest.raises(ValueError):
            reporter.note_resumed(-1)

    def test_note_resumed_with_zero_session_work_immediately_queried(self):
        # The serve SSE stream snapshots right after a resume: rate must
        # be a clean 0.0 (no division by zero at elapsed==0) and the ETA
        # must be reported unknown (None), never 0.
        reporter, clock, _ = make_reporter(total=100)
        reporter.note_resumed(80)
        assert reporter.rate() == 0.0
        assert reporter.eta_s() is None
        clock.advance(10.0)
        assert reporter.rate() == 0.0
        assert reporter.eta_s() is None

    def test_note_resumed_of_everything_still_no_eta(self):
        reporter, clock, _ = make_reporter(total=100)
        reporter.note_resumed(100)
        clock.advance(1.0)
        assert reporter.rate() == 0.0
        assert reporter.eta_s() is None


class TestSnapshot:
    def test_snapshot_shape(self):
        reporter, clock, _ = make_reporter(total=100)
        clock.advance(10.0)
        reporter.update(advance=20)
        snapshot = reporter.snapshot()
        assert snapshot == {
            "label": "campaign",
            "done": 20,
            "total": 100,
            "initial_done": 0,
            "rate": pytest.approx(2.0),
            "eta_s": pytest.approx(40.0),
        }

    def test_snapshot_after_resume_reports_unknown_eta(self):
        reporter, clock, _ = make_reporter(total=100)
        reporter.note_resumed(60)
        clock.advance(5.0)
        snapshot = reporter.snapshot()
        assert snapshot["done"] == 60
        assert snapshot["initial_done"] == 60
        assert snapshot["rate"] == 0.0
        assert snapshot["eta_s"] is None

    def test_null_progress_snapshot(self):
        snapshot = NULL_PROGRESS.snapshot()
        assert snapshot["eta_s"] is None
        assert snapshot["rate"] == 0.0


class TestContextManager:
    def test_with_block_finishes(self):
        reporter, clock, stream = make_reporter()
        with reporter:
            clock.advance(1.0)
            reporter.update(done=100)
        assert "done in" in stream.getvalue()


class TestNullProgress:
    def test_noop(self):
        assert NULL_PROGRESS.enabled is False
        with NullProgress() as progress:
            progress.update()
            progress.update(done=5)
            progress.finish()
        assert NULL_PROGRESS.done == 0
