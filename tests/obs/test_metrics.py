"""Tests for the metrics registry: labels, buckets, null objects."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    merge_registry,
)


class TestCounters:
    def test_unlabelled_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "help text")
        counter.inc()
        counter.inc(2.5)
        ((values, child),) = counter.samples()
        assert values == ()
        assert child.value == 3.5

    def test_labelled_counter_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("mechanism",))
        counter.labels(mechanism="raid4").inc()
        counter.labels(mechanism="raid4").inc()
        counter.labels(mechanism="sdr").inc()
        assert counter.labels(mechanism="raid4").value == 2
        assert counter.labels(mechanism="sdr").value == 1

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("group",))
        counter.labels(group=7).inc()
        assert counter.labels(group="7").value == 1

    def test_missing_and_extra_labels_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            counter.labels(a="1")
        with pytest.raises(ValueError):
            counter.labels(a="1", b="2", c="3")

    def test_unlabelled_call_on_labelled_family_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("a",))
        with pytest.raises(ValueError):
            counter.inc()


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("shared_total", "help", labels=("x",))
        second = registry.counter("shared_total", "other help", labels=("x",))
        assert first is second

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name_total")
        with pytest.raises(ValueError):
            registry.gauge("name_total")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("name_total", labels=("b",))

    def test_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok_name", labels=("bad-label",))

    def test_families_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        registry.gauge("b_value")
        assert [f.name for f in registry.families()] == ["a_total", "b_value"]
        assert registry.get("a_total").kind == "counter"
        assert registry.get("missing") is None


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(0.5)
        ((_, child),) = gauge.samples()
        assert child.value == 11.5


class TestHistogramBuckets:
    def test_bucket_edges_are_inclusive(self):
        """Prometheus semantics: an observation == an edge lands in it."""
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 5.0, 5.1, 11.0):
            histogram.observe(value)
        ((_, child),) = histogram.samples()
        # raw counts per bucket: <=1: {0.5, 1.0}; <=5: {5.0}; <=10: {5.1};
        # +Inf: {11.0}
        assert child.counts == [2, 1, 1, 1]
        assert child.cumulative_counts() == [2, 3, 4, 5]
        assert child.count == 5
        assert child.sum == pytest.approx(22.6)

    def test_buckets_sorted_on_creation(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(10.0, 1.0, 5.0))
        histogram.observe(2.0)
        ((_, child),) = histogram.samples()
        assert child.buckets == (1.0, 5.0, 10.0)
        assert child.counts == [0, 1, 0, 0]

    def test_empty_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=())

    def test_default_buckets_cover_time_scales(self):
        assert DEFAULT_BUCKETS[0] <= 1e-9
        assert DEFAULT_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestNullRegistry:
    def test_whole_surface_is_noop(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("anything")
        counter.inc()
        counter.labels(a="b").inc(5)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1.0)
        assert registry.families() == []
        assert registry.get("anything") is None

    def test_shared_series_reports_zero(self):
        registry = NullRegistry()
        assert registry.counter("x").value == 0.0


class TestMergeRegistry:
    """merge_registry: the sharded-campaign fold of worker registries."""

    def _source(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc(3)
        registry.counter(
            "outcomes_total", labels=("kind",)
        ).labels(kind="due").inc(2)
        registry.gauge("level").set(7)
        registry.histogram(
            "latency_seconds", buckets=(0.1, 1.0)
        ).observe(0.5)
        return registry

    def test_merge_into_empty_equals_source(self):
        target = MetricsRegistry()
        merge_registry(target, self._source())
        assert target.get("events_total").labels().value == 3
        assert target.get("outcomes_total").labels(kind="due").value == 2
        hist = target.get("latency_seconds").labels()
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.5)

    def test_merge_adds_counters_and_histograms(self):
        target = self._source()
        merge_registry(target, self._source())
        assert target.get("events_total").labels().value == 6
        assert target.get("outcomes_total").labels(kind="due").value == 4
        hist = target.get("latency_seconds").labels()
        assert hist.count == 2
        assert hist.sum == pytest.approx(1.0)
        assert sum(hist.counts) == 2

    def test_merge_is_equivalent_to_sequential_recording(self):
        # K workers each recording into their own registry, merged,
        # must equal one registry that saw every event.
        merged = MetricsRegistry()
        sequential = MetricsRegistry()
        for shard in range(3):
            worker = MetricsRegistry()
            for registry in (worker, sequential):
                registry.counter("n_total").inc(shard + 1)
                registry.histogram(
                    "t_seconds", buckets=(1.0, 10.0)
                ).observe(float(shard))
            merge_registry(merged, worker)
        assert (
            merged.get("n_total").labels().value
            == sequential.get("n_total").labels().value
        )
        a = merged.get("t_seconds").labels()
        b = sequential.get("t_seconds").labels()
        assert a.counts == b.counts
        assert a.count == b.count
        assert a.sum == pytest.approx(b.sum)

    def test_merge_null_source_is_noop(self):
        target = MetricsRegistry()
        target.counter("events_total").inc()
        merge_registry(target, NullRegistry())
        assert target.get("events_total").labels().value == 1

    def test_merge_kind_mismatch_raises(self):
        target = MetricsRegistry()
        target.counter("x")
        source = MetricsRegistry()
        source.gauge("x")
        with pytest.raises(ValueError):
            merge_registry(target, source)

    def test_merge_bucket_mismatch_raises(self):
        # Adding per-bucket counts across different edge layouts would
        # silently misfile observations; the merge must refuse instead.
        target = MetricsRegistry()
        target.histogram("latency_seconds", buckets=(0.1, 1.0))
        source = MetricsRegistry()
        source.histogram("latency_seconds", buckets=(0.5, 5.0)).observe(0.2)
        with pytest.raises(ValueError, match="buckets"):
            merge_registry(target, source)

    def test_merge_label_mismatch_raises(self):
        target = MetricsRegistry()
        target.counter("outcomes_total", labels=("kind",))
        source = MetricsRegistry()
        source.counter("outcomes_total", labels=("mechanism",))
        with pytest.raises(ValueError, match="labels"):
            merge_registry(target, source)

    def test_merge_empty_source_is_noop(self):
        target = self._source()
        before = target.get("events_total").labels().value
        merge_registry(target, MetricsRegistry())
        assert target.get("events_total").labels().value == before

    def test_repeated_merge_accumulates_bucket_counts(self):
        # Merging the same worker registry twice must double every
        # histogram slot, including the cumulative view the exporters
        # read -- a regression here corrupts sharded percentiles.
        target = MetricsRegistry()
        source = self._source()
        merge_registry(target, source)
        once = list(target.get("latency_seconds").labels().cumulative_counts())
        merge_registry(target, source)
        hist = target.get("latency_seconds").labels()
        assert hist.cumulative_counts() == [2 * n for n in once]
        assert hist.count == 2
        assert hist.sum == pytest.approx(1.0)


class TestNullRegistryParity:
    def test_null_registry_covers_the_real_surface(self):
        # Instrumented code calls the same methods whether telemetry is
        # attached or not; any public name on the real registry missing
        # from the null one is an AttributeError waiting in a hot path.
        real = {n for n in dir(MetricsRegistry) if not n.startswith("_")}
        null = {n for n in dir(NullRegistry) if not n.startswith("_")}
        assert real <= null

    def test_null_children_cover_the_real_child_surface(self):
        registry = MetricsRegistry()
        null = NullRegistry()
        pairs = [
            (registry.counter("c", labels=("a",)), null.counter("c")),
            (registry.gauge("g"), null.gauge("g")),
            (registry.histogram("h"), null.histogram("h")),
        ]
        for real_family, null_family in pairs:
            real_names = {
                n for n in dir(real_family) if not n.startswith("_")
            }
            # The null stand-in only needs the mutation surface, not the
            # declaration metadata (name/help/kind/samples).
            mutators = real_names & {
                "labels", "inc", "dec", "set", "observe", "value",
            }
            for name in mutators:
                assert hasattr(null_family, name), (
                    f"NullRegistry family lacks {name}"
                )
