"""Tests for span tracing: nesting, ordering, the bounded ring."""

import json

import pytest

from repro.obs.tracing import NullTracer, Tracer, export_spans, merge_traces


class FakeClock:
    """Deterministic monotonic clock advancing 1.0 per read."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestSpans:
    def test_span_records_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work") as span:
            pass
        assert span.start_s == 1.0
        assert span.end_s == 2.0
        assert span.duration_s == 1.0
        assert span.status == "ok"

    def test_nesting_sets_parent_and_depth(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.active_depth == 2
        assert outer.depth == 0 and outer.parent_id is None
        assert inner.depth == 1 and inner.parent_id == outer.span_id
        assert tracer.active_depth == 0

    def test_completion_order(self):
        """Inner spans finish (and are ringed) before their parents."""
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [span.name for span in tracer] == ["b", "c", "a"]
        assert tracer.names() == ["b", "c", "a"]
        assert [s.name for s in tracer.spans_named("b")] == ["b"]

    def test_attributes_and_set_attribute(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("repair", group=3) as span:
            span.set_attribute("trials", 6)
        recorded = next(iter(tracer))
        assert recorded.attributes == {"group": 3, "trials": 6}

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        span = next(iter(tracer))
        assert span.status == "error"
        assert span.attributes["exception"] == "RuntimeError"
        assert tracer.active_depth == 0

    def test_ring_capacity_and_dropped(self):
        tracer = Tracer(capacity=3, clock=FakeClock())
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.started == 5
        assert [span.name for span in tracer] == ["s2", "s3", "s4"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_json_lines_roundtrip(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", level="Z"):
            with tracer.span("inner"):
                pass
        lines = tracer.to_json_lines().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "inner"
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert records[1]["attributes"] == {"level": "Z"}
        assert records[0]["duration_s"] == pytest.approx(1.0)


class TestNullTracer:
    def test_noop_surface(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("anything", group=1) as span:
            span.set_attribute("x", 1)
        assert len(tracer) == 0
        assert list(tracer) == []
        assert tracer.names() == []
        assert tracer.spans_named("anything") == []
        assert tracer.to_json_lines() == ""

    def test_shared_span_instance(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")

    def test_covers_the_real_tracer_surface(self):
        # Engines hold either tracer behind the same calls; a public
        # name on the real tracer missing from the null one is a
        # telemetry-off crash waiting in a hot path.
        real = {
            n for n in dir(Tracer(clock=FakeClock())) if not n.startswith("_")
        }
        null = {n for n in dir(NullTracer()) if not n.startswith("_")}
        assert real <= null
        assert NullTracer().capacity == 0

    def test_null_span_covers_the_real_span_surface(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("real") as real_span:
            pass
        null_span = NullTracer().span("null")
        for name in ("name", "duration_s", "set_attribute"):
            assert hasattr(real_span, name)
            assert hasattr(null_span, name)


def worker_trace():
    """A worker-side tracer with a nested trace, plus its wire form."""
    tracer = Tracer(clock=FakeClock())
    with tracer.span("campaign", level="Z"):
        with tracer.span("phase_inject"):
            pass
        with tracer.span("phase_scrub"):
            pass
    return tracer, export_spans(tracer)


class TestExportSpans:
    def test_wire_form_matches_to_dict(self):
        tracer, wire = worker_trace()
        assert wire == [span.to_dict() for span in tracer]
        assert [entry["name"] for entry in wire] == [
            "phase_inject", "phase_scrub", "campaign",
        ]

    def test_null_tracer_exports_nothing(self):
        assert export_spans(NullTracer()) == []


class TestMergeTraces:
    def test_adopts_under_the_active_span(self):
        _, wire = worker_trace()
        target = Tracer(clock=FakeClock())
        with target.span("sharded_campaign") as merge_point:
            adopted = merge_traces(target, wire, shard=3)
        assert adopted == 3
        spans = {span.name: span for span in target}
        # The worker root files under the merge point; children keep
        # their worker-side parentage, remapped onto target ids.
        assert spans["campaign"].parent_id == merge_point.span_id
        assert spans["phase_inject"].parent_id == spans["campaign"].span_id
        assert spans["phase_scrub"].parent_id == spans["campaign"].span_id
        # Depths shift by the merge point's depth + 1.
        assert spans["campaign"].depth == 1
        assert spans["phase_inject"].depth == 2
        # Every adopted span carries the shard tag; worker attributes
        # and durations survive.
        for name in ("campaign", "phase_inject", "phase_scrub"):
            assert spans[name].attributes["shard"] == 3
        assert spans["campaign"].attributes["level"] == "Z"
        assert spans["phase_inject"].duration_s == pytest.approx(1.0)

    def test_accepts_a_tracer_directly(self):
        worker, wire = worker_trace()
        from_tracer = Tracer(clock=FakeClock())
        from_wire = Tracer(clock=FakeClock())
        assert merge_traces(from_tracer, worker) == 3
        assert merge_traces(from_wire, wire) == 3
        assert (
            [s.to_dict() for s in from_tracer]
            == [s.to_dict() for s in from_wire]
        )

    def test_no_active_span_keeps_worker_roots_as_roots(self):
        _, wire = worker_trace()
        target = Tracer(clock=FakeClock())
        merge_traces(target, wire)
        spans = {span.name: span for span in target}
        assert spans["campaign"].parent_id is None
        assert spans["campaign"].depth == 0
        assert "shard" not in spans["campaign"].attributes

    def test_completion_order_and_started_preserved(self):
        _, wire = worker_trace()
        target = Tracer(clock=FakeClock())
        merge_traces(target, wire)
        assert [span.name for span in target] == [
            "phase_inject", "phase_scrub", "campaign",
        ]
        assert target.started == 3

    def test_null_target_adopts_nothing(self):
        _, wire = worker_trace()
        assert merge_traces(NullTracer(), wire) == 0

    def test_empty_payload_is_noop(self):
        target = Tracer(clock=FakeClock())
        assert merge_traces(target, []) == 0
        assert merge_traces(target, NullTracer()) == 0
        assert len(target) == 0

    def test_respects_target_capacity(self):
        _, wire = worker_trace()
        target = Tracer(capacity=2, clock=FakeClock())
        merge_traces(target, wire)
        assert len(target) == 2
        assert target.dropped == 1

    def test_fixed_merge_order_is_structurally_stable(self):
        # Two identical shard merges must produce identical structure
        # (names, depths, parents, shard tags) -- the property the
        # sharded campaign trace test pins end to end.
        def merged():
            target = Tracer(clock=FakeClock())
            with target.span("sharded_campaign"):
                for shard in (0, 1):
                    _, wire = worker_trace()
                    merge_traces(target, wire, shard=shard)
            return [
                (s.name, s.depth, s.parent_id, s.attributes.get("shard"))
                for s in target
            ]
        assert merged() == merged()
