"""Tests for span tracing: nesting, ordering, the bounded ring."""

import json

import pytest

from repro.obs.tracing import NullTracer, Tracer


class FakeClock:
    """Deterministic monotonic clock advancing 1.0 per read."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestSpans:
    def test_span_records_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work") as span:
            pass
        assert span.start_s == 1.0
        assert span.end_s == 2.0
        assert span.duration_s == 1.0
        assert span.status == "ok"

    def test_nesting_sets_parent_and_depth(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.active_depth == 2
        assert outer.depth == 0 and outer.parent_id is None
        assert inner.depth == 1 and inner.parent_id == outer.span_id
        assert tracer.active_depth == 0

    def test_completion_order(self):
        """Inner spans finish (and are ringed) before their parents."""
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [span.name for span in tracer] == ["b", "c", "a"]
        assert tracer.names() == ["b", "c", "a"]
        assert [s.name for s in tracer.spans_named("b")] == ["b"]

    def test_attributes_and_set_attribute(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("repair", group=3) as span:
            span.set_attribute("trials", 6)
        recorded = next(iter(tracer))
        assert recorded.attributes == {"group": 3, "trials": 6}

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        span = next(iter(tracer))
        assert span.status == "error"
        assert span.attributes["exception"] == "RuntimeError"
        assert tracer.active_depth == 0

    def test_ring_capacity_and_dropped(self):
        tracer = Tracer(capacity=3, clock=FakeClock())
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.started == 5
        assert [span.name for span in tracer] == ["s2", "s3", "s4"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_json_lines_roundtrip(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", level="Z"):
            with tracer.span("inner"):
                pass
        lines = tracer.to_json_lines().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "inner"
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert records[1]["attributes"] == {"level": "Z"}
        assert records[0]["duration_s"] == pytest.approx(1.0)


class TestNullTracer:
    def test_noop_surface(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("anything", group=1) as span:
            span.set_attribute("x", 1)
        assert len(tracer) == 0
        assert list(tracer) == []
        assert tracer.names() == []
        assert tracer.spans_named("anything") == []
        assert tracer.to_json_lines() == ""

    def test_shared_span_instance(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")
