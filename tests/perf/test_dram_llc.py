"""Unit tests for the DRAM and LLC timing models."""

import pytest

from repro.perf.dram import DRAMConfig, DRAMModel
from repro.perf.llc import LLCConfig, LLCTiming


class TestDRAM:
    def test_row_hit_faster_than_miss(self):
        dram = DRAMModel()
        banks = DRAMConfig().channels * DRAMConfig().banks_per_channel
        first = dram.access(0, 0.0)              # row miss (cold)
        second = dram.access(banks, first)       # same bank, same row -> hit
        assert first == pytest.approx(DRAMConfig().row_miss_s)
        assert second - first == pytest.approx(DRAMConfig().row_hit_s)
        assert dram.row_hit_rate() == pytest.approx(0.5)

    def test_bank_queueing(self):
        dram = DRAMModel(DRAMConfig(channels=1, banks_per_channel=1))
        first = dram.access(0, 0.0)
        second = dram.access(1 << 20, 0.0)   # same bank, different row
        assert second > first                # queued behind the first

    def test_different_banks_parallel(self):
        dram = DRAMModel(DRAMConfig(channels=1, banks_per_channel=2))
        first = dram.access(0, 0.0)
        second = dram.access(1, 0.0)         # adjacent line -> other bank
        assert second == pytest.approx(first)

    def test_reset(self):
        dram = DRAMModel()
        dram.access(0, 0.0)
        dram.reset()
        assert dram.requests == 0
        assert dram.access(0, 0.0) == pytest.approx(DRAMConfig().row_miss_s)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(channels=0)
        with pytest.raises(ValueError):
            DRAMConfig(row_hit_s=50e-9, row_miss_s=25e-9)


class TestLLCTiming:
    def test_read_write_service_times(self):
        llc = LLCTiming(LLCConfig.ideal())
        read_done = llc.access(0, False, 0.0)
        assert read_done == pytest.approx(9e-9)
        write_done = llc.access(1, True, 0.0)
        assert write_done == pytest.approx(18e-9)

    def test_same_bank_queues(self):
        config = LLCConfig.ideal(num_banks=2)
        llc = LLCTiming(config)
        first = llc.access(0, False, 0.0)
        second = llc.access(2, False, 0.0)   # line 2 -> bank 0 again
        assert second == pytest.approx(first + 9e-9)

    def test_syndrome_check_adds_latency_not_occupancy(self):
        config = LLCConfig.sudoku(corrections_per_interval=0.0)
        llc = LLCTiming(config)
        first = llc.access(0, False, 0.0)
        assert first == pytest.approx(9e-9 + 1 / 3.2e9)
        # The next request to the same bank starts at 9 ns, not 9 ns + cycle.
        second = llc.access(config.num_banks, False, 0.0)
        assert second == pytest.approx(2 * 9e-9 + 1 / 3.2e9)

    def test_opportunistic_scrub_consumes_idle_time(self):
        config = LLCConfig.sudoku(corrections_per_interval=0.0, num_lines=1 << 10)
        llc = LLCTiming(config)
        llc.access(0, False, 0.0)
        llc.access(0, False, 1e-3)  # 1 ms of idle on bank 0 beforehand
        assert llc.scrub_lines_done > 0

    def test_scrub_deficit_zero_when_idle_rich(self):
        config = LLCConfig.sudoku(corrections_per_interval=0.0, num_lines=1 << 10)
        llc = LLCTiming(config)
        for index in range(config.num_banks):
            llc.access(index, False, 0.0)
            llc.access(index, False, 0.050)
        assert llc.scrub_deficit(0.050) == 0.0

    def test_blocking_scrub_occupies_banks(self):
        config = LLCConfig(
            scrub_enabled=True, scrub_priority="blocking",
            num_lines=1 << 12, scrub_chunk_lines=64,
        )
        llc = LLCTiming(config)
        done = llc.access(0, False, config.scrub_interval_s / 2)
        assert llc.scrub_chunks > 0
        assert done > config.scrub_interval_s / 2 + 9e-9 - 1e-12

    def test_corrections_occupy_all_banks(self):
        config = LLCConfig.sudoku(corrections_per_interval=100.0, num_lines=1 << 12)
        llc = LLCTiming(config, seed=3)
        llc.access(0, False, 1.0)  # advance a long way -> corrections fired
        assert llc.corrections > 0

    def test_ideal_has_no_background(self):
        llc = LLCTiming(LLCConfig.ideal())
        llc.access(0, False, 1.0)
        assert llc.scrub_chunks == 0
        assert llc.corrections == 0
        assert llc.scrub_lines_required(1.0) == 0.0

    def test_utilisation(self):
        llc = LLCTiming(LLCConfig.ideal(num_banks=1))
        llc.access(0, False, 0.0)
        assert llc.utilisation(9e-9) == pytest.approx(1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LLCConfig(num_banks=0)
        with pytest.raises(ValueError):
            LLCConfig(scrub_priority="sometimes")
