"""Unit tests for the synthetic traces and workload catalogue."""

import pytest

from repro.perf.trace import Access, SyntheticTrace
from repro.perf.workloads import (
    MIXES,
    WORKLOADS,
    WorkloadProfile,
    profiles_for,
    suite_names,
)


class TestWorkloadCatalogue:
    def test_suite_composition(self):
        names = suite_names()
        assert "mcf" in names and "MIX1" in names
        assert len(names) == len(WORKLOADS) + len(MIXES)

    def test_all_profiles_valid(self):
        for profile in WORKLOADS.values():
            assert profile.mean_gap_cycles() > 0
            assert 0 <= profile.write_fraction <= 1

    def test_suites_labelled(self):
        suites = {profile.suite for profile in WORKLOADS.values()}
        assert suites == {"SPEC", "PARSEC", "BIO", "COMM"}

    def test_memory_bound_vs_cache_friendly(self):
        assert WORKLOADS["mcf"].llc_apki > 5 * WORKLOADS["povray"].llc_apki

    def test_profiles_for_rate_mode(self):
        profiles = profiles_for("gcc", num_cores=8)
        assert len(profiles) == 8
        assert all(p.name == "gcc" for p in profiles)

    def test_profiles_for_mix(self):
        profiles = profiles_for("MIX1", num_cores=8)
        assert len(profiles) == 8
        assert len({p.name for p in profiles}) > 1

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            profiles_for("nonexistent")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", "SPEC", -1.0, 1.0, 0.2, 100)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", "SPEC", 1.0, 1.0, 1.5, 100)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", "SPEC", 1.0, 1.0, 0.5, 0)


class TestSyntheticTrace:
    def test_deterministic_replay(self):
        profile = WORKLOADS["gcc"]
        first = list(SyntheticTrace(profile, core_id=0, num_accesses=500, seed=3))
        second = list(SyntheticTrace(profile, core_id=0, num_accesses=500, seed=3))
        assert first == second

    def test_core_id_changes_stream_and_address_space(self):
        profile = WORKLOADS["gcc"]
        core0 = list(SyntheticTrace(profile, 0, 200, seed=3))
        core1 = list(SyntheticTrace(profile, 1, 200, seed=3))
        assert core0 != core1
        assert all(a.line_address < (1 << 26) for a in core0)
        assert all((1 << 26) <= a.line_address < (2 << 26) for a in core1)

    def test_length(self):
        trace = SyntheticTrace(WORKLOADS["bzip2"], 0, 123, seed=1)
        assert len(trace) == 123
        assert len(list(trace)) == 123

    def test_write_fraction_statistics(self):
        profile = WORKLOADS["lbm"]  # write fraction 0.45
        accesses = list(SyntheticTrace(profile, 0, 5000, seed=5))
        measured = sum(a.is_write for a in accesses) / len(accesses)
        assert measured == pytest.approx(profile.write_fraction, abs=0.03)

    def test_gap_statistics(self):
        profile = WORKLOADS["gcc"]
        accesses = list(SyntheticTrace(profile, 0, 5000, seed=6))
        mean_gap = sum(a.gap_cycles for a in accesses) / len(accesses)
        assert mean_gap == pytest.approx(profile.mean_gap_cycles(), rel=0.1)

    def test_footprint_respected(self):
        profile = WORKLOADS["povray"]
        accesses = list(SyntheticTrace(profile, 0, 5000, seed=7))
        distinct = {a.line_address for a in accesses}
        assert len(distinct) <= profile.footprint_lines

    def test_hot_set_concentration(self):
        profile = WORKLOADS["gcc"]
        accesses = list(SyntheticTrace(profile, 0, 5000, seed=8))
        hot_lines = int(profile.footprint_lines * profile.hot_fraction)
        hot_hits = sum(a.line_address < hot_lines for a in accesses)
        assert hot_hits / len(accesses) == pytest.approx(
            profile.hot_probability, abs=0.05
        )

    def test_gap_always_positive(self):
        for access in SyntheticTrace(WORKLOADS["mcf"], 0, 1000, seed=9):
            assert access.gap_cycles >= 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTrace(WORKLOADS["gcc"], 0, -1)
