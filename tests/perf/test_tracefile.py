"""Tests for trace file I/O and explicit-trace simulation."""

import io

import pytest

from repro.cache.geometry import CacheGeometry
from repro.perf.llc import LLCConfig
from repro.perf.system import SystemConfig, SystemSimulator
from repro.perf.trace import Access, SyntheticTrace
from repro.perf.tracefile import FileTrace, parse_trace, save_trace, write_trace
from repro.perf.workloads import WORKLOADS


class TestSerialisation:
    def test_roundtrip_via_stream(self):
        accesses = [
            Access(gap_cycles=5, line_address=100, is_write=False),
            Access(gap_cycles=1, line_address=200, is_write=True),
        ]
        buffer = io.StringIO()
        assert write_trace(accesses, buffer) == 2
        parsed = list(parse_trace(buffer.getvalue().splitlines()))
        assert parsed == accesses

    def test_roundtrip_via_file(self, tmp_path):
        source = list(SyntheticTrace(WORKLOADS["gcc"], 0, 500, seed=4))
        path = tmp_path / "gcc.trace"
        assert save_trace(source, str(path)) == 500
        loaded = FileTrace(str(path))
        assert len(loaded) == 500
        assert list(loaded) == source

    def test_comments_and_blanks_skipped(self):
        text = ["# header", "", "3 10 R", "   ", "1 11 W"]
        parsed = list(parse_trace(text))
        assert len(parsed) == 2
        assert parsed[1].is_write

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError):
            list(parse_trace(["1 2"]))
        with pytest.raises(ValueError):
            list(parse_trace(["1 2 X"]))
        with pytest.raises(ValueError):
            list(parse_trace(["-1 2 R"]))

    def test_zero_gap_clamped_to_one(self):
        parsed = list(parse_trace(["0 5 R"]))
        assert parsed[0].gap_cycles == 1


class TestExplicitTraceSimulation:
    GEOMETRY = CacheGeometry(capacity_bytes=1 << 19, line_bytes=64, ways=8)

    def make_config(self):
        return SystemConfig(
            num_cores=2,
            geometry=self.GEOMETRY,
            llc=LLCConfig.ideal(num_lines=self.GEOMETRY.num_lines),
        )

    def test_file_traces_drive_the_simulator(self, tmp_path):
        paths = []
        for core in range(2):
            source = SyntheticTrace(WORKLOADS["bzip2"], core, 800, seed=6)
            path = tmp_path / f"core{core}.trace"
            save_trace(source, str(path))
            paths.append(str(path))
        traces = [FileTrace(p) for p in paths]
        result = SystemSimulator(
            self.make_config(), "custom", traces=traces
        ).run()
        assert result.llc_accesses == 1600
        assert result.execution_time_s > 0

    def test_explicit_traces_match_synthetic_equivalent(self, tmp_path):
        # Writing a synthetic trace to disk and replaying it must produce
        # the identical simulation.
        config = self.make_config()
        direct = SystemSimulator(config, "bzip2", 600, seed=7).run()
        traces = []
        for core in range(2):
            source = SyntheticTrace(WORKLOADS["bzip2"], core, 600, seed=7)
            path = tmp_path / f"c{core}.trace"
            save_trace(source, str(path))
            traces.append(FileTrace(str(path)))
        replayed = SystemSimulator(
            self.make_config(), "bzip2", traces=traces
        ).run()
        assert replayed.execution_time_s == direct.execution_time_s
        assert replayed.llc_misses == direct.llc_misses

    def test_trace_count_must_match_cores(self):
        with pytest.raises(ValueError):
            SystemSimulator(self.make_config(), "x", traces=[[]])


class TestTraceFormatError:
    """Malformed lines name the file and the exact line number."""

    def test_names_line_number_and_default_path(self):
        from repro.perf.tracefile import TraceFormatError

        with pytest.raises(TraceFormatError) as excinfo:
            list(parse_trace(["1 2 R", "# fine", "1 2"]))
        assert "line 3" in str(excinfo.value)
        assert "<trace>" in str(excinfo.value)
        assert excinfo.value.line_number == 3

    def test_non_integer_fields(self):
        from repro.perf.tracefile import TraceFormatError

        with pytest.raises(TraceFormatError, match="non-integer"):
            list(parse_trace(["x 2 R"]))
        with pytest.raises(TraceFormatError, match="non-integer"):
            list(parse_trace(["1 y W"]))

    def test_is_a_value_error(self):
        from repro.perf.tracefile import TraceFormatError

        assert issubclass(TraceFormatError, ValueError)

    def test_file_trace_names_path(self, tmp_path):
        from repro.perf.tracefile import TraceFormatError

        path = tmp_path / "bad.trace"
        path.write_text("5 7 R\nbroken line here\n")
        with pytest.raises(TraceFormatError) as excinfo:
            FileTrace(str(path))
        assert str(path) in str(excinfo.value)
        assert excinfo.value.line_number == 2
        assert excinfo.value.path == str(path)
