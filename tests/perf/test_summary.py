"""Tests for suite-level performance aggregation."""

import pytest

from repro.perf.summary import geometric_mean, suite_of, summarise


class TestSuiteOf:
    def test_known_suites(self):
        assert suite_of("mcf") == "SPEC"
        assert suite_of("canneal") == "PARSEC"
        assert suite_of("mummer") == "BIO"
        assert suite_of("comm1") == "COMM"
        assert suite_of("MIX1") == "MIX"

    def test_unknown(self):
        with pytest.raises(KeyError):
            suite_of("nonexistent")


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestSummarise:
    VALUES = {
        "mcf": 0.004,        # SPEC
        "gcc": 0.000,        # SPEC
        "canneal": 0.002,    # PARSEC
        "comm1": 0.001,      # COMM
        "MIX1": 0.0005,      # MIX
    }

    def test_suite_partition(self):
        summaries = summarise(self.VALUES)
        suites = [entry.suite for entry in summaries]
        assert suites == ["COMM", "MIX", "PARSEC", "SPEC", "ALL"]
        by_suite = {entry.suite: entry for entry in summaries}
        assert by_suite["SPEC"].count == 2
        assert by_suite["ALL"].count == 5

    def test_means(self):
        by_suite = {entry.suite: entry for entry in summarise(self.VALUES)}
        assert by_suite["SPEC"].mean == pytest.approx(0.002)
        assert by_suite["ALL"].mean == pytest.approx(0.0015)

    def test_geomean_is_ratio_based(self):
        by_suite = {entry.suite: entry for entry in summarise(self.VALUES)}
        assert by_suite["SPEC"].geomean_ratio == pytest.approx(
            geometric_mean([1.004, 1.000])
        )

    def test_worst_tracking(self):
        by_suite = {entry.suite: entry for entry in summarise(self.VALUES)}
        assert by_suite["ALL"].worst_workload == "mcf"
        assert by_suite["ALL"].worst == pytest.approx(0.004)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise({})
