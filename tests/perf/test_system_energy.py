"""Tests for the system simulator and energy model (small runs)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.perf.energy import EnergyModel, edp_increase
from repro.perf.llc import LLCConfig
from repro.perf.system import (
    SystemConfig,
    SystemSimulator,
    compare_ideal_vs_sudoku,
    normalized_slowdown,
)

#: Small LLC so tests run in seconds (1 MB -> 16 K lines).
SMALL_GEOMETRY = CacheGeometry(capacity_bytes=1 << 20, line_bytes=64, ways=8)


def run_pair(workload="gcc", accesses=3000, seed=2):
    return compare_ideal_vs_sudoku(
        workload,
        accesses_per_core=accesses,
        seed=seed,
        geometry=SMALL_GEOMETRY,
        corrections_per_interval=1.0,
    )


class TestSystemSimulator:
    def test_deterministic(self):
        config = SystemConfig(geometry=SMALL_GEOMETRY, llc=LLCConfig.ideal(num_lines=SMALL_GEOMETRY.num_lines))
        first = SystemSimulator(config, "gcc", 2000, seed=4).run()
        second = SystemSimulator(config, "gcc", 2000, seed=4).run()
        assert first.execution_time_s == second.execution_time_s
        assert first.llc_misses == second.llc_misses

    def test_accounting_consistency(self):
        results = run_pair()
        for result in results.values():
            assert result.llc_hits + result.llc_misses == result.llc_accesses
            assert result.llc_accesses == 8 * 3000
            assert result.execution_time_s > 0
            assert result.per_core_time_s and max(result.per_core_time_s) == result.execution_time_s

    def test_sudoku_config_runs_background_machinery(self):
        results = run_pair()
        sudoku = results["sudoku"]
        ideal = results["ideal"]
        assert sudoku.scrub_lines_read >= 0
        assert ideal.scrub_lines_read == 0
        assert ideal.corrections == 0

    def test_slowdown_small_and_nonnegative(self):
        results = run_pair()
        slowdown = normalized_slowdown(results)
        # The paper's claim: well under 1%. This micro-window carries
        # ~0.5% shared-cache interleaving noise in either direction (the
        # benchmarks run windows long enough for it to wash out), so the
        # test bands at +-1%.
        assert -0.01 <= slowdown < 0.03

    def test_memory_bound_workload_touches_dram(self):
        results = run_pair(workload="mcf")
        assert results["ideal"].dram_requests > 0
        assert results["ideal"].miss_rate > 0.05

    def test_near_identical_functional_behaviour_across_configs(self):
        # Per-core streams are identical; the shared cache sees slightly
        # different core interleavings under the two timings, so the miss
        # counts may differ marginally (as in any timing-coupled
        # functional simulation) but must agree closely.
        results = run_pair()
        ideal, sudoku = results["ideal"], results["sudoku"]
        assert sudoku.llc_misses == pytest.approx(ideal.llc_misses, rel=0.005)
        assert sudoku.writebacks == pytest.approx(ideal.writebacks, rel=0.01)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)
        with pytest.raises(ValueError):
            SystemConfig(max_outstanding=0)

    def test_latency_statistics(self):
        results = run_pair()
        for result in results.values():
            # Average memory latency sits between an LLC hit and a DRAM
            # round-trip (plus queueing headroom).
            assert 8e-9 < result.average_memory_latency_s < 2e-6
            assert result.core_imbalance >= 1.0
        # SuDoku's syndrome check can only lengthen the average latency.
        assert (
            results["sudoku"].average_memory_latency_s
            >= results["ideal"].average_memory_latency_s * 0.99
        )

    def test_warmup_lowers_miss_rate(self):
        cold = compare_ideal_vs_sudoku(
            "gcc", accesses_per_core=2500, seed=5, geometry=SMALL_GEOMETRY
        )
        warm = compare_ideal_vs_sudoku(
            "gcc", accesses_per_core=2500, seed=5, geometry=SMALL_GEOMETRY,
            warmup_accesses_per_core=10_000,
        )
        assert warm["ideal"].miss_rate < cold["ideal"].miss_rate
        # Warm-up must not change the measured access volume.
        assert warm["ideal"].llc_accesses == cold["ideal"].llc_accesses


class TestEnergyModel:
    def test_report_totals_positive(self):
        results = run_pair()
        model = EnergyModel()
        report = model.report(results["sudoku"], with_sudoku_overheads=True)
        assert report.total_j > 0
        assert report.edp == pytest.approx(report.total_j * report.execution_time_s)

    def test_sudoku_overheads_add_components(self):
        results = run_pair()
        model = EnergyModel()
        ideal = model.report(results["ideal"], with_sudoku_overheads=False)
        sudoku = model.report(results["sudoku"], with_sudoku_overheads=True)
        assert ideal.codec_j == 0.0 and ideal.plt_j == 0.0
        assert sudoku.codec_j > 0.0 and sudoku.plt_j > 0.0

    def test_breakdown_matches_total(self):
        results = run_pair()
        report = EnergyModel().report(results["sudoku"], with_sudoku_overheads=True)
        assert sum(report.breakdown().values()) == pytest.approx(report.total_j)

    def test_edp_increase_small(self):
        results = run_pair()
        increase = edp_increase(results["ideal"], results["sudoku"])
        # Paper: at most ~0.4%; the micro-window carries ~2x the
        # slowdown's interleaving noise (EDP ~ time squared).
        assert -0.02 <= increase < 0.05

    def test_static_power_dominated_by_system(self):
        model = EnergyModel()
        results = run_pair()
        report = model.report(results["ideal"], with_sudoku_overheads=False)
        assert report.static_j > report.array_read_j
