"""Closed-loop integration: adaptive scrub controller driving a real engine.

The controller's unit tests feed it analytic observations; here it sits
in the actual loop -- a SuDoku-Z engine over a bit-level array, a fault
injector whose intensity tracks a degrading device, and the controller
reading the engine's own multi-bit-line counts to retune the interval.
"""

import numpy as np
import pytest

from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.reliability.montecarlo import heal
from repro.sttram.adaptive import AdaptiveScrubController
from repro.sttram.faults import TransientFaultInjector
from repro.sttram.variation import effective_ber

GROUP = 32
NUM_LINES = GROUP * GROUP
#: Device trajectory: healthy, degrading, degraded, recovering.
DELTA_BY_EPOCH = [35.0] * 3 + [33.0] * 3 + [31.5] * 4 + [34.0] * 3


@pytest.mark.parametrize("seed", [5])
def test_closed_loop_adaptation(seed):
    rng = np.random.default_rng(seed)
    codec = LineCodec()
    from repro.sttram.array import STTRAMArray

    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = SuDokuZ(array, group_size=GROUP, codec=codec)
    controller = AdaptiveScrubController(
        target_fit=1.0, num_lines=NUM_LINES, group_size=GROUP, ewma=0.8,
        min_interval_s=0.005, max_interval_s=0.160,
    )

    chosen_intervals = []
    lost_epochs = 0
    for delta in DELTA_BY_EPOCH:
        # The physical fault intensity at the *controller-chosen* interval.
        ber = effective_ber(delta, 0.10 * delta, controller.interval_s)
        injector = TransientFaultInjector(codec.stored_bits, ber, rng)
        vectors = injector.error_vectors(NUM_LINES)
        for frame, vector in vectors.items():
            array.inject(frame, vector)
        counts = engine.scrub_frames(sorted(vectors))
        if counts.get("due", 0) or counts.get("sdc", 0):
            lost_epochs += 1
            heal(array)
            engine.initialize_parities()

        multi_lines = sum(
            1 for vector in vectors.values() if bin(vector).count("1") >= 2
        )
        decision = controller.observe(float(multi_lines))
        chosen_intervals.append(decision.chosen_interval_s)

    healthy = max(chosen_intervals[:3])
    degraded = min(chosen_intervals[5:10])
    recovered = chosen_intervals[-1]
    # The controller tightened under degradation...
    assert degraded < healthy
    # ...and relaxed again on recovery.
    assert recovered > degraded
    # No epoch silently corrupted data.
    assert engine.stats.count_label("sdc") == 0
    # The degraded-phase decisions still target the FIT budget: the
    # controller's own prediction stayed at or below target whenever it
    # was not pinned at the actuation floor.
    for decision in controller.history:
        if decision.chosen_interval_s > controller.min_interval_s:
            assert decision.predicted_fit <= controller.target_fit * 1.001
