"""Stateful property testing of the SuDoku engines.

A hypothesis state machine drives a SuDoku-Z engine through arbitrary
interleavings of writes, single/multi-bit fault injections, demand
reads, and scrubs, checking the global invariants after every step:

* no operation ever silently returns wrong data (reads always match the
  model's view of the last write);
* the engine never reports SDC (that would need a 2^-31 CRC collision);
* whenever the array is fault-free, every PLT entry equals the XOR of
  its group (parity bookkeeping never drifts);
* scrubbing twice in a row is idempotent (the second pass is all-clean)
  unless the first pass ended in a DUE.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.coding.bitvec import random_error_vector
from repro.coding.parity import xor_reduce
from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.sttram.array import STTRAMArray

GROUP = 8
NUM_LINES = GROUP * GROUP

#: Shared codec: construction precomputes Hamming masks, reuse is free.
CODEC = LineCodec()


class SuDokuMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.array = STTRAMArray(NUM_LINES, CODEC.stored_bits)
        self.engine = SuDokuZ(self.array, group_size=GROUP, codec=CODEC)
        self.shadow = {frame: 0 for frame in range(NUM_LINES)}
        self.rng = random.Random(0xC0FFEE)
        self.poisoned = False  # a DUE may legitimately lose data

    @initialize()
    def seed_content(self):
        for frame in range(0, NUM_LINES, 7):
            value = self.rng.getrandbits(512)
            self.engine.write_data(frame, value)
            self.shadow[frame] = value

    # -- operations ------------------------------------------------------------------

    @rule(frame=st.integers(min_value=0, max_value=NUM_LINES - 1),
          value=st.integers(min_value=0, max_value=(1 << 512) - 1))
    def write(self, frame, value):
        self.engine.write_data(frame, value)
        self.shadow[frame] = value

    @rule(frame=st.integers(min_value=0, max_value=NUM_LINES - 1))
    def inject_single(self, frame):
        self.array.inject(frame, 1 << self.rng.randrange(CODEC.stored_bits))

    @rule(frame=st.integers(min_value=0, max_value=NUM_LINES - 1),
          weight=st.integers(min_value=2, max_value=4))
    def inject_multi(self, frame, weight):
        self.array.inject(
            frame, random_error_vector(CODEC.stored_bits, weight, self.rng)
        )

    @rule(frame=st.integers(min_value=0, max_value=NUM_LINES - 1))
    def read(self, frame):
        data, outcome = self.engine.read_data(frame)
        if outcome.value in ("clean", "corrected_ecc1", "corrected_raid4",
                             "corrected_sdr", "corrected_hash2"):
            assert data == self.shadow[frame], (
                f"read of frame {frame} returned wrong data under {outcome}"
            )

    @rule()
    def scrub(self):
        counts = self.engine.scrub_all()
        assert counts.get("sdc", 0) == 0, "silent corruption detected"
        if counts.get("due", 0):
            self.poisoned = True
            # Discard the lost state: heal and resynchronise parity, as
            # the campaign harness does after a failure.
            for frame in self.array.faulty_lines():
                self.array.restore(frame, self.array.golden(frame))
            self.engine.initialize_parities()
            self.poisoned = False
        else:
            repeat = self.engine.scrub_all()
            assert set(repeat) == {"clean"}, f"scrub not idempotent: {repeat}"

    # -- invariants -------------------------------------------------------------------

    @invariant()
    def parity_consistent_when_clean(self):
        if self.poisoned or self.array.faulty_lines():
            return
        for plt, mapper in self.engine._tables():
            for group in range(mapper.num_groups):
                expected = xor_reduce(
                    self.array.read(f) for f in mapper.members(group)
                )
                assert plt.parity(group) == expected, (
                    f"parity drift in group {group}"
                )

    @invariant()
    def golden_matches_shadow(self):
        for frame in (0, NUM_LINES // 2, NUM_LINES - 1):
            assert self.array.golden(frame) == CODEC.encode(self.shadow[frame])


SuDokuMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
TestSuDokuStateMachine = SuDokuMachine.TestCase
