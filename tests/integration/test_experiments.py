"""Integration tests over the experiment-assembly layer.

These assert that every paper exhibit regenerates with the documented
paper-agreement properties -- the same checks EXPERIMENTS.md reports.
"""

import pytest

from repro.analysis import experiments
from repro.analysis.tables import format_table, format_value, ratio_note
from repro.core.config import PAPER


def value_of(exp, row_label, column_index=1):
    for row in exp["rows"]:
        if row[0] == row_label:
            return row[column_index]
    raise KeyError(row_label)


class TestTableFormatting:
    def test_format_value_styles(self):
        assert format_value(0.0) == "0"
        assert format_value(1.05e-4) == "0.000105"
        assert format_value(5.3e-6) == "5.3e-06"
        assert format_value(874.0) == "874.0"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.0], [30, 4.5e-9]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_ratio_note(self):
        assert "x2" in ratio_note(2.0, 1.0)


class TestExhibits:
    def test_table1_ber_within_band(self):
        exp = experiments.table1_ber()
        delta35 = exp["rows"][1]
        assert delta35[1] == pytest.approx(delta35[2], rel=0.10)

    def test_table2_every_line_probability_close(self):
        exp = experiments.table2_ecc_fit()
        for row in exp["rows"]:
            assert row[1] == pytest.approx(row[2], rel=0.2)

    def test_fig3_case_fractions(self):
        exp = experiments.fig3_sdr_cases(trials=30_000)
        no_overlap = exp["rows"][0]
        assert no_overlap[1] == pytest.approx(no_overlap[2], abs=0.01)
        assert no_overlap[1] > 0.98

    def test_fig7_ordering_and_strength(self):
        exp = experiments.fig7_reliability()
        mttf_x = value_of(exp, "SuDoku-X MTTF (s)")
        fit_z = value_of(exp, "SuDoku-Z FIT")
        strength = value_of(exp, "SuDoku-Z strength vs ECC-6")
        no_sdr = value_of(exp, "SuDoku-Z (no SDR) FIT")
        assert mttf_x == pytest.approx(PAPER.sudoku_x_mttf_s, rel=0.25)
        assert fit_z < 1e-3
        assert strength > PAPER.sudoku_z_vs_ecc6
        assert no_sdr == pytest.approx(PAPER.sudoku_z_alone_fit, rel=0.25)

    def test_table8_fit_monotone_in_interval(self):
        exp = experiments.table8_scrub_interval()
        sudoku_column = [row[7] for row in exp["rows"]]
        assert sudoku_column == sorted(sudoku_column)
        ecc6_column = [row[5] for row in exp["rows"]]
        assert ecc6_column == sorted(ecc6_column)

    def test_table9_linear_scaling(self):
        exp = experiments.table9_cache_size()
        values = [row[1] for row in exp["rows"]]
        assert values[1] == pytest.approx(2 * values[0], rel=0.01)
        assert values[2] == pytest.approx(2 * values[1], rel=0.01)

    def test_table10_strength_declines_with_delta(self):
        exp = experiments.table10_delta()
        strengths = [row[6] for row in exp["rows"]]
        assert strengths[0] > strengths[1] > strengths[2]
        # SuDoku remains stronger than ECC-6 at every studied delta.
        assert all(s > 1 for s in strengths)

    def test_table11_sudoku_wins_by_miles(self):
        exp = experiments.table11_baselines()
        fits = {row[0]: row[1] for row in exp["rows"]}
        assert fits["SuDoku"] * 1e6 < min(
            fits["CPPC + CRC-31"], fits["RAID-6 + CRC-31"], fits["2DP + ECC-1 + CRC-31"]
        )

    def test_table12_hiecc_weaker(self):
        exp = experiments.table12_hiecc()
        fits = {row[0]: row[1] for row in exp["rows"]}
        assert fits["Hi-ECC"] > 1.0 > fits["SuDoku"]

    def test_latency_summary_magnitudes(self):
        exp = experiments.latency_summary()
        raid4_us = value_of(exp, "RAID-4 repair (us)")
        assert 3.0 < raid4_us < 20.0

    def test_storage_summary_matches_paper(self):
        exp = experiments.storage_summary()
        total = value_of(exp, "SuDoku total bits/line")
        assert total == pytest.approx(PAPER.overhead_bits_sudoku, abs=1.0)

    def test_all_experiments_assemble(self):
        for exp in experiments.all_experiments():
            assert exp["rows"], exp["title"]
            rendered = format_table(exp["headers"], exp["rows"])
            assert rendered.count("\n") >= len(exp["rows"])


class TestPerformanceExhibits:
    """Figs 8-9 on a reduced workload set (full set in the benches)."""

    def test_fig8_small(self):
        exp = experiments.fig8_performance(
            workloads=["gcc", "povray"], accesses_per_core=4000
        )
        mean_row = exp["rows"][-1]
        assert mean_row[0] == "MEAN"
        assert -0.1 <= mean_row[3] < 1.0  # percent slowdown

    def test_fig9_small(self):
        exp = experiments.fig9_edp(
            workloads=["gcc"], accesses_per_core=4000
        )
        assert exp["rows"][-1][0] == "MEAN"
        assert -0.2 <= exp["rows"][-1][1] < 2.0
