"""End-to-end telemetry integration.

The two load-bearing guarantees:

1. telemetry is observational only -- a campaign with a registry and
   tracer attached produces bit-identical results to one without, given
   the same seed; and
2. the CLI export path emits parseable Prometheus text plus JSONL spans
   that cover the raid4/sdr/hash2 repair paths.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs import ProgressReporter, Telemetry
from repro.reliability.montecarlo import run_group_campaign
from repro.reliability.raresim import ConditionalGroupSimulator
import random

# Small, failure-rich campaign: high accelerated BER over 8-line groups
# exercises ECC-1, RAID-4, SDR, and Hash-2 within a few intervals.
CAMPAIGN = dict(level="Z", ber=2e-3, trials=4, group_size=8)
SEED = 5


class TestBitIdenticalResults:
    def test_campaign_identical_with_and_without_telemetry(self):
        bare = run_group_campaign(
            **CAMPAIGN, rng=np.random.default_rng(SEED)
        )
        telemetry = Telemetry.create()
        instrumented = run_group_campaign(
            **CAMPAIGN, rng=np.random.default_rng(SEED), telemetry=telemetry
        )
        assert instrumented.outcomes == bare.outcomes
        assert instrumented.interval_failures == bare.interval_failures
        assert instrumented.failure_probability == bare.failure_probability
        # ... and the instrumented run actually recorded something.
        outcomes = telemetry.metrics.get("campaign_outcomes_total")
        assert outcomes is not None
        total = sum(child.value for _, child in outcomes.samples())
        assert total == sum(bare.outcomes.values())

    def test_raresim_identical_with_and_without_telemetry(self):
        def run(telemetry):
            simulator = ConditionalGroupSimulator(
                ber=1e-3, group_size=16, rng=random.Random(11)
            )
            return simulator.run("Z", trials=20, telemetry=telemetry)

        bare = run(None)
        telemetry = Telemetry.create()
        instrumented = run(telemetry)
        assert instrumented.conditional_failures == bare.conditional_failures
        trials = telemetry.metrics.get("raresim_trials_total")
        assert trials.labels(level="Z").value == 20


class TestCampaignMetricsSeries:
    def test_interval_and_mechanism_series_recorded(self):
        telemetry = Telemetry.create()
        result = run_group_campaign(
            **CAMPAIGN, rng=np.random.default_rng(SEED), telemetry=telemetry
        )
        metrics = telemetry.metrics
        intervals = metrics.get("campaign_intervals_total")
        ((_, child),) = intervals.samples()
        assert child.value == result.intervals
        histogram = metrics.get("campaign_interval_seconds")
        ((_, h),) = histogram.samples()
        assert h.count == result.intervals
        corrections = metrics.get("sudoku_corrections_total")
        mechanisms = {values[1] for values, _ in corrections.samples()}
        assert {"raid4", "sdr", "hash2"} <= mechanisms
        # CorrectionStats snapshot published at campaign end.
        stat = metrics.get("sudoku_engine_stat")
        assert stat.labels(level="Z", stat="group_scans").value > 0

    def test_spans_cover_repair_paths(self):
        telemetry = Telemetry.create()
        run_group_campaign(
            **CAMPAIGN, rng=np.random.default_rng(SEED), telemetry=telemetry
        )
        names = set(telemetry.tracer.names())
        assert {"campaign", "raid4_repair", "sdr_repair", "hash2_repair"} <= names
        campaign_span = telemetry.tracer.spans_named("campaign")[0]
        assert campaign_span.attributes["intervals"] == CAMPAIGN["trials"]
        # Repair spans nest under the campaign span.
        raid4 = telemetry.tracer.spans_named("raid4_repair")[0]
        assert raid4.depth >= 1

    def test_progress_reporter_heartbeats(self, capsys):
        import io

        stream = io.StringIO()
        progress = ProgressReporter(
            total=CAMPAIGN["trials"], label="mc", stream=stream,
            min_interval_s=0.0,
        )
        run_group_campaign(
            **CAMPAIGN, rng=np.random.default_rng(SEED), progress=progress
        )
        text = stream.getvalue()
        assert "[mc]" in text
        assert "done in" in text


class TestCliExport:
    def test_campaign_metrics_out(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "manifest.json"
        code = main([
            "campaign", "--level", "Z", "--ber", "2e-3", "--intervals", "4",
            "--group-size", "8", "--seed", str(SEED),
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
            "--manifest-out", str(manifest_path),
        ])
        assert code == 0

        # Prometheus text: every sample line parses as name{labels} value.
        samples = {}
        for line in metrics_path.read_text().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name_and_labels, value = line.rsplit(" ", 1)
            float(value)  # must parse
            samples[name_and_labels] = float(value)
        assert any(
            key.startswith("sudoku_corrections_total") for key in samples
        )
        assert any(
            key.startswith("campaign_interval_seconds_bucket") for key in samples
        )

        # Spans: JSONL records covering the three repair mechanisms.
        names = {
            json.loads(line)["name"]
            for line in trace_path.read_text().splitlines()
        }
        assert {"raid4_repair", "sdr_repair", "hash2_repair"} <= names

        manifest = json.loads(manifest_path.read_text())
        assert manifest["command"] == "campaign"
        assert manifest["seed"] == SEED
        assert manifest["config"]["level"] == "Z"
        assert manifest["durations_s"]["total"] > 0

    def test_campaign_results_unchanged_by_flags(self, tmp_path, capsys):
        """The CLI table is byte-identical with and without telemetry."""
        argv = [
            "campaign", "--level", "X", "--ber", "3e-4", "--intervals", "6",
            "--group-size", "8", "--seed", "3",
        ]
        assert main(argv) == 0
        bare_out = capsys.readouterr().out
        assert main(
            argv + ["--metrics-out", str(tmp_path / "m.prom")]
        ) == 0
        instrumented_out = capsys.readouterr().out
        assert instrumented_out == bare_out

    def test_perf_metrics_out(self, tmp_path, capsys):
        metrics_path = tmp_path / "perf.prom"
        code = main([
            "perf", "--workloads", "povray", "--accesses", "1200",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(tmp_path / "perf-trace.jsonl"),
        ])
        assert code == 0
        text = metrics_path.read_text()
        assert 'perf_sim_simulated_seconds{workload="povray",config="ideal"}' in text
        assert 'perf_sim_simulated_seconds{workload="povray",config="sudoku"}' in text
        assert "perf_sim_wallclock_seconds" in text
        assert "perf_sim_time_ratio" in text
        spans = (tmp_path / "perf-trace.jsonl").read_text()
        assert spans.count('"name":"perf_sim"') == 2

    def test_metrics_out_jsonl_extension_switches_format(
        self, tmp_path, capsys
    ):
        target = tmp_path / "metrics.jsonl"
        assert main([
            "campaign", "--level", "X", "--ber", "1e-3", "--intervals", "2",
            "--group-size", "8", "--seed", "1",
            "--metrics-out", str(target),
        ]) == 0
        records = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert records and all("name" in record for record in records)

    def test_unwritable_out_path_fails_before_running(self, tmp_path):
        """A bad export dir must not cost the user the whole campaign."""
        with pytest.raises(SystemExit) as excinfo:
            main([
                "campaign", "--level", "X", "--ber", "1e-3",
                "--intervals", "2", "--group-size", "8", "--seed", "1",
                "--metrics-out", str(tmp_path / "missing" / "m.prom"),
            ])
        assert "does not exist" in str(excinfo.value)

    def test_exhibits_telemetry(self, tmp_path, capsys):
        metrics_path = tmp_path / "exhibits.prom"
        code = main([
            "exhibits", "--only", "Table IX",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(tmp_path / "exhibits.jsonl"),
        ])
        assert code == 0
        assert "exhibits_rendered_total 1" in metrics_path.read_text()
        record = json.loads(
            (tmp_path / "exhibits.jsonl").read_text().splitlines()[0]
        )
        assert record["name"] == "exhibit"
        assert "Table IX" in record["attributes"]["title"]
