"""CLI round-trips for the --shards flag."""

import json

import pytest

from repro.cli import main

SMALL = ["--intervals", "4", "--group-size", "16", "--ber", "5e-3",
         "--seed", "7"]


class TestCampaignShards:
    def test_shards_one_bit_identical_to_default(self, tmp_path, capsys):
        serial_out = str(tmp_path / "serial.json")
        sharded_out = str(tmp_path / "sharded.json")
        assert main(["campaign", *SMALL, "--result-out", serial_out]) == 0
        assert main(["campaign", *SMALL, "--shards", "1",
                     "--result-out", sharded_out]) == 0
        assert (json.loads(open(serial_out).read())
                == json.loads(open(sharded_out).read()))

    def test_sharded_run_merges_all_intervals(self, tmp_path, capsys):
        out = str(tmp_path / "out.json")
        assert main(["campaign", *SMALL, "--shards", "2",
                     "--result-out", out]) == 0
        result = json.loads(open(out).read())
        assert result["intervals"] == 4
        assert "[2 shards]" in capsys.readouterr().out

    def test_rejects_non_positive_shards(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", *SMALL, "--shards", "0"])
        assert excinfo.value.code != 0

    def test_sharded_resume_without_files_is_one_line_error(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "nope.json")
        code = main(["campaign", *SMALL, "--shards", "2", "--resume", ck])
        assert code == 2
        err = capsys.readouterr().err.strip()
        assert "no shard checkpoint" in err
        assert "Traceback" not in err
