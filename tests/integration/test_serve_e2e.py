"""``python -m repro serve`` end-to-end: real process, real SIGTERM.

The in-process tests in tests/serve/test_app.py cover routing and
scheduling; this module exercises the operational story the ISSUE pins:
boot the actual CLI entry point, kill it mid-job with SIGTERM, verify
the drain left a checkpoint and no corrupt store entry, then restart on
the same directories and confirm the resumed result is bit-identical to
an uninterrupted run.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO, "src")

SPEC = {
    "kind": "campaign", "level": "Z", "ber": 2e-3,
    "intervals": 60, "group_size": 8, "seed": 3,
}


class _Server:
    """A ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, tmp_path, tag):
        self.store_dir = str(tmp_path / "store")
        self.checkpoint_dir = str(tmp_path / "ck")
        self.ready_file = str(tmp_path / f"ready-{tag}.json")
        self.process = None
        self.port = None

    def __enter__(self):
        env = dict(os.environ, PYTHONPATH=SRC)
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--store-dir", self.store_dir,
                "--checkpoint-dir", self.checkpoint_dir,
                "--workers", "1",
                "--checkpoint-every", "2",
                "--drain-grace-s", "15",
                "--ready-file", self.ready_file,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(self.ready_file):
                with open(self.ready_file, "r", encoding="utf-8") as handle:
                    self.port = json.load(handle)["port"]
                return self
            if self.process.poll() is not None:
                raise AssertionError(
                    "server exited early: "
                    + self.process.stderr.read().decode()
                )
            time.sleep(0.05)
        raise AssertionError("server never wrote the ready file")

    def __exit__(self, exc_type, exc, tb):
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        self.process.stdout.close()
        self.process.stderr.close()
        os.path.exists(self.ready_file) and os.remove(self.ready_file)

    def request(self, method, path, payload=None):
        connection = http.client.HTTPConnection("127.0.0.1", self.port)
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        raw = response.read()
        connection.close()
        return response.status, raw

    def request_json(self, method, path, payload=None):
        status, raw = self.request(method, path, payload)
        return status, json.loads(raw)

    def wait_for(self, job_id, predicate, timeout_s=60.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            _, job = self.request_json("GET", f"/v1/jobs/{job_id}")
            if predicate(job):
                return job
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never reached predicate")


def _store_files(root):
    return sorted(
        name
        for _, _, files in os.walk(root)
        for name in files
    )


def test_sigterm_drain_then_restart_resumes_bit_identical(tmp_path):
    # --- Phase 1: boot, submit, SIGTERM mid-job. -------------------------
    first = tmp_path / "run"
    with _Server(first, "a") as server:
        status, job = server.request_json("POST", "/v1/jobs", SPEC)
        assert status == 202
        digest = job["digest"]
        server.wait_for(
            job["job_id"],
            lambda state: state.get("progress", {}).get("done", 0) >= 6,
        )
        server.process.send_signal(signal.SIGTERM)
        assert server.process.wait(timeout=60) == 0

    # The drain checkpointed the partial job and stored nothing.
    checkpoints = os.listdir(first / "ck")
    assert checkpoints and checkpoints[0].startswith(f"job-{digest}")
    assert _store_files(first / "store") == []  # no torn/partial entries

    # --- Phase 2: restart on the same dirs; resubmission resumes. --------
    with _Server(first, "b") as server:
        status, job = server.request_json("POST", "/v1/jobs", SPEC)
        assert status == 202 and job["created"]
        done = server.wait_for(
            job["job_id"], lambda state: state["status"] == "done"
        )
        assert done["status"] == "done"
        status, resumed_bytes = server.request("GET", f"/v1/results/{digest}")
        assert status == 200
        resumed_record = json.loads(resumed_bytes)
        # The resumed run only simulated the remaining intervals.
        assert resumed_record["result"]["intervals"] == SPEC["intervals"]
        assert os.listdir(first / "ck") == []  # checkpoint consumed

        # A third submission is now a pure cache hit.
        status, again = server.request_json("POST", "/v1/jobs", SPEC)
        assert status == 200 and again["cached"]

    # --- Phase 3: uninterrupted reference on fresh dirs. -----------------
    reference = tmp_path / "ref"
    with _Server(reference, "c") as server:
        status, job = server.request_json("POST", "/v1/jobs", SPEC)
        assert status == 202
        server.wait_for(
            job["job_id"], lambda state: state["status"] == "done"
        )
        status, reference_bytes = server.request(
            "GET", f"/v1/results/{digest}"
        )
        assert status == 200

    assert resumed_bytes == reference_bytes
