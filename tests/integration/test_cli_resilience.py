"""CLI error paths and resilience round-trips (chaos, checkpoint, resume)."""

import json

import pytest

from repro.cli import main

SMALL = ["--intervals", "4", "--group-size", "16", "--ber", "5e-3"]


class TestErrorPaths:
    """Every bad input: exit != 0, one-line message, no traceback."""

    def assert_one_line_error(self, capsys):
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0
        assert "Traceback" not in err
        return err

    def test_unknown_resume_file(self, tmp_path, capsys):
        code = main(["campaign", "--resume", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot read checkpoint" in self.assert_one_line_error(capsys)

    def test_corrupt_checkpoint_json(self, tmp_path, capsys):
        bad = tmp_path / "ck.json"
        bad.write_text("{not json")
        code = main(["campaign", "--resume", str(bad)])
        assert code == 2
        assert "corrupt checkpoint" in self.assert_one_line_error(capsys)

    def test_wrong_kind_checkpoint(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        main(["raresim", "--trials", "2", "--group-size", "16",
              "--ber", "1e-3", "--checkpoint", str(ck)])
        capsys.readouterr()
        code = main(["campaign", "--resume", str(ck)])
        assert code == 2
        assert "snapshot" in self.assert_one_line_error(capsys)

    def test_bad_deadline(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--deadline", "-1"])
        assert excinfo.value.code != 0
        assert "must be positive" in capsys.readouterr().err

    def test_non_numeric_deadline(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--deadline", "soon"])
        assert excinfo.value.code != 0

    def test_exporter_dir_missing(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--metrics-out", "/no/such/dir/m.txt"])
        assert "does not exist" in str(excinfo.value)

    def test_result_out_dir_missing(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--result-out", "/no/such/dir/r.json"])
        assert "does not exist" in str(excinfo.value)

    def test_checkpoint_dir_missing(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--checkpoint", "/no/such/dir/ck.json"])
        assert "does not exist" in str(excinfo.value)

    def test_checkpoint_every_without_checkpoint(self, capsys):
        code = main(["campaign", "--checkpoint-every", "5"] + SMALL)
        assert code == 2
        assert "--checkpoint-every" in self.assert_one_line_error(capsys)


class TestCampaignRoundTrip:
    def test_deadline_kill_then_resume_matches_uninterrupted(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "ck.json")
        partial_out = str(tmp_path / "partial.json")
        resumed_out = str(tmp_path / "resumed.json")
        full_out = str(tmp_path / "full.json")

        # A deadline this short expires after the first interval: a
        # deterministic stand-in for kill -9 mid-campaign.
        code = main(["campaign", *SMALL, "--checkpoint", ck,
                     "--deadline", "1e-9", "--result-out", partial_out])
        assert code == 0
        partial = json.loads(open(partial_out).read())
        assert partial["truncated"] and partial["stop_reason"] == "deadline"
        assert 0 < partial["intervals"] < 4

        code = main(["campaign", *SMALL, "--resume", ck,
                     "--result-out", resumed_out])
        assert code == 0
        code = main(["campaign", *SMALL, "--result-out", full_out])
        assert code == 0
        resumed = json.loads(open(resumed_out).read())
        full = json.loads(open(full_out).read())
        assert resumed == full

    def test_periodic_checkpoint_file_is_valid(self, tmp_path, capsys):
        from repro.resilience import load_checkpoint

        ck = str(tmp_path / "ck.json")
        code = main(["campaign", *SMALL, "--checkpoint", ck,
                     "--checkpoint-every", "2"])
        assert code == 0
        payload = load_checkpoint(ck, "montecarlo")
        assert payload["completed"] == 4


class TestRaresimRoundTrip:
    ARGS = ["raresim", "--level", "Z", "--trials", "6",
            "--group-size", "16", "--ber", "1e-3"]

    def test_deadline_kill_then_resume_matches_uninterrupted(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "ck.json")
        resumed_out = str(tmp_path / "resumed.json")
        full_out = str(tmp_path / "full.json")
        assert main([*self.ARGS, "--checkpoint", ck,
                     "--deadline", "1e-9"]) == 0
        assert main([*self.ARGS, "--resume", ck,
                     "--result-out", resumed_out]) == 0
        assert main([*self.ARGS, "--result-out", full_out]) == 0
        resumed = json.loads(open(resumed_out).read())
        full = json.loads(open(full_out).read())
        assert resumed == full


class TestChaosCommand:
    def test_sweep_reports_levels_and_rates(self, tmp_path, capsys):
        out = str(tmp_path / "sweep.json")
        code = main(["chaos", "--levels", "X", "Z",
                     "--plt-flip-rates", "0", "0.05",
                     "--intervals", "3", "--group-size", "16",
                     "--result-out", out])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "metadata_due" in stdout
        sweep = json.loads(open(out).read())["sweep"]
        assert len(sweep) == 4
        # The tentpole guarantee: metadata faults never become SDCs.
        assert all(
            rec["result"]["outcomes"].get("sdc", 0) == 0 for rec in sweep
        )
        chaotic = [r for r in sweep if r["plt_flip_rate"] > 0]
        assert any(
            rec["result"]["metadata"].get("plt_flips", 0) > 0
            for rec in chaotic
        )

    def test_rejects_out_of_range_rate(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--plt-flip-rates", "1.5"])
        assert excinfo.value.code != 0

    def test_campaign_chaos_flags(self, capsys):
        code = main(["campaign", *SMALL, "--plt-flip-rate", "0.05",
                     "--visit-drop-rate", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos enabled" in out
        assert "metadata:" in out
