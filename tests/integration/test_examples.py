"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken
deliverable. Each runs in a subprocess (its own interpreter, like a
user would) with reduced workloads where the script accepts arguments.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: script -> (extra argv, timeout seconds, required output fragment)
CASES = {
    "quickstart.py": ([], 240, "every payload verified intact"),
    "paper_figures_walkthrough.py": ([], 240, "every figure scenario reproduced"),
    "design_space_exploration.py": (
        ["--delta", "34"], 240, "cheapest feasible"
    ),
    "adaptive_scrub.py": ([], 240, "chosen interval"),
    "reliability_study.py": ([], 240, "Protection landscape"),
    "low_voltage_sram.py": ([], 300, "Table IV"),
    "correction_forensics.py": ([], 300, "mechanism mix"),
    "baseline_shootout.py": (
        ["--intervals", "6"], 420, "failed/6"
    ),
    "fault_injection_campaign.py": (
        ["--intervals", "15"], 420, "measured P(fail)"
    ),
    "performance_simulation.py": (
        ["--workloads", "povray", "--accesses", "2000"], 420, "mean slowdown"
    ),
    "kv_store_protection.py": ([], 420, "zero data loss"),
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    argv, timeout, fragment = CASES[script]
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stderr[-2000:]}"
    )
    assert fragment in completed.stdout, (
        f"{script} output missing {fragment!r}"
    )


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), (
        f"examples drifted: on disk {on_disk ^ set(CASES)}"
    )
