"""Tests for the Markdown report generator."""

import pytest

from repro.analysis.reporting import (
    build_report,
    render_exhibit_markdown,
    write_report,
)


class TestRendering:
    def test_exhibit_section(self):
        exhibit = {
            "title": "Table Test",
            "headers": ["a", "b"],
            "rows": [[1, 2.5]],
            "notes": "a note",
        }
        text = render_exhibit_markdown(exhibit)
        assert text.startswith("## Table Test")
        assert "```" in text
        assert "*a note*" in text

    def test_exhibit_without_notes(self):
        exhibit = {"title": "T", "headers": ["a"], "rows": [[1]]}
        text = render_exhibit_markdown(exhibit)
        assert "*" not in text.splitlines()[-1]


class TestFullReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        return build_report(include_performance=False)

    def test_contains_every_analytic_exhibit(self, report_text):
        for fragment in (
            "Table I:", "Table II:", "Table III:", "Fig. 3", "Fig. 7",
            "Table IV:", "Table VIII:", "Table IX:", "Table X:",
            "Table XI:", "Table XII:", "correction latencies",
            "storage overheads",
        ):
            assert fragment in report_text, f"missing exhibit {fragment!r}"

    def test_write_report(self, tmp_path, report_text):
        target = tmp_path / "out.md"
        written = write_report(str(target))
        assert target.read_text() == written
        assert written.startswith("# SuDoku reproduction")
