"""Integration tests: whole-system flows across module boundaries."""

import random

import numpy as np
import pytest

from repro import (
    LineCodec,
    Outcome,
    STTRAMArray,
    SuDokuX,
    SuDokuZ,
    TransientFaultInjector,
)
from repro.baselines.eccline import ECCLineCache
from repro.coding.bch import BCH
from repro.coding.bitvec import random_error_vector
from repro.reliability.montecarlo import heal, run_engine_campaign
from repro.sttram.scrub import ScrubEngine


class TestInjectScrubRecover:
    """The paper's core loop: faults arrive, the scrub repairs them."""

    def test_full_interval_cycle_sudoku_z(self):
        rng = np.random.default_rng(71)
        codec = LineCodec()
        array = STTRAMArray(1024, codec.stored_bits)
        engine = SuDokuZ(array, group_size=32, codec=codec)
        local = random.Random(71)
        written = {}
        for frame in range(1024):
            written[frame] = local.getrandbits(512)
            engine.write_data(frame, written[frame])

        injector = TransientFaultInjector(codec.stored_bits, 2e-4, rng)
        survived = 0
        for _ in range(10):
            vectors = injector.error_vectors(1024)
            for frame, vector in vectors.items():
                array.inject(frame, vector)
            counts = engine.scrub_frames(sorted(vectors))
            if not counts.get("due") and not counts.get("sdc"):
                survived += 1
                assert array.faulty_lines() == []
            else:
                heal(array)
        assert survived >= 8  # occasional doubly-blocked pattern allowed

        # Data integrity after all the correction activity.
        for frame in (0, 13, 512, 1023):
            data, outcome = engine.read_data(frame)
            assert data == written[frame]
            assert outcome is Outcome.CLEAN

    def test_scrub_engine_protocol_with_real_engine(self):
        codec = LineCodec()
        array = STTRAMArray(64, codec.stored_bits)
        engine = SuDokuX(array, group_size=8, codec=codec)
        array.inject(5, 1 << 100)
        engine.begin_scrub_pass()
        report = ScrubEngine(array, engine).scrub_pass()
        assert report.outcomes["corrected_ecc1"] == 1
        assert report.outcomes["clean"] == 63
        assert not report.failed
        assert report.busy_time_s > 0


class TestHeadToHeadVsECC6:
    """SuDoku handles patterns that defeat per-line ECC-6 (the headline)."""

    # Shared small codes keep BCH construction cost out of every test.
    CODE = BCH(64, 3, m=8)

    def test_seven_fault_line(self):
        rng = random.Random(72)
        # ECC-3-protected line with 4 faults: DUE.
        ecc = ECCLineCache(num_lines=16, t=3, data_bits=64, code=self.CODE)
        ecc.write_data(0, 0xAB)
        ecc.array.inject(0, random_error_vector(ecc.array.line_bits, 4, rng))
        _, outcome = ecc.read_data(0)
        assert outcome is Outcome.DUE

        # SuDoku-X with ECC-1 only: the same burst is a RAID-4 repair.
        codec = LineCodec()
        array = STTRAMArray(64, codec.stored_bits)
        engine = SuDokuX(array, group_size=8, codec=codec)
        engine.write_data(0, 0xAB)
        array.inject(0, random_error_vector(codec.stored_bits, 7, rng))
        data, outcome = engine.read_data(0)
        assert data == 0xAB
        assert outcome is Outcome.CORRECTED_RAID4

    def test_storage_comparison(self):
        # Paper section VII-H: 43 vs 60 bits/line (~30% less).
        codec = LineCodec()
        array = STTRAMArray(512 * 512, codec.stored_bits)
        engine = SuDokuZ(array, group_size=512, codec=codec)
        sudoku_bits = engine.storage_overhead_bits_per_line
        ecc6_bits = BCH(512, 6).num_check_bits
        assert sudoku_bits < ecc6_bits
        assert 1 - sudoku_bits / ecc6_bits == pytest.approx(0.28, abs=0.03)


class TestCampaignAcrossSchemes:
    """The MC harness drives SuDoku and baselines interchangeably."""

    def test_sudoku_beats_x_at_same_ber(self):
        rng = np.random.default_rng(73)
        codec = LineCodec()

        def campaign(level_cls, group):
            array = STTRAMArray(1024, codec.stored_bits)
            engine = level_cls(array, group_size=group, codec=codec)
            return run_engine_campaign(
                engine, ber=4e-4, intervals=60, rng=rng,
                randomize_content=False,
            )

        x_result = campaign(SuDokuX, 32)
        z_result = campaign(SuDokuZ, 32)
        assert z_result.interval_failures <= x_result.interval_failures
        assert x_result.interval_failures > 0  # the BER was chosen to hurt X
