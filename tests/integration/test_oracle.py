"""Differential testing: structural oracle vs the SuDoku-Y engine.

The engine decides recoverability through real CRC/ECC/parity bit
manipulation.  This test re-derives the same verdict *structurally*
from the injected fault pattern alone (which lines have how many
faults, where, and what the parity mismatch must therefore contain) and
checks the two agree on thousands of random patterns.  Divergence in
either direction is a bug: engine-recovers-but-oracle-says-no means the
oracle missed a mechanism; oracle-recovers-but-engine-fails means the
machinery lost a case it should handle.
"""

import random

import pytest

from repro.coding.bitvec import bit_positions, popcount, random_error_vector
from repro.core.engine import SuDokuY
from repro.core.linecodec import LineCodec
from repro.sttram.array import STTRAMArray

GROUP = 8
NUM_LINES = 64
CODEC = LineCodec()
WIDTH = CODEC.stored_bits
SDR_CAP = 6


def oracle_group_recoverable(vectors: dict) -> bool:
    """Structural recoverability of one group under SuDoku-Y's rules.

    ``vectors``: frame -> injected error vector (within one group).
    Mirrors the design: single-fault lines fix locally; the parity
    mismatch is the XOR of the remaining vectors; a 2-fault line is
    resurrectable when the (recomputed) mismatch exposes at least one of
    its faults and stays within the SDR cap; one final survivor rebuilds
    via RAID-4.
    """
    multi = {
        frame: vector
        for frame, vector in vectors.items()
        if popcount(vector) >= 2
    }
    while True:
        if len(multi) <= 1:
            return True
        mismatch = 0
        for vector in multi.values():
            mismatch ^= vector
        positions = bit_positions(mismatch)
        if not positions or len(positions) > SDR_CAP:
            return False
        progressed = False
        for frame, vector in list(multi.items()):
            if popcount(vector) != 2:
                continue  # heavy lines are never resurrectable
            if any((vector >> p) & 1 for p in positions):
                del multi[frame]
                progressed = True
                break  # recompute the mismatch, as the engine does
        if not progressed:
            return False


def build_engine(seed: int):
    array = STTRAMArray(NUM_LINES, WIDTH)
    engine = SuDokuY(array, group_size=GROUP, codec=CODEC)
    rng = random.Random(seed)
    for frame in range(NUM_LINES):
        engine.write_data(frame, rng.getrandbits(512))
    return array, engine, rng


def random_pattern(rng: random.Random) -> dict:
    """A fault pattern rich in multi-bit lines (the interesting regime)."""
    pattern = {}
    num_faulty = rng.randint(1, 4)
    for frame in rng.sample(range(GROUP), num_faulty):
        weight = rng.choices([1, 2, 3, 4], weights=[2, 6, 2, 1])[0]
        pattern[frame] = random_error_vector(WIDTH, weight, rng)
    return pattern


@pytest.mark.parametrize("seed", range(6))
def test_engine_matches_oracle(seed):
    array, engine, rng = build_engine(seed)
    trials = 250
    disagreements = []
    for trial in range(trials):
        pattern = random_pattern(rng)
        for frame, vector in pattern.items():
            array.inject(frame, vector)
        counts = engine.scrub_frames(sorted(pattern))
        engine_recovered = (
            counts.get("due", 0) == 0
            and counts.get("sdc", 0) == 0
            and not array.faulty_lines()
        )
        expected = oracle_group_recoverable(pattern)
        if engine_recovered != expected:
            disagreements.append((trial, pattern, counts, expected))
        # Reset for the next trial.
        for frame in array.faulty_lines():
            array.restore(frame, array.golden(frame))
        engine.initialize_parities()
    assert not disagreements, (
        f"{len(disagreements)} divergences; first: "
        f"trial={disagreements[0][0]} counts={disagreements[0][2]} "
        f"oracle={disagreements[0][3]} pattern weights="
        f"{[popcount(v) for v in disagreements[0][1].values()]}"
    )


def test_oracle_known_cases():
    """Spot-check the oracle itself on the paper's canonical patterns."""
    a = random_error_vector(WIDTH, 2, random.Random(1))
    b = random_error_vector(WIDTH, 2, random.Random(2))
    heavy1 = random_error_vector(WIDTH, 3, random.Random(3))
    heavy2 = random_error_vector(WIDTH, 3, random.Random(4))
    assert oracle_group_recoverable({0: a})                      # RAID-4
    assert oracle_group_recoverable({0: a, 1: b})                # SDR
    assert oracle_group_recoverable({0: a, 1: heavy1})           # SDR + RAID
    assert not oracle_group_recoverable({0: heavy1, 1: heavy2})  # dual heavy
    assert not oracle_group_recoverable({0: a, 1: a})            # full overlap
    four = {
        frame: random_error_vector(WIDTH, 2, random.Random(10 + frame))
        for frame in range(4)
    }
    assert not oracle_group_recoverable(four)                    # cap: 8 > 6
