"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.level == "Z"
        assert args.intervals == 100

    def test_perf_workloads(self):
        args = build_parser().parse_args(["perf", "--workloads", "mcf", "gcc"])
        assert args.workloads == ["mcf", "gcc"]


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "SuDoku-Z FIT" in out
        assert "paper" in out

    def test_exhibits_filtered(self, capsys):
        assert main(["exhibits", "--only", "Table IX"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity to cache size" in out
        assert "Table II" not in out

    def test_exhibits_no_match(self, capsys):
        assert main(["exhibits", "--only", "zzz-no-such"]) == 1

    def test_campaign_small(self, capsys):
        code = main(
            ["campaign", "--level", "X", "--ber", "3e-4",
             "--intervals", "10", "--group-size", "8", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measured P(fail)/interval" in out
        assert "analytical model" in out

    def test_perf_small(self, capsys):
        code = main(["perf", "--workloads", "povray", "--accesses", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "povray" in out and "slowdown %" in out

    def test_design(self, capsys):
        assert main(["design", "--delta", "34"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out
        assert "cheapest:" in out

    def test_design_infeasible(self, capsys):
        assert main(["design", "--delta", "30", "--target-fit", "1e-30"]) == 1

    def test_distance(self, capsys):
        assert main(["distance", "--samples", "1000"]) == 0
        out = capsys.readouterr().out
        assert "proven detection distance" in out
        assert ">= 5" in out

    def test_report(self, tmp_path, capsys):
        target = tmp_path / "snapshot.md"
        assert main(["report", "--output", str(target)]) == 0
        text = target.read_text()
        assert "## Table II" in text
        assert "## Fig. 7" in text
        assert "FIT" in text
