"""Property-based tests on the baseline schemes' bookkeeping."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.cppc import CPPCCache
from repro.baselines.raid6 import RAID6Cache, rotate_left
from repro.coding.parity import xor_reduce


@settings(max_examples=15, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=31),
              st.integers(min_value=0, max_value=(1 << 512) - 1)),
    min_size=1, max_size=25,
))
def test_property_raid6_parities_track_any_write_sequence(writes):
    cache = RAID6Cache(num_lines=32, group_size=8)
    for frame, value in writes:
        cache.write_data(frame, value)
    width = cache.array.line_bits
    for group in range(4):
        members = cache.mapper.members(group)
        assert cache.row_parity[group] == xor_reduce(
            cache.array.read(f) for f in members
        )
        assert cache.diag_parity[group] == xor_reduce(
            rotate_left(cache.array.read(f), f - members[0], width)
            for f in members
        )


@settings(max_examples=15, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.integers(min_value=0, max_value=(1 << 512) - 1)),
    min_size=1, max_size=25,
))
def test_property_cppc_global_parity_tracks_any_write_sequence(writes):
    cache = CPPCCache(num_lines=16)
    for frame, value in writes:
        cache.write_data(frame, value)
    assert cache.global_parity == xor_reduce(
        cache.array.read(f) for f in range(16)
    )


class TestRecoveryAfterWrites:
    """Parity must still recover lines after arbitrary write traffic."""

    def test_raid6_recovery_post_writes(self):
        rng = random.Random(12)
        cache = RAID6Cache(num_lines=32, group_size=8)
        written = {}
        for _ in range(100):
            frame = rng.randrange(32)
            written[frame] = rng.getrandbits(512)
            cache.write_data(frame, written[frame])
        target = rng.choice(sorted(written))
        from repro.coding.bitvec import random_error_vector

        cache.array.inject(target, random_error_vector(cache.array.line_bits, 5, rng))
        data, outcome = cache.read_data(target)
        assert data == written[target]
        assert outcome.value == "corrected_raid4"

    def test_cppc_recovery_post_writes(self):
        rng = random.Random(13)
        cache = CPPCCache(num_lines=16)
        written = {}
        for _ in range(60):
            frame = rng.randrange(16)
            written[frame] = rng.getrandbits(512)
            cache.write_data(frame, written[frame])
        target = rng.choice(sorted(written))
        from repro.coding.bitvec import random_error_vector

        cache.array.inject(target, random_error_vector(cache.array.line_bits, 3, rng))
        data, outcome = cache.read_data(target)
        assert data == written[target]
        assert outcome.value == "corrected_raid4"
