"""Unit tests for the RAID-6 and 2DP baselines."""

import random

import pytest

from repro.baselines.raid6 import RAID6Cache, rotate_left, rotate_right
from repro.baselines.twodp import TwoDPCache
from repro.coding.bitvec import random_error_vector
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray

WIDTH = 553


class TestRotation:
    def test_left_right_inverse(self):
        value = 0xDEADBEEF
        for shift in (0, 1, 13, 31, 32):
            assert rotate_right(rotate_left(value, shift, 32), shift, 32) == value

    def test_wraparound(self):
        assert rotate_left(0b1000, 1, 4) == 0b0001


@pytest.fixture
def raid6():
    rng = random.Random(61)
    cache = RAID6Cache(num_lines=64, group_size=16)
    for frame in range(64):
        cache.write_data(frame, rng.getrandbits(512))
    return rng, cache


class TestRAID6:
    def test_parities_track_writes(self, raid6):
        rng, cache = raid6
        from repro.coding.parity import xor_reduce

        for _ in range(50):
            cache.write_data(rng.randrange(64), rng.getrandbits(512))
        for group in range(4):
            members = cache.mapper.members(group)
            assert cache.row_parity[group] == xor_reduce(
                cache.array.read(f) for f in members
            )

    def test_single_bit_fault_ecc1(self, raid6):
        rng, cache = raid6
        cache.array.inject(3, 1 << 50)
        _, outcome = cache.read_data(3)
        assert outcome is Outcome.CORRECTED_ECC1

    def test_one_erasure_row_parity(self, raid6):
        rng, cache = raid6
        cache.array.inject(5, random_error_vector(WIDTH, 4, rng))
        _, outcome = cache.read_data(5)
        assert outcome is Outcome.CORRECTED_RAID4
        assert cache.array.is_clean(5)

    def test_two_erasures_recovered(self, raid6):
        rng, cache = raid6
        recovered = 0
        trials = 12
        for trial in range(trials):
            a, b = rng.sample(range(16), 2)
            cache.array.inject(a, random_error_vector(WIDTH, 2, rng))
            cache.array.inject(b, random_error_vector(WIDTH, 3, rng))
            counts = cache.scrub_frames([a, b])
            if counts.get("corrected_raid4", 0) == 2:
                recovered += 1
            for frame in cache.array.faulty_lines():
                cache.array.restore(frame, cache.array.golden(frame))
        # Cycle ambiguity can occasionally defeat the solver (gcd > 8
        # strides); the overwhelming majority must recover.
        assert recovered >= trials - 2

    def test_three_erasures_fail(self, raid6):
        rng, cache = raid6
        for frame in (1, 2, 3):
            cache.array.inject(frame, random_error_vector(WIDTH, 2, rng))
        counts = cache.scrub_frames([1, 2, 3])
        assert counts.get("due") == 3

    def test_overhead(self, raid6):
        _, cache = raid6
        assert cache.storage_overhead_bits_per_line == pytest.approx(
            41 + 2 * WIDTH / 16
        )


class TestTwoDP:
    def test_behaves_like_single_hash_sudoku_y(self):
        rng = random.Random(62)
        codec = LineCodec()
        array = STTRAMArray(256, codec.stored_bits)
        cache = TwoDPCache(array, group_size=16, codec=codec)
        for frame in range(256):
            cache.write_data(frame, rng.getrandbits(512))
        # Dual 2-bit faults: recoverable (the SDR-like column repair).
        array.inject(1, random_error_vector(WIDTH, 2, rng))
        array.inject(2, random_error_vector(WIDTH, 2, rng))
        counts = cache.scrub_frames([1, 2])
        assert "due" not in counts
        # Dual 3-bit faults: the single-region weakness the paper cites.
        array.inject(17, random_error_vector(WIDTH, 3, rng))
        array.inject(18, random_error_vector(WIDTH, 3, rng))
        counts = cache.scrub_frames([17, 18])
        assert counts.get("due") == 2

    def test_nameplate(self):
        assert TwoDPCache.level == "2DP"
        assert "2DP" in TwoDPCache.name
