"""Unit tests for the uniform per-line ECC-t baseline."""

import random

import pytest

from repro.baselines.eccline import ECCLineCache
from repro.coding.bch import BCH
from repro.coding.bitvec import random_error_vector
from repro.core.outcomes import Outcome

#: Shared small code so tests avoid rebuilding BCH generator polynomials.
CODE_T3 = BCH(64, 3, m=8)


def make_cache(num_lines=16, code=CODE_T3):
    return ECCLineCache(num_lines=num_lines, t=code.t, data_bits=code.k, code=code)


class TestECCLineCache:
    def test_clean_roundtrip(self):
        cache = make_cache()
        cache.write_data(3, 0xDEAD)
        data, outcome = cache.read_data(3)
        assert data == 0xDEAD and outcome is Outcome.CLEAN

    def test_corrects_up_to_t(self):
        rng = random.Random(1)
        cache = make_cache()
        cache.write_data(0, 0x1234)
        cache.array.inject(0, random_error_vector(cache.array.line_bits, 3, rng))
        data, outcome = cache.read_data(0)
        assert data == 0x1234 and outcome is Outcome.CORRECTED_ECC1
        assert cache.array.is_clean(0)

    def test_beyond_t_is_due(self):
        rng = random.Random(2)
        cache = make_cache()
        cache.write_data(1, 0x5678)
        cache.array.inject(1, random_error_vector(cache.array.line_bits, 5, rng))
        _, outcome = cache.read_data(1)
        assert outcome in (Outcome.DUE, Outcome.SDC)

    def test_scrub_counts(self):
        rng = random.Random(3)
        cache = make_cache()
        cache.array.inject(2, random_error_vector(cache.array.line_bits, 1, rng))
        counts = cache.scrub_all()
        assert counts.get("corrected_ecc1") == 1
        assert counts.get("clean") == 15

    def test_paper_overhead(self):
        # The paper-scale instance costs exactly 60 bits/line; checked via
        # code parameters to avoid constructing the big code repeatedly.
        assert BCH(512, 6).num_check_bits == 60

    def test_mismatched_code_rejected(self):
        with pytest.raises(ValueError):
            ECCLineCache(num_lines=4, t=3, data_bits=128, code=CODE_T3)
