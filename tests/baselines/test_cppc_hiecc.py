"""Unit tests for the CPPC and Hi-ECC baselines."""

import random

import pytest

from repro.baselines.cppc import CPPCCache
from repro.baselines.hiecc import HiECCCache
from repro.coding.bch import BCH
from repro.coding.bitvec import random_error_vector
from repro.core.outcomes import Outcome

#: Small shared region code for Hi-ECC tests (256-bit regions).
REGION_CODE = BCH(256, 3, m=9)


class TestCPPC:
    def test_single_faulty_line_recovered_globally(self):
        rng = random.Random(1)
        cache = CPPCCache(num_lines=32)
        cache.write_data(5, 0xCAFE)
        cache.array.inject(5, random_error_vector(cache.array.line_bits, 6, rng))
        data, outcome = cache.read_data(5)
        assert data == 0xCAFE and outcome is Outcome.CORRECTED_RAID4
        assert cache.array.is_clean(5)

    def test_two_faulty_lines_fail(self):
        rng = random.Random(2)
        cache = CPPCCache(num_lines=32)
        cache.array.inject(1, random_error_vector(cache.array.line_bits, 1, rng))
        cache.array.inject(2, random_error_vector(cache.array.line_bits, 2, rng))
        counts = cache.scrub_all()
        assert counts.get("due") == 2

    def test_global_parity_tracks_writes(self):
        rng = random.Random(3)
        cache = CPPCCache(num_lines=16)
        from repro.coding.parity import xor_reduce

        for _ in range(50):
            cache.write_data(rng.randrange(16), rng.getrandbits(512))
        assert cache.global_parity == xor_reduce(
            cache.array.read(i) for i in range(16)
        )

    def test_overhead(self):
        cache = CPPCCache(num_lines=1 << 10)
        assert cache.storage_overhead_bits_per_line == pytest.approx(31.53, abs=0.05)

    def test_odd_data_bits_rejected(self):
        with pytest.raises(ValueError):
            CPPCCache(num_lines=4, data_bits=100)


class TestHiECC:
    def make(self, num_regions=4):
        return HiECCCache(
            num_regions=num_regions, region_bytes=32, t=REGION_CODE.t,
            code=REGION_CODE,
        )

    def test_region_roundtrip(self):
        cache = self.make()
        cache.write_data(0, 0xABCDEF)
        data, outcome = cache.read_data(0)
        assert data == 0xABCDEF and outcome is Outcome.CLEAN

    def test_line_slice_update(self):
        cache = self.make()
        cache.write_line(1, 2, 0x77, line_bits=64)
        data, _ = cache.read_data(1)
        assert (data >> 128) & ((1 << 64) - 1) == 0x77

    def test_corrects_within_budget(self):
        rng = random.Random(4)
        cache = self.make()
        cache.write_data(2, rng.getrandbits(256))
        cache.array.inject(2, random_error_vector(cache.array.line_bits, 3, rng))
        _, outcome = cache.read_data(2)
        assert outcome is Outcome.CORRECTED_ECC1
        assert cache.array.is_clean(2)

    def test_fails_beyond_budget(self):
        rng = random.Random(5)
        cache = self.make()
        cache.array.inject(3, random_error_vector(cache.array.line_bits, 5, rng))
        _, outcome = cache.read_data(3)
        assert outcome in (Outcome.DUE, Outcome.SDC)

    def test_paper_scale_overhead(self):
        # ECC-6 over 1 KB amortises to ~5.25 bits per 64 B line (~1%).
        code = BCH(8192, 6)
        assert code.num_check_bits / 16 == pytest.approx(5.25)

    def test_oversized_line_rejected(self):
        cache = self.make()
        with pytest.raises(ValueError):
            cache.write_line(0, 0, 1 << 64, line_bits=64)
