"""Tests for the disturb-fault channel (section VI)."""

import random

import numpy as np
import pytest

from repro.core.engine import SuDokuZ
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray
from repro.sttram.disturb import DisturbChannel


def make_channel(probability, seed=3, burst_length=1, neighbours=1):
    codec = LineCodec()
    array = STTRAMArray(256, codec.stored_bits)
    engine = SuDokuZ(array, group_size=16, codec=codec)
    rng = random.Random(seed)
    for frame in range(256):
        engine.write_data(frame, rng.getrandbits(512))
    return DisturbChannel(
        engine, probability, neighbours=neighbours,
        burst_length=burst_length, rng=np.random.default_rng(seed),
    )


class TestDisturbChannel:
    def test_zero_probability_is_transparent(self):
        channel = make_channel(0.0)
        channel.write_data(10, 0xFACE)
        data, outcome = channel.read_data(10)
        assert data == 0xFACE and outcome is Outcome.CLEAN
        assert channel.disturb_events == 0
        assert channel.array.faulty_lines() == []

    def test_disturbs_land_on_neighbours_only(self):
        channel = make_channel(1.0)
        channel.write_data(100, 0x1)
        faulty = set(channel.array.faulty_lines())
        assert faulty <= {99, 101}
        assert channel.disturb_events == 2

    def test_edge_frames_respect_bounds(self):
        channel = make_channel(1.0)
        channel.write_data(0, 0x2)   # only frame 1 exists as neighbour
        assert set(channel.array.faulty_lines()) <= {1}

    def test_burst_shape(self):
        channel = make_channel(1.0, burst_length=4)
        channel.write_data(50, 0x3)
        for frame in channel.array.faulty_lines():
            vector = channel.array.error_vector(frame)
            positions = [p for p in range(channel.array.line_bits)
                         if (vector >> p) & 1]
            assert positions == list(range(positions[0], positions[0] + 4))

    def test_event_rate(self):
        channel = make_channel(0.25, seed=7)
        rng = random.Random(7)
        accesses = 400
        for index in range(accesses):
            if index % 20 == 0:
                channel.scrub_all()  # keep faults from accumulating
            channel.write_data(rng.randrange(1, 255), rng.getrandbits(512))
        expected = accesses * 2 * 0.25
        assert channel.disturb_events == pytest.approx(expected, rel=0.2)

    def test_scrub_cleans_disturbs_without_data_loss(self):
        channel = make_channel(1.0, burst_length=2, seed=9)
        rng = random.Random(9)
        payloads = {f: channel.engine.array.golden(f) for f in range(256)}
        for _ in range(30):
            frame = rng.randrange(1, 255)
            channel.write_data(frame, rng.getrandbits(512))
            counts = channel.scrub_all()
            assert counts.get("sdc", 0) == 0
        # Hammering adjacent frames stresses one Hash-1 group; the dual
        # hash keeps everything recoverable at this rate.
        assert channel.array.faulty_lines() == []
        del payloads  # golden copies checked implicitly via audit

    def test_validation(self):
        with pytest.raises(ValueError):
            make_channel(1.5)
        with pytest.raises(ValueError):
            make_channel(0.5, neighbours=0)
        with pytest.raises(ValueError):
            make_channel(0.5, burst_length=0)
