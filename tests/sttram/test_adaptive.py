"""Tests for the adaptive scrub controller."""

import pytest

from repro.reliability.binomial import binomial_tail
from repro.reliability.sudokumodel import SuDokuReliabilityModel
from repro.sttram.adaptive import (
    AdaptiveScrubController,
    ber_from_multi_rate,
)
from repro.sttram.variation import effective_ber


class TestBERInversion:
    def test_roundtrip(self):
        for ber in (1e-6, 5.3e-6, 1e-4):
            expected_multi = (1 << 20) * binomial_tail(553, 2, ber)
            recovered = ber_from_multi_rate(expected_multi, 1 << 20, 553)
            assert recovered == pytest.approx(ber, rel=1e-3)

    def test_edges(self):
        assert ber_from_multi_rate(0.0, 1 << 20, 553) == 0.0
        assert ber_from_multi_rate(2 << 20, 1 << 20, 553) == 1.0


class TestController:
    def make(self, **kwargs):
        return AdaptiveScrubController(
            target_fit=1.0, num_lines=1 << 20, **kwargs
        )

    def observed_multi(self, delta: float, interval_s: float) -> float:
        ber = effective_ber(delta, 0.10 * delta, interval_s)
        return (1 << 20) * binomial_tail(553, 2, ber)

    def test_healthy_device_relaxes_interval(self):
        controller = self.make()
        # Delta 35 meets 1 FIT even at 40+ ms; the controller should pick
        # something at or beyond the paper's 20 ms default.
        decision = controller.observe(self.observed_multi(35.0, controller.interval_s))
        assert decision.chosen_interval_s >= 0.020
        assert decision.predicted_fit <= 1.0

    def test_degraded_device_tightens_interval(self):
        controller = self.make()
        healthy = controller.observe(
            self.observed_multi(35.0, controller.interval_s)
        ).chosen_interval_s
        # Feed a few degraded observations (delta 32: much higher BER).
        for _ in range(6):
            decision = controller.observe(
                self.observed_multi(32.0, controller.interval_s)
            )
        assert decision.chosen_interval_s < healthy
        assert decision.predicted_fit <= 1.0 or (
            decision.chosen_interval_s == controller.min_interval_s
        )

    def test_recovers_after_degradation(self):
        controller = self.make(ewma=1.0)  # no smoothing: fast convergence
        controller.observe(self.observed_multi(33.0, controller.interval_s))
        tight = controller.interval_s
        for _ in range(3):
            controller.observe(self.observed_multi(35.0, controller.interval_s))
        assert controller.interval_s > tight

    def test_bounds_respected(self):
        controller = self.make(min_interval_s=0.010, max_interval_s=0.080)
        for _ in range(4):
            decision = controller.observe(
                self.observed_multi(30.0, controller.interval_s)
            )
        assert 0.010 <= decision.chosen_interval_s <= 0.080

    def test_bandwidth_tracks_interval(self):
        controller = self.make()
        controller.interval_s = 0.020
        base = controller.bandwidth_fraction()
        controller.interval_s = 0.040
        assert controller.bandwidth_fraction() == pytest.approx(base / 2)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            self.make().observe(-1.0)

    def test_history_recorded(self):
        controller = self.make()
        controller.observe(4.0)
        controller.observe(5.0)
        assert len(controller.history) == 2

    def test_stability_under_self_actuation(self):
        # Feeding observations consistent with a fixed physical hazard
        # must converge: the chosen interval stops changing.
        controller = self.make(ewma=1.0)
        intervals = []
        for _ in range(6):
            observed = self.observed_multi(34.0, controller.interval_s)
            intervals.append(controller.observe(observed).chosen_interval_s)
        assert intervals[-1] == intervals[-2]
        # And the settled point genuinely meets the target.
        ber = effective_ber(34.0, 3.4, intervals[-1])
        model = SuDokuReliabilityModel(ber=ber, interval_s=intervals[-1])
        assert model.fit_z() <= 1.0
