"""Tests for the static weak-cell fault substrate."""

import numpy as np
import pytest

from repro.sttram.weakcells import HeterogeneousFaultInjector, WeakCellMap


@pytest.fixture(scope="module")
def weak_map():
    return WeakCellMap(1024, 553, rng=np.random.default_rng(5))


class TestWeakCellMap:
    def test_mass_split_preserves_total_ber(self):
        # Materialised tail + uniform background = variation-averaged BER
        # *in expectation*: a single small array genuinely varies (one
        # ultra-weak cell moves the sum), so average over several maps.
        rng = np.random.default_rng(55)
        maps = [WeakCellMap(1024, 553, rng=rng) for _ in range(8)]
        mean_flips = np.mean([m.expected_flips_per_interval() for m in maps])
        iid_expectation = maps[0].total_ber * 1024 * 553
        assert mean_flips == pytest.approx(iid_expectation, rel=0.2)

    def test_background_below_total(self, weak_map):
        assert 0.0 <= weak_map.background_ber < weak_map.total_ber

    def test_weak_cells_above_floor(self, weak_map):
        assert weak_map.cells
        for cell in weak_map.cells:
            assert cell.flip_probability >= weak_map.floor * 0.999
            assert 0 <= cell.line_index < weak_map.num_lines
            assert 0 <= cell.bit_position < weak_map.line_bits

    def test_hot_lines_exist_at_paper_variation(self, weak_map):
        # 10% sigma puts ~0.5% of cells in the materialised tail, so a
        # 1024-line array has many lines with 2+ static weak cells --
        # the repeat offenders the iid model cannot represent.
        hot = weak_map.lines_with_multiple_weak_cells()
        assert len(hot) > 10
        assert all(count >= 2 for count in hot.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            WeakCellMap(0, 553)
        with pytest.raises(ValueError):
            WeakCellMap(16, 553, floor=0.0)


class TestHeterogeneousInjector:
    def test_rate_matches_expectation(self, weak_map):
        injector = HeterogeneousFaultInjector(
            weak_map, np.random.default_rng(6)
        )
        intervals = 300
        total = 0
        for _ in range(intervals):
            vectors = injector.error_vectors(weak_map.num_lines)
            total += sum(bin(v).count("1") for v in vectors.values())
        assert total / intervals == pytest.approx(
            weak_map.expected_flips_per_interval(), rel=0.2
        )

    def test_weak_cells_are_repeat_offenders(self, weak_map):
        injector = HeterogeneousFaultInjector(
            weak_map, np.random.default_rng(7)
        )
        from collections import Counter

        hits = Counter()
        for _ in range(400):
            for line in injector.error_vectors(weak_map.num_lines):
                hits[line] += 1
        # Concentration: the busiest line faults many times, far beyond
        # anything an iid process at this average BER would produce.
        assert hits.most_common(1)[0][1] >= 5

    def test_geometry_mismatch_rejected(self, weak_map):
        injector = HeterogeneousFaultInjector(weak_map)
        with pytest.raises(ValueError):
            injector.error_vectors(512)
