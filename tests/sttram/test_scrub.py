"""Unit tests for repro.sttram.scrub."""

from collections import Counter

import pytest

from repro.sttram.array import STTRAMArray
from repro.sttram.scrub import ScrubEngine, ScrubReport, ScrubTiming


class _FakeScrubber:
    """LineScrubber test double: returns scripted outcomes."""

    def __init__(self, script):
        self.script = dict(script)
        self.visited = []

    def scrub_line(self, index):
        self.visited.append(index)
        return self.script.get(index, "clean")


class TestScrubReport:
    def test_merge(self):
        a = ScrubReport(lines_scrubbed=4, outcomes=Counter(clean=3, due=1), busy_time_s=1.0)
        b = ScrubReport(lines_scrubbed=2, outcomes=Counter(clean=1, sdc=1), busy_time_s=0.5)
        a.merge(b)
        assert a.lines_scrubbed == 6
        assert a.outcomes == Counter(clean=4, due=1, sdc=1)
        assert a.busy_time_s == pytest.approx(1.5)

    def test_failure_properties(self):
        report = ScrubReport(outcomes=Counter(due=2))
        assert report.uncorrectable == 2
        assert report.silent_corruptions == 0
        assert report.failed
        assert not ScrubReport().failed

    def test_metadata_due_counts_as_uncorrectable(self):
        # Regression: uncorrectable/failed only read outcomes["due"], so a
        # pass whose only failures were metadata-caused reported success.
        report = ScrubReport(outcomes=Counter(metadata_due=3))
        assert report.uncorrectable == 3
        assert report.failures == 3
        assert report.failed

    def test_mixed_failure_taxonomy(self):
        report = ScrubReport(
            outcomes=Counter(
                clean=10, corrected_ecc1=2, due=1, metadata_due=2, sdc=1
            )
        )
        assert report.uncorrectable == 3  # due + metadata_due
        assert report.silent_corruptions == 1
        assert report.failures == 4  # due + metadata_due + sdc
        assert report.failed

    def test_unknown_labels_are_not_failures(self):
        report = ScrubReport(outcomes=Counter(weird_label=5, clean=1))
        assert report.uncorrectable == 0
        assert report.failures == 0
        assert not report.failed

    def test_merge_preserves_failure_accounting(self):
        a = ScrubReport(lines_scrubbed=4, outcomes=Counter(clean=4))
        b = ScrubReport(lines_scrubbed=4, outcomes=Counter(metadata_due=1, clean=3))
        assert not a.failed
        a.merge(b)
        assert a.failed
        assert a.uncorrectable == 1

    def test_failed_agrees_with_montecarlo_predicate(self):
        from repro.core.outcomes import is_failure_label

        for outcomes in (
            Counter(clean=5),
            Counter(due=1),
            Counter(metadata_due=1),
            Counter(sdc=1),
            Counter(corrected_sdr=4, corrected_raid4=1),
            Counter(clean=2, due=1, metadata_due=1, sdc=1),
        ):
            report = ScrubReport(outcomes=outcomes)
            predicate = any(
                count and is_failure_label(label)
                for label, count in outcomes.items()
            )
            assert report.failed == predicate


class TestScrubTiming:
    def test_pass_time(self):
        timing = ScrubTiming(line_read_s=10e-9, line_write_s=20e-9)
        assert timing.pass_time(100, 3) == pytest.approx(100 * 10e-9 + 3 * 20e-9)


class TestScrubEngine:
    def test_full_pass_visits_every_line(self):
        array = STTRAMArray(16, 8)
        scrubber = _FakeScrubber({})
        engine = ScrubEngine(array, scrubber)
        report = engine.scrub_pass()
        assert scrubber.visited == list(range(16))
        assert report.lines_scrubbed == 16
        assert report.outcomes["clean"] == 16

    def test_outcome_accounting(self):
        array = STTRAMArray(8, 8)
        scrubber = _FakeScrubber({1: "corrected_ecc1", 5: "due"})
        report = ScrubEngine(array, scrubber).scrub_pass()
        assert report.outcomes == Counter(
            clean=6, corrected_ecc1=1, due=1
        )
        assert report.failed

    def test_busy_time_includes_corrections(self):
        array = STTRAMArray(4, 8)
        timing = ScrubTiming(line_read_s=1e-9, line_write_s=2e-9)
        clean_report = ScrubEngine(array, _FakeScrubber({}), timing=timing).scrub_pass()
        busy_report = ScrubEngine(
            array, _FakeScrubber({0: "corrected_ecc1"}), timing=timing
        ).scrub_pass()
        assert busy_report.busy_time_s > clean_report.busy_time_s

    def test_bandwidth_overhead_paper_regime(self):
        # A 64 MB cache scrubbed over 20 ms keeps raw read bandwidth
        # overhead around half the interval at one line at a time -- the
        # reason scrubbing must be banked/opportunistic (footnote 1).
        array = STTRAMArray(1 << 10, 8)
        engine = ScrubEngine(array, _FakeScrubber({}), interval_s=0.020)
        overhead = engine.bandwidth_overhead()
        assert overhead == pytest.approx(1024 * 9e-9 / 0.020)

    def test_interval_validation(self):
        array = STTRAMArray(4, 8)
        with pytest.raises(ValueError):
            ScrubEngine(array, _FakeScrubber({}), interval_s=0.0)


class _FakeFrameScrubber(_FakeScrubber):
    """Scheme double exposing the narrowed per-frame entry point."""

    def __init__(self, script):
        super().__init__(script)
        self.bulk_cleaned = 0

    def scrub_frames(self, frames):
        return [self.scrub_line(index) for index in frames]

    def account_bulk_clean(self, count):
        self.bulk_cleaned += count
        return count


class TestSparseScrubPass:
    @staticmethod
    def _dirty_array():
        array = STTRAMArray(16, 8)
        array.inject(3, 0x01)
        array.inject(11, 0x02)
        return array

    def test_sparse_visits_only_dirty_frames(self):
        array = self._dirty_array()
        scrubber = _FakeFrameScrubber({3: "corrected_ecc1", 11: "due"})
        report = ScrubEngine(array, scrubber).scrub_pass(sparse=True)
        assert scrubber.visited == [3, 11]
        assert scrubber.bulk_cleaned == 14
        assert report.outcomes == Counter(clean=14, corrected_ecc1=1, due=1)
        assert report.lines_scrubbed == 16

    def test_sparse_matches_dense_counters(self):
        script = {3: "corrected_ecc1", 11: "due"}
        dense = ScrubEngine(
            self._dirty_array(), _FakeFrameScrubber(script)
        ).scrub_pass()
        sparse = ScrubEngine(
            self._dirty_array(), _FakeFrameScrubber(script)
        ).scrub_pass(sparse=True)
        assert sparse.outcomes == dense.outcomes
        assert sparse.lines_scrubbed == dense.lines_scrubbed
        assert sparse.busy_time_s == pytest.approx(dense.busy_time_s)

    def test_sparse_falls_back_to_scrub_line(self):
        # Plain LineScrubber schemes (no scrub_frames) still work sparse.
        array = self._dirty_array()
        scrubber = _FakeScrubber({3: "corrected_ecc1", 11: "due"})
        report = ScrubEngine(array, scrubber).scrub_pass(sparse=True)
        assert scrubber.visited == [3, 11]
        assert report.outcomes == Counter(clean=14, corrected_ecc1=1, due=1)

    def test_sparse_clean_array_is_all_bulk(self):
        array = STTRAMArray(16, 8)
        scrubber = _FakeFrameScrubber({})
        report = ScrubEngine(array, scrubber).scrub_pass(sparse=True)
        assert scrubber.visited == []
        assert report.outcomes == Counter(clean=16)

    def test_sparse_timing_reflects_full_array(self):
        # The hardware still reads every line; only the simulator skips
        # the redundant decodes, so busy time must not shrink.
        timing = ScrubTiming(line_read_s=1e-9, line_write_s=2e-9)
        array = self._dirty_array()
        report = ScrubEngine(
            array, _FakeFrameScrubber({3: "corrected_ecc1"}), timing=timing
        ).scrub_pass(sparse=True)
        assert report.busy_time_s == pytest.approx(16 * 1e-9 + 1 * 2e-9)
