"""Unit tests for repro.sttram.scrub."""

from collections import Counter

import pytest

from repro.sttram.array import STTRAMArray
from repro.sttram.scrub import ScrubEngine, ScrubReport, ScrubTiming


class _FakeScrubber:
    """LineScrubber test double: returns scripted outcomes."""

    def __init__(self, script):
        self.script = dict(script)
        self.visited = []

    def scrub_line(self, index):
        self.visited.append(index)
        return self.script.get(index, "clean")


class TestScrubReport:
    def test_merge(self):
        a = ScrubReport(lines_scrubbed=4, outcomes=Counter(clean=3, due=1), busy_time_s=1.0)
        b = ScrubReport(lines_scrubbed=2, outcomes=Counter(clean=1, sdc=1), busy_time_s=0.5)
        a.merge(b)
        assert a.lines_scrubbed == 6
        assert a.outcomes == Counter(clean=4, due=1, sdc=1)
        assert a.busy_time_s == pytest.approx(1.5)

    def test_failure_properties(self):
        report = ScrubReport(outcomes=Counter(due=2))
        assert report.uncorrectable == 2
        assert report.silent_corruptions == 0
        assert report.failed
        assert not ScrubReport().failed


class TestScrubTiming:
    def test_pass_time(self):
        timing = ScrubTiming(line_read_s=10e-9, line_write_s=20e-9)
        assert timing.pass_time(100, 3) == pytest.approx(100 * 10e-9 + 3 * 20e-9)


class TestScrubEngine:
    def test_full_pass_visits_every_line(self):
        array = STTRAMArray(16, 8)
        scrubber = _FakeScrubber({})
        engine = ScrubEngine(array, scrubber)
        report = engine.scrub_pass()
        assert scrubber.visited == list(range(16))
        assert report.lines_scrubbed == 16
        assert report.outcomes["clean"] == 16

    def test_outcome_accounting(self):
        array = STTRAMArray(8, 8)
        scrubber = _FakeScrubber({1: "corrected_ecc1", 5: "due"})
        report = ScrubEngine(array, scrubber).scrub_pass()
        assert report.outcomes == Counter(
            clean=6, corrected_ecc1=1, due=1
        )
        assert report.failed

    def test_busy_time_includes_corrections(self):
        array = STTRAMArray(4, 8)
        timing = ScrubTiming(line_read_s=1e-9, line_write_s=2e-9)
        clean_report = ScrubEngine(array, _FakeScrubber({}), timing=timing).scrub_pass()
        busy_report = ScrubEngine(
            array, _FakeScrubber({0: "corrected_ecc1"}), timing=timing
        ).scrub_pass()
        assert busy_report.busy_time_s > clean_report.busy_time_s

    def test_bandwidth_overhead_paper_regime(self):
        # A 64 MB cache scrubbed over 20 ms keeps raw read bandwidth
        # overhead around half the interval at one line at a time -- the
        # reason scrubbing must be banked/opportunistic (footnote 1).
        array = STTRAMArray(1 << 10, 8)
        engine = ScrubEngine(array, _FakeScrubber({}), interval_s=0.020)
        overhead = engine.bandwidth_overhead()
        assert overhead == pytest.approx(1024 * 9e-9 / 0.020)

    def test_interval_validation(self):
        array = STTRAMArray(4, 8)
        with pytest.raises(ValueError):
            ScrubEngine(array, _FakeScrubber({}), interval_s=0.0)
