"""Unit tests for repro.sttram.faults."""

import numpy as np
import pytest

from repro.coding.bitvec import popcount
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import (
    FaultEvent,
    FaultKind,
    PermanentFaultMap,
    TransientFaultInjector,
    burst_error_vector,
    sample_fault_count,
)


class TestSampleFaultCount:
    def test_statistics(self):
        rng = np.random.default_rng(1)
        counts = [sample_fault_count(10_000, 0.01, rng) for _ in range(500)]
        assert np.mean(counts) == pytest.approx(100, rel=0.1)

    def test_zero_rate(self):
        assert sample_fault_count(1000, 0.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_fault_count(-1, 0.5)
        with pytest.raises(ValueError):
            sample_fault_count(10, 1.5)


class TestTransientFaultInjector:
    def test_error_vector_width(self):
        injector = TransientFaultInjector(553, 0.01, np.random.default_rng(2))
        for _ in range(50):
            vector = injector.error_vector()
            assert vector >> 553 == 0

    def test_error_vector_rate(self):
        injector = TransientFaultInjector(1000, 0.02, np.random.default_rng(3))
        total = sum(popcount(injector.error_vector()) for _ in range(500))
        assert total == pytest.approx(500 * 1000 * 0.02, rel=0.1)

    def test_error_vectors_bulk_matches_rate(self):
        injector = TransientFaultInjector(553, 1e-3, np.random.default_rng(4))
        vectors = injector.error_vectors(10_000)
        total = sum(popcount(v) for v in vectors.values())
        assert total == pytest.approx(10_000 * 553 * 1e-3, rel=0.1)
        assert all(v != 0 for v in vectors.values())

    def test_inject_interval_consistency(self):
        array = STTRAMArray(256, 553)
        injector = TransientFaultInjector(553, 5e-3, np.random.default_rng(5))
        events = injector.inject_interval(array)
        assert len(events) == array.total_faulty_bits()
        assert all(isinstance(e, FaultEvent) for e in events)
        assert all(e.kind is FaultKind.TRANSIENT for e in events)

    def test_zero_ber_injects_nothing(self):
        array = STTRAMArray(16, 64)
        injector = TransientFaultInjector(64, 0.0, np.random.default_rng(6))
        assert injector.inject_interval(array) == []
        assert array.faulty_lines() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TransientFaultInjector(0, 0.5)
        with pytest.raises(ValueError):
            TransientFaultInjector(10, -0.1)


class TestErrorVectorAt:
    """Injector-boundary validation of explicit fault positions."""

    def test_places_requested_bits(self):
        injector = TransientFaultInjector(line_bits=16, ber=0.0)
        assert injector.error_vector_at([0, 5, 15]) == (1 | 1 << 5 | 1 << 15)

    def test_out_of_range_position_raises(self):
        injector = TransientFaultInjector(line_bits=16, ber=0.0)
        with pytest.raises(ValueError, match="out of range for a 16-bit"):
            injector.error_vector_at([16])

    def test_negative_position_raises(self):
        injector = TransientFaultInjector(line_bits=16, ber=0.0)
        with pytest.raises(ValueError):
            injector.error_vector_at([-1])

    def test_sampled_vectors_stay_in_width(self):
        injector = TransientFaultInjector(
            line_bits=32, ber=0.3, rng=np.random.default_rng(5)
        )
        for _ in range(100):
            assert injector.error_vector() >> 32 == 0


class TestPermanentFaultMap:
    def test_stuck_at_one(self):
        fault_map = PermanentFaultMap(line_bits=8)
        fault_map.add(0, 3, FaultKind.STUCK_AT_ONE)
        assert fault_map.apply(0, 0b0000_0000) == 0b0000_1000
        assert fault_map.apply(0, 0b0000_1000) == 0b0000_1000

    def test_stuck_at_zero(self):
        fault_map = PermanentFaultMap(line_bits=8)
        fault_map.add(1, 0, FaultKind.STUCK_AT_ZERO)
        assert fault_map.apply(1, 0b0000_0001) == 0
        assert fault_map.apply(0, 0b0000_0001) == 0b0000_0001  # other line unaffected

    def test_error_vector_depends_on_written_value(self):
        fault_map = PermanentFaultMap(line_bits=8)
        fault_map.add(0, 2, FaultKind.STUCK_AT_ONE)
        assert fault_map.error_vector(0, 0b0000_0000) == 0b0000_0100
        assert fault_map.error_vector(0, 0b0000_0100) == 0

    def test_rejects_transient_kind(self):
        fault_map = PermanentFaultMap(line_bits=8)
        with pytest.raises(ValueError):
            fault_map.add(0, 0, FaultKind.TRANSIENT)

    def test_rejects_out_of_range(self):
        fault_map = PermanentFaultMap(line_bits=8)
        with pytest.raises(ValueError):
            fault_map.add(0, 8, FaultKind.STUCK_AT_ONE)

    def test_random_density(self):
        fault_map = PermanentFaultMap.random(
            1000, 553, fault_ppm=1000.0, rng=np.random.default_rng(7)
        )
        total = sum(popcount(m) for m in fault_map.stuck_at_one.values())
        total += sum(popcount(m) for m in fault_map.stuck_at_zero.values())
        expected = 1000 * 553 * 1000e-6
        assert total == pytest.approx(expected, rel=0.25)


class TestBurstErrors:
    def test_shape(self):
        vector = burst_error_vector(64, start=8, length=4)
        assert vector == 0b1111 << 8

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_error_vector(64, start=62, length=4)
        with pytest.raises(ValueError):
            burst_error_vector(64, start=-1, length=2)
