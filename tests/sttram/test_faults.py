"""Unit tests for repro.sttram.faults."""

import numpy as np
import pytest

from repro.coding.bitvec import popcount
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import (
    BurstFaultInjector,
    FaultEvent,
    FaultKind,
    PermanentFaultMap,
    TransientFaultInjector,
    burst_error_vector,
    burst_line_masks,
    sample_distinct,
    sample_fault_count,
)


class TestSampleFaultCount:
    def test_statistics(self):
        rng = np.random.default_rng(1)
        counts = [sample_fault_count(10_000, 0.01, rng) for _ in range(500)]
        assert np.mean(counts) == pytest.approx(100, rel=0.1)

    def test_zero_rate(self):
        assert sample_fault_count(1000, 0.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_fault_count(-1, 0.5)
        with pytest.raises(ValueError):
            sample_fault_count(10, 1.5)


class TestTransientFaultInjector:
    def test_error_vector_width(self):
        injector = TransientFaultInjector(553, 0.01, np.random.default_rng(2))
        for _ in range(50):
            vector = injector.error_vector()
            assert vector >> 553 == 0

    def test_error_vector_rate(self):
        injector = TransientFaultInjector(1000, 0.02, np.random.default_rng(3))
        total = sum(popcount(injector.error_vector()) for _ in range(500))
        assert total == pytest.approx(500 * 1000 * 0.02, rel=0.1)

    def test_error_vectors_bulk_matches_rate(self):
        injector = TransientFaultInjector(553, 1e-3, np.random.default_rng(4))
        vectors = injector.error_vectors(10_000)
        total = sum(popcount(v) for v in vectors.values())
        assert total == pytest.approx(10_000 * 553 * 1e-3, rel=0.1)
        assert all(v != 0 for v in vectors.values())

    def test_inject_interval_consistency(self):
        array = STTRAMArray(256, 553)
        injector = TransientFaultInjector(553, 5e-3, np.random.default_rng(5))
        events = injector.inject_interval(array)
        assert len(events) == array.total_faulty_bits()
        assert all(isinstance(e, FaultEvent) for e in events)
        assert all(e.kind is FaultKind.TRANSIENT for e in events)

    def test_zero_ber_injects_nothing(self):
        array = STTRAMArray(16, 64)
        injector = TransientFaultInjector(64, 0.0, np.random.default_rng(6))
        assert injector.inject_interval(array) == []
        assert array.faulty_lines() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TransientFaultInjector(0, 0.5)
        with pytest.raises(ValueError):
            TransientFaultInjector(10, -0.1)


class TestErrorVectorAt:
    """Injector-boundary validation of explicit fault positions."""

    def test_places_requested_bits(self):
        injector = TransientFaultInjector(line_bits=16, ber=0.0)
        assert injector.error_vector_at([0, 5, 15]) == (1 | 1 << 5 | 1 << 15)

    def test_out_of_range_position_raises(self):
        injector = TransientFaultInjector(line_bits=16, ber=0.0)
        with pytest.raises(ValueError, match="out of range for a 16-bit"):
            injector.error_vector_at([16])

    def test_negative_position_raises(self):
        injector = TransientFaultInjector(line_bits=16, ber=0.0)
        with pytest.raises(ValueError):
            injector.error_vector_at([-1])

    def test_sampled_vectors_stay_in_width(self):
        injector = TransientFaultInjector(
            line_bits=32, ber=0.3, rng=np.random.default_rng(5)
        )
        for _ in range(100):
            assert injector.error_vector() >> 32 == 0


class TestPermanentFaultMap:
    def test_stuck_at_one(self):
        fault_map = PermanentFaultMap(line_bits=8)
        fault_map.add(0, 3, FaultKind.STUCK_AT_ONE)
        assert fault_map.apply(0, 0b0000_0000) == 0b0000_1000
        assert fault_map.apply(0, 0b0000_1000) == 0b0000_1000

    def test_stuck_at_zero(self):
        fault_map = PermanentFaultMap(line_bits=8)
        fault_map.add(1, 0, FaultKind.STUCK_AT_ZERO)
        assert fault_map.apply(1, 0b0000_0001) == 0
        assert fault_map.apply(0, 0b0000_0001) == 0b0000_0001  # other line unaffected

    def test_error_vector_depends_on_written_value(self):
        fault_map = PermanentFaultMap(line_bits=8)
        fault_map.add(0, 2, FaultKind.STUCK_AT_ONE)
        assert fault_map.error_vector(0, 0b0000_0000) == 0b0000_0100
        assert fault_map.error_vector(0, 0b0000_0100) == 0

    def test_rejects_transient_kind(self):
        fault_map = PermanentFaultMap(line_bits=8)
        with pytest.raises(ValueError):
            fault_map.add(0, 0, FaultKind.TRANSIENT)

    def test_rejects_out_of_range(self):
        fault_map = PermanentFaultMap(line_bits=8)
        with pytest.raises(ValueError):
            fault_map.add(0, 8, FaultKind.STUCK_AT_ONE)

    def test_random_density(self):
        fault_map = PermanentFaultMap.random(
            1000, 553, fault_ppm=1000.0, rng=np.random.default_rng(7)
        )
        total = sum(popcount(m) for m in fault_map.stuck_at_one.values())
        total += sum(popcount(m) for m in fault_map.stuck_at_zero.values())
        expected = 1000 * 553 * 1000e-6
        assert total == pytest.approx(expected, rel=0.25)

    def test_random_count_is_exactly_the_binomial_draw(self):
        # With-replacement sampling used to OR duplicate indices into the
        # same bit, so the realized count fell short of the draw.  Replay
        # the binomial draw on an identically-seeded generator and demand
        # exact agreement.
        for seed in range(20):
            rng = np.random.default_rng(seed)
            fault_map = PermanentFaultMap.random(64, 64, 50_000.0, rng)
            replay = np.random.default_rng(seed)
            count = int(replay.binomial(64 * 64, 50_000 * 1e-6))
            total = sum(popcount(m) for m in fault_map.stuck_at_one.values())
            total += sum(popcount(m) for m in fault_map.stuck_at_zero.values())
            assert total == count

    def test_random_never_double_assigns_a_bit(self):
        fault_map = PermanentFaultMap.random(
            32, 64, fault_ppm=100_000.0, rng=np.random.default_rng(11)
        )
        for line, ones in fault_map.stuck_at_one.items():
            assert ones & fault_map.stuck_at_zero.get(line, 0) == 0

    def test_opposite_polarity_on_same_bit_raises(self):
        fault_map = PermanentFaultMap(line_bits=8)
        fault_map.add(0, 3, FaultKind.STUCK_AT_ONE)
        with pytest.raises(ValueError, match="already +stuck-at-1"):
            fault_map.add(0, 3, FaultKind.STUCK_AT_ZERO)
        fault_map.add(1, 3, FaultKind.STUCK_AT_ZERO)
        with pytest.raises(ValueError, match="already +stuck-at-0"):
            fault_map.add(1, 3, FaultKind.STUCK_AT_ONE)

    def test_same_polarity_twice_is_idempotent(self):
        fault_map = PermanentFaultMap(line_bits=8)
        fault_map.add(0, 3, FaultKind.STUCK_AT_ONE)
        fault_map.add(0, 3, FaultKind.STUCK_AT_ONE)
        assert fault_map.stuck_at_one[0] == 0b1000


class TestSampleDistinct:
    def test_exact_count_and_distinct(self):
        rng = np.random.default_rng(0)
        for count in (0, 1, 7, 64):
            values = sample_distinct(rng, 64, count)
            assert len(values) == count
            assert len(set(int(v) for v in values)) == count
            assert all(0 <= int(v) < 64 for v in values)

    def test_overdraw_raises(self):
        with pytest.raises(ValueError):
            sample_distinct(np.random.default_rng(0), 4, 5)


class TestBurstErrors:
    def test_shape(self):
        vector = burst_error_vector(64, start=8, length=4)
        assert vector == 0b1111 << 8

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_error_vector(64, start=62, length=4)
        with pytest.raises(ValueError):
            burst_error_vector(64, start=-1, length=2)


class TestBurstLineMasks:
    def test_no_interleave_is_one_contiguous_mask(self):
        assert burst_line_masks(64, 8, 4) == [(0, 0b1111 << 8)]

    def test_interleave_spreads_across_adjacent_lines(self):
        # Physical bits 0..3 of a D=2 row belong alternately to lines
        # 0 and 1, two bits each.
        masks = dict(burst_line_masks(8, start=0, length=4, interleave=2))
        assert set(masks) == {0, 1}
        assert popcount(masks[0]) == 2
        assert popcount(masks[1]) == 2

    def test_mask_bits_match_burst_length(self):
        for interleave in (1, 2, 4):
            for length in (1, 3, 7):
                masks = burst_line_masks(
                    16, start=2, length=length, interleave=interleave
                )
                assert sum(popcount(m) for _, m in masks) == length

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_line_masks(64, 0, 4, interleave=0)


class TestBurstFaultInjector:
    def _injector(self, seed=0, **kwargs):
        defaults = dict(
            line_bits=64, rate=0.1, length_pmf={3: 1.0},
            rng=np.random.default_rng(seed),
        )
        defaults.update(kwargs)
        return BurstFaultInjector(**defaults)

    def test_deterministic_for_equal_seeds(self):
        a = self._injector(seed=42).error_vectors(256)
        b = self._injector(seed=42).error_vectors(256)
        assert a == b

    def test_fixed_length_bursts_are_contiguous(self):
        injector = self._injector(seed=1, rate=0.2)
        vectors = injector.error_vectors(512)
        assert vectors
        for vector in vectors.values():
            # Each per-line mask is one or more length-3 runs; a single
            # non-overlapping event is exactly a contiguous run of 3.
            assert popcount(vector) % 3 == 0 or popcount(vector) >= 3

    def test_event_rate(self):
        injector = self._injector(seed=2, rate=0.05, length_pmf={2: 1.0})
        total_bits = 0
        for _ in range(200):
            vectors = injector.error_vectors(1000)
            total_bits += sum(popcount(v) for v in vectors.values())
        # events ~ Binomial(1000, 0.05) per call, 2 bits per event.
        assert total_bits == pytest.approx(200 * 1000 * 0.05 * 2, rel=0.1)

    def test_alignment_constrains_start_positions(self):
        injector = self._injector(
            seed=3, rate=0.3, length_pmf={2: 1.0}, alignment=8
        )
        for _ in range(50):
            for vector in injector.error_vectors(128).values():
                low = (vector & -vector).bit_length() - 1
                assert low % 8 == 0

    def test_multiplicity_strikes_consecutive_rows(self):
        injector = self._injector(
            seed=4, rate=1.0 / 64, length_pmf={2: 1.0}, multiplicity=3
        )
        vectors = injector.error_vectors(4096)
        assert vectors
        lines = sorted(vectors)
        # Every struck line is part of a run of 3 consecutive rows
        # sharing the same mask (modulo clipping at the array edge).
        for base in lines:
            if base + 2 in vectors and base + 1 in vectors:
                if vectors[base] == vectors[base + 1] == vectors[base + 2]:
                    break
        else:
            pytest.fail("no 3-row vertical burst found")

    def test_interleave_spreads_each_event(self):
        injector = self._injector(
            seed=5, rate=1.0 / 128, length_pmf={4: 1.0}, interleave=4
        )
        vectors = injector.error_vectors(4096)
        assert vectors
        # length-4 burst over D=4 interleaving: at most 1 bit per line.
        assert all(popcount(v) == 1 for v in vectors.values())

    def test_span_confines_bursts(self):
        injector = self._injector(
            seed=6, rate=0.3, length_pmf={3: 1.0}, span=16
        )
        for _ in range(50):
            for vector in injector.error_vectors(64).values():
                assert vector >> 16 == 0

    def test_edge_events_are_clipped(self):
        injector = self._injector(
            seed=7, rate=1.0, length_pmf={2: 1.0}, multiplicity=4
        )
        vectors = injector.error_vectors(3)
        assert all(line < 3 for line in vectors)

    def test_inject_frames_matches_dirty_set(self):
        array = STTRAMArray(256, 64)
        injector = self._injector(seed=8, rate=0.05)
        frames = injector.inject_frames(array)
        assert frames == array.faulty_lines()

    def test_length_pmf_mixture(self):
        injector = self._injector(
            seed=9, rate=1.0, length_pmf={1: 0.5, 5: 0.5}, alignment=64
        )
        sizes = set()
        for _ in range(30):
            sizes.update(
                popcount(v) for v in injector.error_vectors(64).values()
            )
        assert {1, 5} <= sizes

    def test_validation(self):
        with pytest.raises(ValueError):
            self._injector(rate=1.5)
        with pytest.raises(ValueError):
            self._injector(length_pmf={})
        with pytest.raises(ValueError):
            self._injector(length_pmf={0: 1.0})
        with pytest.raises(ValueError):
            self._injector(length_pmf={3: -1.0})
        with pytest.raises(ValueError):
            self._injector(length_pmf={100: 1.0}, span=16)
        with pytest.raises(ValueError):
            self._injector(span=0)
        with pytest.raises(ValueError):
            self._injector(alignment=0)
        with pytest.raises(ValueError):
            self._injector(multiplicity=0)
        with pytest.raises(ValueError):
            self._injector(interleave=0)
