"""Tests for the write-error channel (section VIII-B)."""

import random

import numpy as np
import pytest

from repro.core.engine import SuDokuY
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray
from repro.sttram.writeerror import WriteErrorChannel


def make_wrapped(wer, seed=5, num_lines=256, group=16):
    codec = LineCodec()
    array = STTRAMArray(num_lines, codec.stored_bits)
    engine = SuDokuY(array, group_size=group, codec=codec)
    return WriteErrorChannel(engine, wer, np.random.default_rng(seed))


class TestWriteErrorChannel:
    def test_zero_wer_is_transparent(self):
        channel = make_wrapped(0.0)
        channel.write_data(3, 0xBEEF)
        assert channel.array.is_clean(3)
        data, outcome = channel.read_data(3)
        assert data == 0xBEEF and outcome is Outcome.CLEAN
        assert channel.write_errors_injected == 0

    def test_write_errors_injected_at_rate(self):
        channel = make_wrapped(5e-3)
        rng = random.Random(6)
        writes = 400
        for _ in range(writes):
            channel.write_data(rng.randrange(256), rng.getrandbits(512))
        expected = writes * channel.array.line_bits * 5e-3
        assert channel.write_errors_injected == pytest.approx(expected, rel=0.2)

    def test_scrub_absorbs_write_errors(self):
        # The paper's claim: write errors are just early retention flips;
        # the standard machinery corrects them.
        channel = make_wrapped(2e-4, seed=9)
        rng = random.Random(9)
        for frame in range(256):
            channel.write_data(frame, rng.getrandbits(512))
        counts = channel.scrub_all()
        assert counts.get("sdc", 0) == 0
        # Everything that faulted got repaired.
        assert channel.array.faulty_lines() == []

    def test_parity_consistency_preserved(self):
        # Write errors strike *after* the parity update, exactly like a
        # retention fault: the PLT must stay consistent with golden (as
        # long as no write-path DUE forced a poisoned-parity rebuild,
        # which the chosen WER keeps out of reach).
        channel = make_wrapped(2e-4, seed=10)
        rng = random.Random(10)
        from repro.coding.parity import xor_reduce

        for _ in range(200):
            channel.write_data(rng.randrange(256), rng.getrandbits(512))
        channel.scrub_all()  # repair whatever the write errors corrupted
        engine = channel.engine
        assert engine.stats.parity_rebuilds == 0
        for group in range(engine.mapper.num_groups):
            members = engine.mapper.members(group)
            assert engine.plt.parity(group) == xor_reduce(
                channel.array.golden(f) for f in members
            )

    def test_write_path_due_rebuilds_parity(self):
        # Two heavy lines in one group make the old word unrecoverable on
        # the write path; the engine must rebuild (not poison) the parity.
        from repro.coding.bitvec import random_error_vector
        from repro.coding.parity import xor_reduce

        channel = make_wrapped(0.0, seed=11)
        engine = channel.engine
        rng = random.Random(11)
        for frame in range(256):
            channel.write_data(frame, rng.getrandbits(512))
        width = channel.array.line_bits
        channel.array.inject(1, random_error_vector(width, 3, rng))
        channel.array.inject(2, random_error_vector(width, 3, rng))
        channel.write_data(1, 0xFEED)  # old word for frame 1 is lost
        assert engine.stats.parity_rebuilds == 1
        group = engine.mapper.group_of(1)
        assert engine.plt.parity(group) == xor_reduce(
            channel.array.read(f) for f in engine.mapper.members(group)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_wrapped(1.5)
