"""Unit tests for repro.sttram.device (Eq. 1 physics)."""

import math

import pytest

from repro.sttram.device import (
    THERMAL_ATTEMPT_FREQUENCY_HZ,
    STTRAMCell,
    flip_probability,
    flip_rate,
    retention_mttf_seconds,
)


class TestFlipRate:
    def test_follows_eq1(self):
        assert flip_rate(35.0) == pytest.approx(1e9 * math.exp(-35.0))

    def test_monotone_decreasing_in_delta(self):
        assert flip_rate(35.0) > flip_rate(36.0) > flip_rate(60.0)

    def test_attempt_frequency_scales_linearly(self):
        assert flip_rate(30.0, 2e9) == pytest.approx(2 * flip_rate(30.0, 1e9))

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            flip_rate(30.0, 0.0)


class TestFlipProbability:
    def test_zero_interval(self):
        assert flip_probability(35.0, 0.0) == 0.0

    def test_small_rate_linearisation(self):
        # For tiny rate*t, p ~ rate * t.
        rate = flip_rate(60.0)
        assert flip_probability(60.0, 0.020) == pytest.approx(rate * 0.020, rel=1e-6)

    def test_saturates_at_one(self):
        assert flip_probability(1.0, 1.0) == pytest.approx(1.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            flip_probability(35.0, -1.0)

    def test_memoryless_composition(self):
        # Survival over t1+t2 = survival(t1) * survival(t2).
        p_total = 1 - flip_probability(30.0, 0.3)
        p_split = (1 - flip_probability(30.0, 0.1)) * (1 - flip_probability(30.0, 0.2))
        assert p_total == pytest.approx(p_split, rel=1e-9)


class TestRetentionMTTF:
    def test_paper_quote_delta35(self):
        # Section I: "MTTF for a cell with Delta of 35 is ~18 days".
        days = retention_mttf_seconds(35.0) / 86400.0
        assert 15.0 < days < 22.0

    def test_inverse_of_rate(self):
        assert retention_mttf_seconds(40.0) == pytest.approx(1.0 / flip_rate(40.0))


class TestSTTRAMCell:
    def test_validation(self):
        with pytest.raises(ValueError):
            STTRAMCell(delta=0.0)
        with pytest.raises(ValueError):
            STTRAMCell(delta=35.0, attempt_frequency_hz=-1.0)

    def test_consistency_with_functions(self):
        cell = STTRAMCell(delta=35.0)
        assert cell.rate == pytest.approx(flip_rate(35.0))
        assert cell.flip_probability(0.02) == pytest.approx(flip_probability(35.0, 0.02))
        assert cell.mttf_seconds() == pytest.approx(retention_mttf_seconds(35.0))

    def test_survival_complements_flip(self):
        cell = STTRAMCell(delta=25.0)
        assert cell.survival_probability(0.5) + cell.flip_probability(0.5) == pytest.approx(1.0)

    def test_default_attempt_frequency(self):
        assert STTRAMCell(delta=35.0).attempt_frequency_hz == THERMAL_ATTEMPT_FREQUENCY_HZ
