"""Unit tests for repro.sttram.array."""

import numpy as np
import pytest

from repro.sttram.array import STTRAMArray


class TestBasics:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            STTRAMArray(0, 64)
        with pytest.raises(ValueError):
            STTRAMArray(4, 0)

    def test_write_read_roundtrip(self):
        array = STTRAMArray(8, 64)
        array.write(3, 0xDEADBEEF)
        assert array.read(3) == 0xDEADBEEF
        assert array.golden(3) == 0xDEADBEEF

    def test_write_returns_previous_stored(self):
        array = STTRAMArray(4, 16)
        array.write(0, 0xAAAA)
        array.inject(0, 0x0001)
        assert array.write(0, 0x5555) == 0xAAAB  # faulty old value

    def test_bounds_checking(self):
        array = STTRAMArray(4, 16)
        with pytest.raises(IndexError):
            array.read(4)
        with pytest.raises(ValueError):
            array.write(0, 1 << 16)


class TestFaultTracking:
    def test_inject_and_error_vector(self):
        array = STTRAMArray(4, 16)
        array.write(1, 0xF0F0)
        array.inject(1, 0x0011)
        assert array.read(1) == 0xF0E1
        assert array.error_vector(1) == 0x0011
        assert not array.is_clean(1)

    def test_double_injection_cancels(self):
        array = STTRAMArray(4, 16)
        array.write(0, 0x1234)
        array.inject(0, 0x00FF)
        array.inject(0, 0x00FF)
        assert array.is_clean(0)

    def test_restore_repairs_without_touching_golden(self):
        array = STTRAMArray(4, 16)
        array.write(2, 0xABCD)
        array.inject(2, 0x0F00)
        array.restore(2, 0xABCD)
        assert array.is_clean(2)
        assert array.golden(2) == 0xABCD

    def test_faulty_lines_listing(self):
        array = STTRAMArray(8, 16)
        for index in range(8):
            array.write(index, index)
        array.inject(2, 1)
        array.inject(5, 2)
        assert array.faulty_lines() == [2, 5]
        assert array.total_faulty_bits() == 2

    def test_write_clears_fault(self):
        array = STTRAMArray(4, 16)
        array.write(0, 0x1111)
        array.inject(0, 0x000F)
        array.write(0, 0x2222)
        assert array.is_clean(0)


class TestDirtySet:
    """The dirty-frame index must mirror stored != golden at all times."""

    def test_starts_empty(self):
        array = STTRAMArray(4, 16)
        assert array.dirty_frames() == []
        assert array.dirty_count == 0
        assert not array.is_dirty(0)

    def test_inject_marks_dirty(self):
        array = STTRAMArray(4, 16)
        array.write(1, 0xF0F0)
        array.inject(1, 0x0001)
        assert array.is_dirty(1)
        assert array.dirty_frames() == [1]
        assert array.dirty_count == 1

    def test_inject_twice_cancels(self):
        array = STTRAMArray(4, 16)
        array.write(0, 0x1234)
        array.inject(0, 0x00FF)
        array.inject(0, 0x00FF)
        assert not array.is_dirty(0)
        assert array.dirty_frames() == []

    def test_restore_to_golden_cleans(self):
        array = STTRAMArray(4, 16)
        array.write(2, 0xABCD)
        array.inject(2, 0x0F00)
        assert array.is_dirty(2)
        array.restore(2, 0xABCD)
        assert not array.is_dirty(2)

    def test_restore_to_wrong_value_stays_dirty(self):
        array = STTRAMArray(4, 16)
        array.write(2, 0xABCD)
        array.inject(2, 0x0F00)
        array.restore(2, 0x0000)  # a miscorrection
        assert array.is_dirty(2)

    def test_write_cleans_dirty_frame(self):
        array = STTRAMArray(4, 16)
        array.inject(3, 0x0001)
        assert array.is_dirty(3)
        array.write(3, 0x5555)
        assert not array.is_dirty(3)

    def test_dirty_frames_sorted(self):
        array = STTRAMArray(8, 16)
        for index in (5, 1, 7, 3):
            array.inject(index, 0x0001)
        assert array.dirty_frames() == [1, 3, 5, 7]

    def test_mirrors_brute_force_scan(self):
        array = STTRAMArray(16, 32)
        rng = np.random.default_rng(13)
        for _ in range(200):
            op = rng.integers(0, 3)
            index = int(rng.integers(0, 16))
            value = int(rng.integers(0, 1 << 32))
            if op == 0:
                array.write(index, value)
            elif op == 1:
                array.inject(index, value)
            else:
                array.restore(index, value)
            expected = [
                i for i in range(16) if array.read(i) != array.golden(i)
            ]
            assert array.dirty_frames() == expected


class TestBulk:
    def test_fill_random_reproducible(self):
        array_a = STTRAMArray(32, 553)
        array_b = STTRAMArray(32, 553)
        array_a.fill_random(np.random.default_rng(42))
        array_b.fill_random(np.random.default_rng(42))
        assert list(array_a) == list(array_b)

    def test_len_and_iter(self):
        array = STTRAMArray(8, 16)
        assert len(array) == 8
        assert len(list(array)) == 8
