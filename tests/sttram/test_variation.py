"""Unit tests for repro.sttram.variation (Table I reproduction)."""

import numpy as np
import pytest

from repro.core.config import PAPER
from repro.sttram.device import flip_probability
from repro.sttram.variation import (
    DeltaDistribution,
    effective_ber,
    expected_faulty_bits,
    mean_cell_mttf_seconds,
)


class TestEffectiveBER:
    def test_table1_delta35(self):
        # Paper: 5.3e-6 at (35, 10%, 20ms); our model lands within 10%.
        ber = effective_ber(35.0, 3.5, 0.020)
        assert ber == pytest.approx(PAPER.ber_delta35_20ms, rel=0.10)

    def test_table1_delta60_order_of_magnitude(self):
        # Paper: 2.7e-12; recomputed-from-figure data, so allow an order.
        ber = effective_ber(60.0, 6.0, 0.020)
        assert 1e-13 < ber < 1e-10

    def test_zero_sigma_matches_point_model(self):
        assert effective_ber(35.0, 0.0, 0.020) == pytest.approx(
            flip_probability(35.0, 0.020)
        )

    def test_zero_interval(self):
        assert effective_ber(35.0, 3.5, 0.0) == 0.0

    def test_monotone_in_interval(self):
        values = [effective_ber(35.0, 3.5, t) for t in (0.010, 0.020, 0.040)]
        assert values[0] < values[1] < values[2]

    def test_scrub_sweep_matches_paper(self):
        for interval_s, paper_ber, *_ in PAPER.scrub_sweep:
            ber = effective_ber(35.0, 3.5, interval_s)
            assert ber == pytest.approx(paper_ber, rel=0.15)

    def test_variation_dominates_tail(self):
        # Variation increases the effective BER by orders of magnitude.
        assert effective_ber(35.0, 3.5, 0.020) > 100 * flip_probability(35.0, 0.020)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            effective_ber(35.0, -1.0, 0.020)


class TestMeanCellMTTF:
    def test_paper_quote_one_hour(self):
        hours = mean_cell_mttf_seconds(35.0, 3.5) / 3600.0
        assert hours == pytest.approx(PAPER.mean_cell_mttf_hours, rel=0.25)

    def test_no_variation_matches_point_mttf(self):
        from repro.sttram.device import retention_mttf_seconds

        assert mean_cell_mttf_seconds(35.0, 0.0) == pytest.approx(
            retention_mttf_seconds(35.0)
        )


class TestExpectedFaultyBits:
    def test_paper_quote_2880(self):
        bits = expected_faulty_bits(64 * 1024 * 1024 * 8, 35.0, 3.5, 0.020)
        assert bits == pytest.approx(PAPER.expected_faulty_bits_64mb_20ms, rel=0.10)

    def test_scales_with_size(self):
        small = expected_faulty_bits(1000, 35.0, 3.5, 0.020)
        large = expected_faulty_bits(2000, 35.0, 3.5, 0.020)
        assert large == pytest.approx(2 * small)


class TestDeltaDistribution:
    def test_sigma_property(self):
        dist = DeltaDistribution(mean=35.0, sigma_fraction=0.10)
        assert dist.sigma == pytest.approx(3.5)

    def test_sampling_statistics(self):
        dist = DeltaDistribution(mean=35.0, sigma_fraction=0.10)
        rng = np.random.default_rng(1)
        samples = dist.sample(50_000, rng)
        assert np.mean(samples) == pytest.approx(35.0, abs=0.1)
        assert np.std(samples) == pytest.approx(3.5, abs=0.1)
        assert np.all(samples > 0)

    def test_effective_ber_delegates(self):
        dist = DeltaDistribution(mean=35.0, sigma_fraction=0.10)
        assert dist.effective_ber(0.020) == pytest.approx(
            effective_ber(35.0, 3.5, 0.020)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DeltaDistribution(mean=-1.0)
        with pytest.raises(ValueError):
            DeltaDistribution(mean=35.0, sigma_fraction=-0.1)
