"""Reference-vs-numpy backend equivalence, pinned bit for bit.

The numpy backend is only allowed to exist because it changes *nothing*
observable: for every scheme, fault mix, scrub mode, and sharding
degree, the outcome counters (and metadata counters, and hence every
derived statistic) must equal the reference backend's exactly.  These
tests sweep that matrix through the scenario campaign runner -- all
eight schemes under transient, interleaved-burst (D = 1/2/4), stuck-at,
and metadata-chaos faults, dense and sparse scrub, serial and 4-shard
execution.

The property tests at the bottom pin the plane layout itself: packing
is the little-endian serialisation the CRC/PLT code already uses, so
round-trips through :mod:`repro.coding.bitvec` values and
:class:`repro.coding.interleave.BitInterleaver` rows must be exact.
"""

import random

import numpy as np
import pytest

from repro.coding.bitvec import bit_positions, random_bits
from repro.coding.interleave import BitInterleaver
from repro.kernels import BACKEND_NAMES, get_backend, resolve_backend
from repro.kernels.planes import (
    pack_line,
    pack_lines,
    unpack_line,
    unpack_lines,
    words_per_line,
)
from repro.reliability.scenario import (
    SCHEMES,
    BurstSpec,
    FaultScenario,
    StuckSpec,
    run_scenario_campaign,
)

INTERVALS = 4
GROUP = 4
SEED = 13

#: One scenario per fault kind in the acceptance matrix.
FAULT_SCENARIOS = {
    "transient": FaultScenario(transient_ber=2e-3),
    "burst_d1": FaultScenario(
        transient_ber=5e-4,
        burst=BurstSpec.fixed_length(rate=0.05, length=3, interleave=1),
    ),
    "burst_d2": FaultScenario(
        transient_ber=5e-4,
        burst=BurstSpec.fixed_length(rate=0.05, length=3, interleave=2),
    ),
    "burst_d4": FaultScenario(
        transient_ber=5e-4,
        burst=BurstSpec.fixed_length(rate=0.05, length=4, interleave=4),
    ),
    "stuck": FaultScenario(transient_ber=1e-3, stuck=StuckSpec(ppm=500.0)),
}


def _run(scheme, scenario, backend, scrub_mode, chaos_policy=None):
    return run_scenario_campaign(
        scheme, scenario, intervals=INTERVALS, group_size=GROUP,
        seed=SEED, scrub_mode=scrub_mode, backend=backend,
        chaos_policy=chaos_policy,
    ).as_dict()


class TestRegistry:
    def test_backend_names(self):
        assert BACKEND_NAMES == ("reference", "numpy")

    def test_get_backend_is_singleton(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="reference"):
            get_backend("cupy")

    def test_resolve_passthrough(self):
        backend = get_backend("reference")
        assert resolve_backend(backend) is backend
        assert resolve_backend(None).name == "reference"
        assert resolve_backend("numpy").name == "numpy"


class TestSchemeEquivalence:
    """All eight schemes x five fault mixes x dense/sparse, serial."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("fault", sorted(FAULT_SCENARIOS))
    def test_backends_bit_identical(self, scheme, fault):
        scenario = FAULT_SCENARIOS[fault]
        reference = _run(scheme, scenario, "reference", "sparse")
        assert sum(reference["outcomes"].values()) > 0
        assert _run(scheme, scenario, "reference", "dense") == reference
        for mode in ("sparse", "dense"):
            assert _run(scheme, scenario, "numpy", mode) == reference


class TestChaosEquivalence:
    """Metadata chaos perturbs both backends identically."""

    @pytest.mark.parametrize("level", ["X", "Y", "Z"])
    def test_backends_bit_identical_under_chaos(self, level):
        from repro.resilience.chaos import ChaosPolicy

        policy = ChaosPolicy(
            plt_flip_rate=0.02,
            map_swap_rate=0.01,
            visit_drop_rate=0.05,
            visit_duplicate_rate=0.05,
        )
        scenario = FAULT_SCENARIOS["transient"]
        reference = _run(
            level, scenario, "reference", "sparse", chaos_policy=policy
        )
        for backend in BACKEND_NAMES:
            for mode in ("sparse", "dense"):
                assert _run(
                    level, scenario, backend, mode, chaos_policy=policy
                ) == reference


class TestShardedEquivalence:
    """4-shard merged results equal serial, per backend, bit for bit."""

    MIXED = FaultScenario(
        transient_ber=1e-3,
        burst=BurstSpec.fixed_length(rate=0.03, length=3, interleave=2),
        stuck=StuckSpec(ppm=300.0),
    )

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_sharded_matches_serial_on_both_backends(self, scheme):
        from repro.parallel import run_sharded_scenario

        serial = run_sharded_scenario(
            scheme, self.MIXED, INTERVALS * 2, GROUP,
            shards=1, seed=SEED, backend="reference",
        ).as_dict()
        for backend in BACKEND_NAMES:
            sharded = run_sharded_scenario(
                scheme, self.MIXED, INTERVALS * 2, GROUP,
                shards=4, seed=SEED, backend=backend,
            ).as_dict()
            assert sharded == serial


class TestCampaignAndRaresimBackends:
    """The Monte-Carlo and rare-event entry points honour backend= too."""

    @pytest.mark.parametrize("level", ["X", "Y", "Z"])
    def test_group_campaign_backends_agree(self, level):
        from repro.reliability.montecarlo import run_group_campaign

        results = [
            run_group_campaign(
                level, 8e-4, trials=INTERVALS, group_size=8,
                rng=np.random.default_rng(21), backend=backend,
            ).as_dict()
            for backend in BACKEND_NAMES
        ]
        assert results[0] == results[1]

    def test_raresim_backends_agree(self):
        from repro.reliability.raresim import ConditionalGroupSimulator

        results = []
        for backend in BACKEND_NAMES:
            simulator = ConditionalGroupSimulator(
                ber=4e-4, group_size=16, num_groups=16,
                rng=random.Random(3), backend=backend,
            )
            results.append(simulator.run("Z", 30).as_dict())
        assert results[0] == results[1]


class TestPlaneStorageMode:
    """The plane-backed array storage is observably identical to lists."""

    @staticmethod
    def _twin_arrays(num_lines=12, line_bits=553, seed=31):
        from repro.sttram.array import STTRAMArray

        rng = random.Random(seed)
        arrays = [
            STTRAMArray(num_lines, line_bits, storage=storage)
            for storage in ("list", "planes")
        ]
        for index in range(num_lines):
            value = random_bits(line_bits, rng)
            for array in arrays:
                array.write(index, value)
        return arrays

    def test_write_inject_restore_agree(self):
        list_array, plane_array = self._twin_arrays()
        rng = random.Random(32)
        for index in range(len(list_array)):
            if rng.random() < 0.5:
                vector = random_bits(553, rng)
                list_array.inject(index, vector)
                plane_array.inject(index, vector)
        for index in range(len(list_array)):
            assert plane_array.read(index) == list_array.read(index)
            assert plane_array.golden(index) == list_array.golden(index)
            assert plane_array.is_dirty(index) == list_array.is_dirty(index)
        assert plane_array.dirty_frames() == list_array.dirty_frames()
        assert list(plane_array) == list(list_array)

    def test_recompute_dirty_frames_agrees_across_backends(self):
        list_array, plane_array = self._twin_arrays(seed=33)
        rng = random.Random(34)
        for index in (1, 4, 9):
            vector = 1 << rng.randrange(553)
            list_array.inject(index, vector)
            plane_array.inject(index, vector)
        expected = list_array.dirty_frames()
        for backend in BACKEND_NAMES:
            assert (
                plane_array.recompute_dirty_frames(backend) == expected
            )
            assert (
                list_array.recompute_dirty_frames(backend) == expected
            )

    def test_invalid_storage_mode_rejected(self):
        from repro.sttram.array import STTRAMArray

        with pytest.raises(ValueError, match="storage"):
            STTRAMArray(4, 64, storage="sqlite")


class TestPlanePacking:
    """Property tests: the plane layout is the little-endian layout."""

    WIDTHS = (1, 7, 64, 65, 128, 553)

    def test_round_trip_random_lines(self):
        rng = random.Random(41)
        for width in self.WIDTHS:
            values = [random_bits(width, rng) for _ in range(64)]
            values += [0, (1 << width) - 1, 1 << (width - 1)]
            for value in values:
                assert unpack_line(pack_line(value, width)) == value
            matrix = pack_lines(values, width)
            assert matrix.shape == (len(values), words_per_line(width))
            assert unpack_lines(matrix) == values

    def test_bit_layout_matches_bitvec(self):
        """Bit b of line value lives at word b//64, offset b%64."""
        rng = random.Random(42)
        for width in self.WIDTHS:
            value = random_bits(width, rng)
            row = pack_line(value, width)
            unpacked = {
                word * 64 + offset
                for word in range(row.shape[0])
                for offset in range(64)
                if (int(row[word]) >> offset) & 1
            }
            assert unpacked == set(bit_positions(value))

    def test_pack_lines_matches_pack_line(self):
        rng = random.Random(43)
        values = [random_bits(553, rng) for _ in range(32)]
        matrix = pack_lines(values, 553)
        for index, value in enumerate(values):
            assert np.array_equal(matrix[index], pack_line(value, 553))

    def test_round_trip_through_interleaver(self):
        """Interleaved rows survive the plane representation exactly."""
        rng = random.Random(44)
        for depth in (2, 4, 8):
            interleaver = BitInterleaver(line_bits=553, depth=depth)
            lines = [random_bits(553, rng) for _ in range(depth)]
            row_value = interleaver.interleave(lines)
            packed = pack_line(row_value, interleaver.row_bits)
            assert unpack_line(packed) == row_value
            assert interleaver.deinterleave(unpack_line(packed)) == lines

    def test_xor_fold_matches_reference(self):
        rng = random.Random(45)
        values = [random_bits(553, rng) for _ in range(17)]
        folds = [
            resolve_backend(name).xor_fold(values, 553)
            for name in BACKEND_NAMES
        ]
        expected = 0
        for value in values:
            expected ^= value
        assert folds == [expected, expected]


class TestCleanDecodeFastPath:
    """The known-clean batch decode equals ``codec.decode`` exactly."""

    def test_matches_scalar_decode_on_clean_words(self):
        from repro.core.linecodec import DecodeStatus, LineCodec

        codec = LineCodec()
        rng = random.Random(51)
        words = [
            codec.encode(random_bits(codec.layout.data_bits, rng))
            for _ in range(9)
        ]
        expected = [codec.decode(word) for word in words]
        assert all(d.status is DecodeStatus.CLEAN for d in expected)
        for name in BACKEND_NAMES:
            decoded = resolve_backend(name).batch_decode_clean(codec, words)
            assert decoded == expected

    def test_prefetch_keeps_stuck_residue_off_the_clean_path(self):
        """Stuck-bit residue passes ``is_clean`` but is not a codeword.

        A line whose only stored-vs-golden divergence is a re-asserted
        stuck bit must still go through the full decode in the prefetch
        (the raw dirty set, not ``is_clean``, guards the fast path) --
        otherwise the numpy backend would label a corrupt word CLEAN.
        """
        from repro.core.engine import build_engine
        from repro.core.linecodec import DecodeStatus, LineCodec
        from repro.sttram.array import STTRAMArray
        from repro.sttram.faults import FaultKind, PermanentFaultMap

        codec = LineCodec()
        array = STTRAMArray(8, codec.stored_bits)
        engine = build_engine("X", array, group_size=4, codec=codec)
        frame = 2
        stored = array.read(frame)
        position = next(
            bit for bit in range(codec.stored_bits)
            if not (stored >> bit) & 1
        )
        fault_map = PermanentFaultMap(codec.stored_bits)
        fault_map.add(frame, position, FaultKind.STUCK_AT_ONE)
        array.attach_permanent_faults(fault_map)
        assert array.is_clean(frame) and array.is_dirty(frame)

        engine.set_backend("numpy")
        stored = array.read(frame)
        engine._prefetch_decodes([frame])
        cached = engine._cached_decode(frame, stored)
        assert cached == codec.decode(stored)
        assert cached.status is not DecodeStatus.CLEAN


class TestCLIBackendFlag:
    def test_backend_flag_parses(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("campaign", "raresim", "chaos", "scenario"):
            assert parser.parse_args([command]).backend == "reference"
            assert parser.parse_args(
                [command, "--backend", "numpy"]
            ).backend == "numpy"

    def test_unknown_backend_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--backend", "torch"])
