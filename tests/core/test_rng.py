"""The rng/seed resolution policy behind every stochastic constructor."""

import random
import warnings

import numpy as np
import pytest

from repro.core.rng import (
    UnseededRNGWarning,
    reset_unseeded_warnings,
    resolve_pyrandom,
    resolve_rng,
)


@pytest.fixture(autouse=True)
def fresh_warning_state():
    reset_unseeded_warnings()
    yield
    reset_unseeded_warnings()


class TestResolveRng:
    def test_explicit_rng_wins(self):
        generator = np.random.default_rng(1)
        assert resolve_rng(rng=generator) is generator

    def test_seed_is_deterministic(self):
        a = resolve_rng(seed=42)
        b = resolve_rng(seed=42)
        assert a.integers(0, 2**32, 16).tolist() == \
            b.integers(0, 2**32, 16).tolist()

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        a = resolve_rng(seed=sequence)
        b = resolve_rng(seed=np.random.SeedSequence(7))
        assert a.integers(0, 2**32, 4).tolist() == \
            b.integers(0, 2**32, 4).tolist()

    def test_both_rng_and_seed_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_rng(rng=np.random.default_rng(1), seed=2, owner="thing")

    def test_unseeded_warns_once_per_owner(self):
        with pytest.warns(UnseededRNGWarning, match="widget"):
            resolve_rng(owner="widget")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_rng(owner="widget")  # second call: silent
        with pytest.warns(UnseededRNGWarning, match="gadget"):
            resolve_rng(owner="gadget")  # new owner warns again


class TestResolvePyrandom:
    def test_explicit_rng_wins(self):
        generator = random.Random(1)
        assert resolve_pyrandom(rng=generator) is generator

    def test_seed_is_deterministic(self):
        a = resolve_pyrandom(seed=42)
        b = resolve_pyrandom(seed=42)
        assert [a.getrandbits(32) for _ in range(8)] == \
            [b.getrandbits(32) for _ in range(8)]

    def test_both_rng_and_seed_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_pyrandom(rng=random.Random(1), seed=2)

    def test_unseeded_warns_once(self):
        with pytest.warns(UnseededRNGWarning):
            resolve_pyrandom(owner="chaos-stream")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_pyrandom(owner="chaos-stream")


class TestConstructorsAcceptSeed:
    """The threaded seed= path is equivalent to passing the rng by hand."""

    def test_transient_injector_seed_equals_rng(self):
        from repro.sttram.faults import TransientFaultInjector

        by_seed = TransientFaultInjector(line_bits=64, ber=0.05, seed=9)
        by_rng = TransientFaultInjector(
            line_bits=64, ber=0.05, rng=np.random.default_rng(9)
        )
        for _ in range(20):
            assert by_seed.error_vector() == by_rng.error_vector()

    def test_campaign_seed_param_matches_rng_param(self):
        from repro.reliability.montecarlo import run_group_campaign

        kwargs = dict(ber=5e-3, trials=3, group_size=8, interval_s=0.02)
        by_seed = run_group_campaign("Z", seed=11, **kwargs)
        by_rng = run_group_campaign(
            "Z", rng=np.random.default_rng(11), **kwargs
        )
        assert by_seed.as_dict() == by_rng.as_dict()
