"""Tests for the correction-event log."""

import random

import pytest

from repro.coding.bitvec import random_error_vector
from repro.core.engine import SuDokuZ
from repro.core.eventlog import CorrectionEvent, EventLog
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray


class TestEventLog:
    def test_record_and_totals(self):
        log = EventLog()
        log.begin_interval(3)
        event = log.record(7, Outcome.CORRECTED_ECC1, fault_bits=1, group=0,
                           latency_s=1e-8)
        assert event.sequence == 0
        assert event.interval == 3
        assert len(log) == 1
        assert log.totals["corrected_ecc1"] == 1

    def test_capacity_bound(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.record(index, Outcome.CLEAN)
        assert len(log) == 3
        assert log.dropped == 2
        assert log.totals["clean"] == 5  # totals keep counting
        assert [event.frame for event in log] == [2, 3, 4]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_queries(self):
        log = EventLog()
        log.record(1, Outcome.CORRECTED_RAID4, group=4, latency_s=4e-6)
        log.record(1, Outcome.CLEAN, group=4, latency_s=1e-9)
        log.record(2, Outcome.CORRECTED_SDR, group=5, latency_s=5e-6)
        assert len(log.events_for_frame(1)) == 2
        hottest = log.hottest_groups()
        assert hottest[0][0] in (4, 5)  # clean events excluded from heat
        latency = log.latency_by_outcome()
        assert latency["corrected_raid4"] == pytest.approx(4e-6)

    def test_json_roundtrip(self):
        log = EventLog()
        log.begin_interval(1)
        log.record(3, Outcome.DUE, fault_bits=4, group=2, latency_s=2e-6)
        log.record(9, Outcome.CLEAN)
        rebuilt = EventLog.from_json_lines(log.to_json_lines())
        assert len(rebuilt) == 2
        first = next(iter(rebuilt))
        assert first.frame == 3
        assert first.outcome == "due"
        assert first.fault_bits == 4


class TestEngineIntegration:
    def test_engine_records_events(self):
        rng = random.Random(91)
        codec = LineCodec()
        array = STTRAMArray(256, codec.stored_bits)
        engine = SuDokuZ(array, group_size=16, codec=codec)
        engine.event_log = EventLog()
        for frame in range(256):
            engine.write_data(frame, rng.getrandbits(512))

        engine.event_log.begin_interval(0)
        array.inject(3, 1 << 40)                                   # ECC-1
        array.inject(20, random_error_vector(codec.stored_bits, 4, rng))  # RAID-4
        counts = engine.scrub_frames([3, 20])
        assert counts.get("corrected_ecc1") == 1
        events = list(engine.event_log)
        assert {event.outcome for event in events} == {
            "corrected_ecc1", "corrected_raid4",
        }
        by_frame = {event.frame: event for event in events}
        assert by_frame[3].fault_bits == 1
        assert by_frame[20].fault_bits == 4
        assert by_frame[20].latency_s > by_frame[3].latency_s

    def test_no_log_attached_costs_nothing(self):
        codec = LineCodec()
        array = STTRAMArray(64, codec.stored_bits)
        engine = SuDokuZ(array, group_size=8, codec=codec)
        assert engine.event_log is None
        assert engine.scrub_all() == {"clean": 64}
