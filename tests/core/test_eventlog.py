"""Tests for the correction-event log."""

import random
import time

import pytest

from repro.coding.bitvec import random_error_vector
from repro.core.engine import SuDokuZ
from repro.core.eventlog import CorrectionEvent, EventLog
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray


class TestEventLog:
    def test_record_and_totals(self):
        log = EventLog()
        log.begin_interval(3)
        event = log.record(7, Outcome.CORRECTED_ECC1, fault_bits=1, group=0,
                           latency_s=1e-8)
        assert event.sequence == 0
        assert event.interval == 3
        assert len(log) == 1
        assert log.totals["corrected_ecc1"] == 1

    def test_capacity_bound(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.record(index, Outcome.CLEAN)
        assert len(log) == 3
        assert log.dropped == 2
        assert log.totals["clean"] == 5  # totals keep counting
        assert [event.frame for event in log] == [2, 3, 4]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_eviction_stays_fast_at_scale(self):
        """Recording far past capacity must not degrade.

        The log used to evict with ``list.pop(0)``, making a full log
        O(n) per record -- 120k records into a 4k-capacity log took
        seconds.  With the deque backing it is O(1); the whole run
        should finish in well under a second even on slow CI.
        """
        log = EventLog(capacity=4_096)
        records = 120_000
        started = time.perf_counter()
        for index in range(records):
            log.record(index % 512, Outcome.CLEAN)
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0
        assert len(log) == 4_096
        assert log.dropped == records - 4_096
        assert log.totals["clean"] == records  # totals keep counting
        # The ring holds exactly the newest events, oldest first.
        newest = list(log)
        assert newest[0].sequence == records - 4_096
        assert newest[-1].sequence == records - 1

    def test_queries(self):
        log = EventLog()
        log.record(1, Outcome.CORRECTED_RAID4, group=4, latency_s=4e-6)
        log.record(1, Outcome.CLEAN, group=4, latency_s=1e-9)
        log.record(2, Outcome.CORRECTED_SDR, group=5, latency_s=5e-6)
        assert len(log.events_for_frame(1)) == 2
        hottest = log.hottest_groups()
        assert hottest[0][0] in (4, 5)  # clean events excluded from heat
        latency = log.latency_by_outcome()
        assert latency["corrected_raid4"] == pytest.approx(4e-6)

    def test_metrics_feed(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        log = EventLog(capacity=2, metrics=registry)
        log.record(1, Outcome.CORRECTED_RAID4, group=3, latency_s=4e-6)
        log.record(2, Outcome.CLEAN, latency_s=1e-9)
        log.record(3, Outcome.CLEAN, latency_s=1e-9)  # evicts event 1
        events = registry.get("eventlog_events_total")
        assert events.labels(outcome="corrected_raid4").value == 1
        assert events.labels(outcome="clean").value == 2
        ((_, dropped),) = registry.get("eventlog_dropped_total").samples()
        assert dropped.value == 1
        latency = registry.get("eventlog_latency_seconds")
        assert latency.labels(outcome="corrected_raid4").count == 1

    def test_hottest_groups_returns_typed_pairs(self):
        log = EventLog()
        log.record(1, Outcome.CORRECTED_RAID4, group=7)
        log.record(2, Outcome.CORRECTED_RAID4, group=7)
        log.record(3, Outcome.CORRECTED_ECC1, group=2)
        log.record(4, Outcome.CLEAN, group=7)  # clean excluded from heat
        assert log.hottest_groups(top=2) == [(7, 2), (2, 1)]

    def test_json_roundtrip(self):
        log = EventLog()
        log.begin_interval(1)
        log.record(3, Outcome.DUE, fault_bits=4, group=2, latency_s=2e-6)
        log.record(9, Outcome.CLEAN)
        rebuilt = EventLog.from_json_lines(log.to_json_lines())
        assert len(rebuilt) == 2
        first = next(iter(rebuilt))
        assert first.frame == 3
        assert first.outcome == "due"
        assert first.fault_bits == 4


class TestEngineIntegration:
    def test_engine_records_events(self):
        rng = random.Random(91)
        codec = LineCodec()
        array = STTRAMArray(256, codec.stored_bits)
        engine = SuDokuZ(array, group_size=16, codec=codec)
        engine.event_log = EventLog()
        for frame in range(256):
            engine.write_data(frame, rng.getrandbits(512))

        engine.event_log.begin_interval(0)
        array.inject(3, 1 << 40)                                   # ECC-1
        array.inject(20, random_error_vector(codec.stored_bits, 4, rng))  # RAID-4
        counts = engine.scrub_frames([3, 20])
        assert counts.get("corrected_ecc1") == 1
        events = list(engine.event_log)
        assert {event.outcome for event in events} == {
            "corrected_ecc1", "corrected_raid4",
        }
        by_frame = {event.frame: event for event in events}
        assert by_frame[3].fault_bits == 1
        assert by_frame[20].fault_bits == 4
        assert by_frame[20].latency_s > by_frame[3].latency_s

    def test_no_log_attached_costs_nothing(self):
        codec = LineCodec()
        array = STTRAMArray(64, codec.stored_bits)
        engine = SuDokuZ(array, group_size=8, codec=codec)
        assert engine.event_log is None
        assert engine.scrub_all() == {"clean": 64}
