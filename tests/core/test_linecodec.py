"""Unit and property tests for the SuDoku line format (layout + codec)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.bitvec import flip_bits, random_error_vector
from repro.core.layout import LineLayout
from repro.core.linecodec import DecodeStatus, LineCodec


class TestLayout:
    def test_paper_dimensions(self):
        layout = LineLayout()
        assert layout.data_bits == 512
        assert layout.crc_bits == 31
        assert layout.payload_bits == 543
        assert layout.ecc_bits == 10          # section II-D: "10 bits per line"
        assert layout.stored_bits == 553
        assert layout.overhead_bits == 41     # CRC + ECC metadata per line

    def test_payload_composition_roundtrip(self):
        layout = LineLayout()
        data, crc = 0xABC, 0x1234
        payload = layout.compose_payload(data, crc)
        assert layout.split_payload(payload) == (data, crc)

    def test_composition_bounds(self):
        layout = LineLayout()
        with pytest.raises(ValueError):
            layout.compose_payload(1 << 512, 0)
        with pytest.raises(ValueError):
            layout.compose_payload(0, 1 << 31)

    def test_crc_width_must_match_engine(self):
        with pytest.raises(ValueError):
            LineLayout(crc_bits=16)


class TestCodecCleanPath:
    def setup_method(self):
        self.codec = LineCodec()
        self.rng = random.Random(31)

    def test_encode_verify_roundtrip(self):
        for _ in range(20):
            data = self.rng.getrandbits(512)
            word = self.codec.encode(data)
            assert self.codec.verify(word)
            decode = self.codec.decode(word)
            assert decode.status is DecodeStatus.CLEAN
            assert decode.data == data
            assert decode.word == word
            assert decode.ok

    def test_extract_data(self):
        data = self.rng.getrandbits(512)
        assert self.codec.extract_data(self.codec.encode(data)) == data

    def test_stored_bits(self):
        assert self.codec.stored_bits == 553


class TestCodecSingleBit:
    """ECC-1 must repair one fault anywhere: data, CRC, or ECC bits."""

    def setup_method(self):
        self.codec = LineCodec()
        self.rng = random.Random(32)
        self.data = self.rng.getrandbits(512)
        self.word = self.codec.encode(self.data)

    def test_every_sampled_position_repairable(self):
        for position in self.rng.sample(range(553), 80):
            decode = self.codec.decode(self.word ^ (1 << position))
            assert decode.status is DecodeStatus.CORRECTED
            assert decode.word == self.word
            assert decode.data == self.data
            assert decode.flipped_position == position

    def test_verify_rejects_single_fault(self):
        for position in self.rng.sample(range(553), 20):
            assert not self.codec.verify(self.word ^ (1 << position))


class TestCodecMultiBit:
    def setup_method(self):
        self.codec = LineCodec()
        self.rng = random.Random(33)
        self.data = self.rng.getrandbits(512)
        self.word = self.codec.encode(self.data)

    @pytest.mark.parametrize("weight", [2, 3, 4, 6])
    def test_multi_bit_faults_are_uncorrectable_not_miscorrected(self, weight):
        for _ in range(30):
            vector = random_error_vector(553, weight, self.rng)
            decode = self.codec.decode(self.word ^ vector)
            assert decode.status is DecodeStatus.UNCORRECTABLE
            assert decode.data is None
            assert not decode.ok

    def test_try_flip_and_repair_two_faults(self):
        # Flipping one true fault position makes the line ECC-1-repairable
        # (the SDR inner step, Fig. 3).
        vector = random_error_vector(553, 2, self.rng)
        corrupted = self.word ^ vector
        positions = [p for p in range(553) if (vector >> p) & 1]
        repaired = self.codec.try_flip_and_repair(corrupted, positions[0])
        assert repaired == self.word

    def test_try_flip_wrong_position_fails(self):
        vector = random_error_vector(553, 2, self.rng)
        corrupted = self.word ^ vector
        wrong = next(p for p in range(553) if not (vector >> p) & 1)
        assert self.codec.try_flip_and_repair(corrupted, wrong) is None

    def test_try_flip_bounds(self):
        with pytest.raises(ValueError):
            self.codec.try_flip_and_repair(self.word, 553)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 512) - 1))
def test_property_roundtrip(data):
    codec = LineCodec()
    decode = codec.decode(codec.encode(data))
    assert decode.status is DecodeStatus.CLEAN and decode.data == data


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=(1 << 512) - 1),
    st.integers(min_value=0, max_value=552),
)
def test_property_single_fault_repaired(data, position):
    codec = LineCodec()
    word = codec.encode(data)
    decode = codec.decode(word ^ (1 << position))
    assert decode.status is DecodeStatus.CORRECTED and decode.data == data
