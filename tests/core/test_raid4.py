"""Unit tests for RAID-Group scanning and RAID-4 reconstruction."""

import random

import pytest

from repro.coding.bitvec import random_error_vector
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.core.plt_ import ParityLineTable
from repro.core.raid4 import reconstruct_line, scan_group
from repro.sttram.array import STTRAMArray


@pytest.fixture
def group():
    """An 8-line group with random content and a consistent parity."""
    rng = random.Random(41)
    codec = LineCodec()
    array = STTRAMArray(8, codec.stored_bits)
    plt = ParityLineTable(1, codec.stored_bits)
    words = []
    for frame in range(8):
        word = codec.encode(rng.getrandbits(512))
        array.write(frame, word)
        words.append(word)
    plt.rebuild(0, words)
    return rng, codec, array, plt


class TestScanGroup:
    def test_clean_group(self, group):
        rng, codec, array, plt = group
        scan = scan_group(array, codec, 0, range(8))
        assert scan.uncorrectable == []
        assert scan.line_outcomes == {}
        assert plt.mismatch(0, [scan.words[f] for f in scan.frames]) == 0

    def test_single_bit_faults_fixed_in_place(self, group):
        rng, codec, array, plt = group
        array.inject(2, 1 << 17)
        array.inject(5, 1 << 400)
        scan = scan_group(array, codec, 0, range(8))
        assert scan.uncorrectable == []
        assert scan.line_outcomes == {
            2: Outcome.CORRECTED_ECC1,
            5: Outcome.CORRECTED_ECC1,
        }
        assert array.is_clean(2) and array.is_clean(5)

    def test_multibit_fault_classified_uncorrectable(self, group):
        rng, codec, array, plt = group
        array.inject(3, random_error_vector(553, 4, rng))
        scan = scan_group(array, codec, 0, range(8))
        assert scan.uncorrectable == [3]
        # The faulty line's *raw* word participates in the scan words.
        assert scan.words[3] == array.read(3)


class TestReconstructLine:
    def test_rebuilds_single_faulty_line(self, group):
        rng, codec, array, plt = group
        golden = array.golden(3)
        array.inject(3, random_error_vector(553, 6, rng))
        scan = scan_group(array, codec, 0, range(8))
        rebuilt = reconstruct_line(array, codec, plt, scan, 3)
        assert rebuilt == golden
        assert array.is_clean(3)
        assert scan.uncorrectable == []
        assert scan.line_outcomes[3] is Outcome.CORRECTED_RAID4

    def test_rebuild_with_other_single_bit_faults(self, group):
        rng, codec, array, plt = group
        array.inject(0, 1 << 5)           # single-bit, fixed by the scan
        array.inject(6, random_error_vector(553, 3, rng))
        scan = scan_group(array, codec, 0, range(8))
        assert reconstruct_line(array, codec, plt, scan, 6) == array.golden(6)

    def test_rebuild_fails_when_second_line_corrupt(self, group):
        rng, codec, array, plt = group
        array.inject(1, random_error_vector(553, 2, rng))
        array.inject(4, random_error_vector(553, 2, rng))
        scan = scan_group(array, codec, 0, range(8))
        # Rebuilding 1 XORs in 4's corruption: CRC rejects the candidate.
        assert reconstruct_line(array, codec, plt, scan, 1) is None
        assert not array.is_clean(1)

    def test_rejects_non_member(self, group):
        rng, codec, array, plt = group
        scan = scan_group(array, codec, 0, range(4))
        with pytest.raises(ValueError):
            reconstruct_line(array, codec, plt, scan, 7)
