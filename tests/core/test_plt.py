"""Unit tests for the Parity Line Table."""

import random

import pytest

from repro.coding.parity import xor_reduce
from repro.core.plt_ import ParityLineTable


class TestParityLineTable:
    def test_initial_state(self):
        plt = ParityLineTable(4, 16)
        assert all(plt.parity(g) == 0 for g in range(4))

    def test_incremental_update_tracks_rebuild(self):
        rng = random.Random(1)
        plt = ParityLineTable(1, 64)
        members = [0] * 8
        for _ in range(200):
            slot = rng.randrange(8)
            new = rng.getrandbits(64)
            plt.update(0, members[slot], new)
            members[slot] = new
        assert plt.parity(0) == xor_reduce(members)
        assert plt.mismatch(0, members) == 0

    def test_mismatch_exposes_error_positions(self):
        plt = ParityLineTable(1, 16)
        members = [0xAAAA, 0x5555]
        plt.rebuild(0, members)
        members[0] ^= 0x0101
        assert plt.mismatch(0, members) == 0x0101

    def test_write_traffic_counter(self):
        plt = ParityLineTable(2, 16)
        plt.update(0, 0, 1)
        plt.update(1, 0, 2)
        assert plt.write_updates == 2

    def test_storage_accounting_paper_scale(self):
        # 2048 groups of 553-bit parity lines: ~138 KB per table; the
        # paper rounds to 128 KB using 512-bit data-width parity.
        plt = ParityLineTable(2048, 553)
        assert plt.storage_bytes == (2048 * 553 + 7) // 8
        assert plt.amortised_bits_per_line(1 << 20) == pytest.approx(
            2048 * 553 / (1 << 20)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ParityLineTable(0, 8)
        with pytest.raises(ValueError):
            ParityLineTable(4, 0)
        plt = ParityLineTable(4, 8)
        with pytest.raises(IndexError):
            plt.parity(4)
        with pytest.raises(ValueError):
            plt.update(0, 0, 1 << 8)
        with pytest.raises(ValueError):
            plt.amortised_bits_per_line(0)
