"""Unit and property tests for the RAID-Group hash functions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouping import GroupMapper, SkewedGroupMapper, never_colocated


class TestGroupMapper:
    def test_consecutive_grouping(self):
        mapper = GroupMapper(16, 4)
        assert mapper.num_groups == 4
        assert mapper.group_of(0) == 0
        assert mapper.group_of(5) == 1
        assert mapper.members(1) == [4, 5, 6, 7]

    def test_membership_is_partition(self):
        mapper = GroupMapper(64, 8)
        seen = sorted(f for g in range(mapper.num_groups) for f in mapper.members(g))
        assert seen == list(range(64))

    def test_member_group_consistency(self):
        mapper = GroupMapper(128, 16)
        for group in range(mapper.num_groups):
            for frame in mapper.members(group):
                assert mapper.group_of(frame) == group

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupMapper(16, 3)      # not a power of two
        with pytest.raises(ValueError):
            GroupMapper(17, 4)      # does not tile
        with pytest.raises(ValueError):
            GroupMapper(16, 1)      # trivial group
        with pytest.raises(IndexError):
            GroupMapper(16, 4).group_of(16)


class TestSkewedGroupMapper:
    def test_paper_figure5_example(self):
        # 16 lines, 4-line groups: Hash-2 groups are strided by 4.
        mapper = SkewedGroupMapper(16, 4)
        assert mapper.members(mapper.group_of(0)) == [0, 4, 8, 12]
        assert mapper.members(mapper.group_of(1)) == [1, 5, 9, 13]

    def test_membership_is_partition(self):
        mapper = SkewedGroupMapper(256, 8)
        seen = sorted(f for g in range(mapper.num_groups) for f in mapper.members(g))
        assert seen == list(range(256))

    def test_member_group_consistency(self):
        mapper = SkewedGroupMapper(1024, 16)
        for group in range(0, mapper.num_groups, 7):
            for frame in mapper.members(group):
                assert mapper.group_of(frame) == group

    def test_requires_square_capacity(self):
        with pytest.raises(ValueError):
            SkewedGroupMapper(32, 8)  # needs >= 64 frames

    def test_larger_than_square_capacity(self):
        # 4x the minimum: high frame bits join the group id.
        mapper = SkewedGroupMapper(256, 8)
        assert mapper.num_groups == 32


class TestSkewInvariant:
    """Section V-A: no two frames share a group under both hashes."""

    @pytest.mark.parametrize("num_frames,group_size", [(16, 4), (256, 8), (4096, 64)])
    def test_exhaustive_within_first_hash1_group(self, num_frames, group_size):
        hash1 = GroupMapper(num_frames, group_size)
        hash2 = SkewedGroupMapper(num_frames, group_size)
        frames = hash1.members(0)
        for i, frame_a in enumerate(frames):
            for frame_b in frames[i + 1 :]:
                assert never_colocated(hash1, hash2, frame_a, frame_b)

    def test_never_colocated_requires_distinct(self):
        hash1 = GroupMapper(16, 4)
        hash2 = SkewedGroupMapper(16, 4)
        with pytest.raises(ValueError):
            never_colocated(hash1, hash2, 3, 3)


@settings(max_examples=200)
@given(st.integers(min_value=0, max_value=4095), st.integers(min_value=0, max_value=4095))
def test_property_skew_invariant_4096(frame_a, frame_b):
    if frame_a == frame_b:
        return
    hash1 = GroupMapper(4096, 64)
    hash2 = SkewedGroupMapper(4096, 64)
    assert never_colocated(hash1, hash2, frame_a, frame_b)


@settings(max_examples=100)
@given(st.integers(min_value=0, max_value=(1 << 20) - 1))
def test_property_paper_scale_hashes_consistent(frame):
    # The paper's 2^20-frame, 512-line-group configuration.
    hash1 = GroupMapper(1 << 20, 512)
    hash2 = SkewedGroupMapper(1 << 20, 512)
    assert frame in hash1.members(hash1.group_of(frame))
    assert frame in hash2.members(hash2.group_of(frame))
