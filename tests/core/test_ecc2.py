"""Tests for the ECC-2 line codec (section VII-G enhancement)."""

import random

import pytest

from repro.coding.bitvec import random_error_vector
from repro.core.ecc2 import ECC2Layout, ECC2LineCodec
from repro.core.engine import SuDokuY, SuDokuZ
from repro.core.linecodec import DecodeStatus
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray


@pytest.fixture(scope="module")
def codec():
    return ECC2LineCodec()


class TestLayout:
    def test_dimensions(self, codec):
        layout = codec.layout
        assert layout.data_bits == 512
        assert layout.crc_bits == 31
        assert layout.ecc_bits == 20          # 2 errors x m=10
        assert layout.stored_bits == 563
        assert layout.overhead_bits == 51     # still below ECC-6's 60

    def test_validation(self):
        with pytest.raises(ValueError):
            ECC2Layout(data_bits=100)
        with pytest.raises(ValueError):
            ECC2Layout(crc_bits=16)
        with pytest.raises(ValueError):
            ECC2Layout(t=0)


class TestCodec:
    def test_clean_roundtrip(self, codec):
        rng = random.Random(81)
        for _ in range(10):
            data = rng.getrandbits(512)
            word = codec.encode(data)
            assert codec.verify(word)
            decode = codec.decode(word)
            assert decode.status is DecodeStatus.CLEAN
            assert decode.data == data
            assert codec.extract_data(word) == data

    @pytest.mark.parametrize("weight", [1, 2])
    def test_corrects_up_to_two(self, codec, weight):
        rng = random.Random(weight)
        data = rng.getrandbits(512)
        word = codec.encode(data)
        for _ in range(15):
            vector = random_error_vector(codec.stored_bits, weight, rng)
            decode = codec.decode(word ^ vector)
            assert decode.status is DecodeStatus.CORRECTED
            assert decode.word == word
            assert decode.data == data

    def test_three_faults_uncorrectable(self, codec):
        rng = random.Random(83)
        data = rng.getrandbits(512)
        word = codec.encode(data)
        for _ in range(15):
            vector = random_error_vector(codec.stored_bits, 3, rng)
            assert codec.decode(word ^ vector).status is DecodeStatus.UNCORRECTABLE

    def test_sdr_trial_resurrects_three_fault_line(self, codec):
        rng = random.Random(84)
        data = rng.getrandbits(512)
        word = codec.encode(data)
        vector = random_error_vector(codec.stored_bits, 3, rng)
        corrupted = word ^ vector
        fault_positions = [p for p in range(codec.stored_bits) if (vector >> p) & 1]
        assert codec.try_flip_and_repair(corrupted, fault_positions[0]) == word

    def test_sdr_trial_wrong_position_fails(self, codec):
        rng = random.Random(85)
        data = rng.getrandbits(512)
        word = codec.encode(data)
        vector = random_error_vector(codec.stored_bits, 4, rng)
        wrong = next(p for p in range(codec.stored_bits) if not (vector >> p) & 1)
        assert codec.try_flip_and_repair(word ^ vector, wrong) is None

    def test_position_bounds(self, codec):
        with pytest.raises(ValueError):
            codec.try_flip_and_repair(0, codec.stored_bits)


class TestEngineIntegration:
    def test_sudoku_y_with_ecc2_survives_dual_three_fault(self, codec):
        rng = random.Random(86)
        array = STTRAMArray(256, codec.stored_bits)
        engine = SuDokuY(array, group_size=16, codec=codec)
        for frame in range(256):
            engine.write_data(frame, rng.getrandbits(512))
        # Dual 3-fault lines defeat ECC-1 SuDoku-Y but not the ECC-2 one.
        array.inject(1, random_error_vector(codec.stored_bits, 3, rng))
        array.inject(2, random_error_vector(codec.stored_bits, 3, rng))
        counts = engine.scrub_frames([1, 2])
        assert "due" not in counts
        assert array.is_clean(1) and array.is_clean(2)

    def test_sudoku_z_with_ecc2_dual_four_fault_via_hash2(self, codec):
        rng = random.Random(87)
        array = STTRAMArray(1024, codec.stored_bits)
        engine = SuDokuZ(array, group_size=32, codec=codec)
        for frame in range(1024):
            engine.write_data(frame, rng.getrandbits(512))
        array.inject(1, random_error_vector(codec.stored_bits, 4, rng))
        array.inject(2, random_error_vector(codec.stored_bits, 4, rng))
        counts = engine.scrub_frames([1, 2])
        assert "due" not in counts
        assert counts.get("corrected_hash2") == 2

    def test_outcome_data_integrity(self, codec):
        rng = random.Random(88)
        array = STTRAMArray(256, codec.stored_bits)
        engine = SuDokuY(array, group_size=16, codec=codec)
        payload = rng.getrandbits(512)
        engine.write_data(7, payload)
        array.inject(7, random_error_vector(codec.stored_bits, 2, rng))
        data, outcome = engine.read_data(7)
        assert data == payload
        assert outcome is Outcome.CORRECTED_ECC1
