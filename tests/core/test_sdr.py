"""Unit tests for Sequential Data Resurrection (section IV)."""

import random

import pytest

from repro.coding.bitvec import random_error_vector
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.core.plt_ import ParityLineTable
from repro.core.raid4 import reconstruct_line, scan_group
from repro.core.sdr import resurrect
from repro.sttram.array import STTRAMArray

GROUP = 16
WIDTH = 553


@pytest.fixture
def group():
    rng = random.Random(77)
    codec = LineCodec()
    array = STTRAMArray(GROUP, codec.stored_bits)
    plt = ParityLineTable(1, codec.stored_bits)
    words = []
    for frame in range(GROUP):
        word = codec.encode(rng.getrandbits(512))
        array.write(frame, word)
        words.append(word)
    plt.rebuild(0, words)
    return rng, codec, array, plt


def scan(codec, array):
    return scan_group(array, codec, 0, range(GROUP))


def inject_two_bit(array, rng, frame, positions=None):
    if positions is None:
        vector = random_error_vector(WIDTH, 2, rng)
    else:
        vector = 0
        for position in positions:
            vector |= 1 << position
    array.inject(frame, vector)
    return vector


class TestFig3Scenarios:
    def test_case1_no_overlap(self, group):
        """Fig. 3(a): disjoint fault pairs -> both lines recovered."""
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 1, [10, 20])
        inject_two_bit(array, rng, 2, [30, 40])
        state = scan(codec, array)
        report = resurrect(array, codec, plt, state, max_mismatches=6)
        # SDR resurrects at least one line; RAID-4 finishes a survivor.
        if state.uncorrectable:
            assert len(state.uncorrectable) == 1
            assert reconstruct_line(
                array, codec, plt, state, state.uncorrectable[0]
            ) is not None
        assert array.is_clean(1) and array.is_clean(2)
        assert report.trials > 0

    def test_case2_one_overlap(self, group):
        """Fig. 3(b): one shared position -> still fully recoverable."""
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 1, [10, 20])
        inject_two_bit(array, rng, 2, [10, 40])
        state = scan(codec, array)
        resurrect(array, codec, plt, state, max_mismatches=6)
        if state.uncorrectable:
            assert len(state.uncorrectable) == 1
            assert reconstruct_line(
                array, codec, plt, state, state.uncorrectable[0]
            ) is not None
        assert array.is_clean(1) and array.is_clean(2)

    def test_case3_full_overlap_unrecoverable(self, group):
        """Fig. 3(c): identical fault pairs cancel in the parity."""
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 1, [10, 20])
        inject_two_bit(array, rng, 2, [10, 20])
        state = scan(codec, array)
        report = resurrect(array, codec, plt, state, max_mismatches=6)
        assert sorted(state.uncorrectable) == [1, 2]
        assert report.resurrected_frames == []
        assert report.mismatch_positions == 0


class TestFig4AndBeyond:
    def test_two_plus_three_fault_lines(self, group):
        """Fig. 4: SDR fixes the 2-fault line, RAID-4 the 3-fault one."""
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 3, [100, 200])
        array.inject(4, (1 << 300) | (1 << 310) | (1 << 320))
        state = scan(codec, array)
        resurrect(array, codec, plt, state, max_mismatches=6)
        assert state.uncorrectable == [4]
        assert reconstruct_line(array, codec, plt, state, 4) is not None
        assert array.is_clean(3) and array.is_clean(4)

    def test_three_two_fault_lines(self, group):
        """Section IV-C: three 2-fault lines, six mismatches, all repaired."""
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 1, [10, 20])
        inject_two_bit(array, rng, 5, [30, 40])
        inject_two_bit(array, rng, 9, [50, 60])
        state = scan(codec, array)
        resurrect(array, codec, plt, state, max_mismatches=6)
        if state.uncorrectable:
            assert len(state.uncorrectable) == 1
            reconstruct_line(array, codec, plt, state, state.uncorrectable[0])
        for frame in (1, 5, 9):
            assert array.is_clean(frame)

    def test_mismatch_cap_respected(self, group):
        """Four 2-fault lines (8 mismatches) exceed the cap: no SDR."""
        rng, codec, array, plt = group
        for frame, base in ((1, 10), (3, 100), (5, 200), (7, 300)):
            inject_two_bit(array, rng, frame, [base, base + 5])
        state = scan(codec, array)
        report = resurrect(array, codec, plt, state, max_mismatches=6)
        assert report.gave_up_too_many_mismatches
        assert len(state.uncorrectable) == 4

    def test_mismatch_cap_can_be_raised(self, group):
        """The same pattern peels fine with a higher cap (ablation knob)."""
        rng, codec, array, plt = group
        for frame, base in ((1, 10), (3, 100), (5, 200), (7, 300)):
            inject_two_bit(array, rng, frame, [base, base + 5])
        state = scan(codec, array)
        resurrect(array, codec, plt, state, max_mismatches=8)
        if state.uncorrectable:
            assert len(state.uncorrectable) == 1
            reconstruct_line(array, codec, plt, state, state.uncorrectable[0])
        for frame in (1, 3, 5, 7):
            assert array.is_clean(frame)

    def test_mismatch_shrinks_after_each_fix(self, group):
        """Resurrections re-derive the mismatch (loop recomputation)."""
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 2, [10, 20])
        inject_two_bit(array, rng, 6, [30, 40])
        state = scan(codec, array)
        report = resurrect(array, codec, plt, state, max_mismatches=6)
        assert report.mismatch_positions <= 4
        # The per-round history never grows for honest repairs.
        assert report.mismatch_history == sorted(
            report.mismatch_history, reverse=True
        )


class TestSDRReportWidths:
    def test_initial_width_recorded_not_final(self, group):
        """Regression: mismatch_positions was overwritten every round,
        recording the final (smallest) width instead of the initial one."""
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 2, [10, 20])
        inject_two_bit(array, rng, 6, [30, 40])
        state = scan(codec, array)
        report = resurrect(array, codec, plt, state, max_mismatches=6)
        # Two disjoint 2-fault lines: the first round sees all 4 positions.
        assert report.mismatch_positions == 4
        assert report.mismatch_history[0] == 4
        # Later rounds saw fewer positions; the buggy code reported those.
        if len(report.mismatch_history) > 1:
            assert report.mismatch_history[-1] < 4

    def test_peak_width_tracks_maximum(self, group):
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 2, [10, 20])
        inject_two_bit(array, rng, 6, [30, 40])
        state = scan(codec, array)
        report = resurrect(array, codec, plt, state, max_mismatches=6)
        assert report.peak_mismatch_positions == max(report.mismatch_history)
        assert report.peak_mismatch_positions >= report.mismatch_positions

    def test_give_up_records_oversized_initial_width(self, group):
        """Latency sizing needs the width SDR actually faced at entry."""
        rng, codec, array, plt = group
        for frame, base in ((1, 10), (3, 100), (5, 200), (7, 300)):
            inject_two_bit(array, rng, frame, [base, base + 5])
        state = scan(codec, array)
        report = resurrect(array, codec, plt, state, max_mismatches=6)
        assert report.gave_up_too_many_mismatches
        assert report.mismatch_positions == 8
        assert report.mismatch_history == [8]

    def test_zero_mismatch_history(self, group):
        rng, codec, array, plt = group
        inject_two_bit(array, rng, 1, [10, 20])
        inject_two_bit(array, rng, 2, [10, 20])
        state = scan(codec, array)
        report = resurrect(array, codec, plt, state, max_mismatches=6)
        assert report.mismatch_positions == 0
        assert report.peak_mismatch_positions == 0
        assert report.mismatch_history == [0]


class TestRandomisedSDR:
    def test_random_dual_two_fault_recovery_rate(self, group):
        """Random 2+2 patterns recover except for full overlaps (~100%)."""
        rng, codec, array, plt = group
        recovered = 0
        trials = 40
        for _ in range(trials):
            inject_two_bit(array, rng, 1)
            inject_two_bit(array, rng, 2)
            state = scan(codec, array)
            resurrect(array, codec, plt, state, max_mismatches=6)
            if len(state.uncorrectable) == 1:
                reconstruct_line(array, codec, plt, state, state.uncorrectable[0])
            if array.is_clean(1) and array.is_clean(2):
                recovered += 1
            # Heal for the next trial.
            for frame in array.faulty_lines():
                array.restore(frame, array.golden(frame))
        assert recovered == trials  # full overlap probability ~ 6.5e-6
