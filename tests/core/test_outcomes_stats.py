"""Unit tests for outcome taxonomy, stats, latency model, and config."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import PAPER, SuDokuConfig
from repro.core.outcomes import Outcome
from repro.core.stats import CorrectionStats, LatencyModel


class TestOutcome:
    def test_labels_are_values(self):
        assert Outcome.CLEAN.value == "clean"
        assert Outcome.CORRECTED_SDR.value == "corrected_sdr"

    def test_classification_helpers(self):
        assert Outcome.CORRECTED_RAID4.is_corrected
        assert not Outcome.CLEAN.is_corrected
        assert Outcome.DUE.is_failure
        assert Outcome.SDC.is_failure
        assert not Outcome.CORRECTED_HASH2.is_failure


class TestCorrectionStats:
    def test_record_and_count(self):
        stats = CorrectionStats()
        stats.record(Outcome.CLEAN)
        stats.record(Outcome.DUE)
        stats.record(Outcome.SDC)
        assert stats.count(Outcome.CLEAN) == 1
        assert stats.failures == 2

    def test_as_dict(self):
        stats = CorrectionStats()
        stats.record(Outcome.CORRECTED_ECC1)
        stats.raid4_invocations = 3
        snapshot = stats.as_dict()
        assert snapshot["corrected_ecc1"] == 1
        assert snapshot["raid4_invocations"] == 3


class TestLatencyModel:
    def setup_method(self):
        self.latency = LatencyModel()

    def test_syndrome_check_is_one_cycle(self):
        assert self.latency.syndrome_check() == pytest.approx(1 / 3.2e9)

    def test_raid4_repair_matches_paper_order(self):
        # 512 lines at 9 ns: ~4.6 us, the paper's "approximately 4 us per
        # repair" (section III-D).
        assert self.latency.raid4_repair(512) == pytest.approx(4.6e-6, rel=0.05)

    def test_sdr_adds_trials(self):
        base = self.latency.raid4_repair(512)
        assert self.latency.sdr_repair(512, trials=6) > base - 18e-9

    def test_hash2_scales_with_groups(self):
        one = self.latency.hash2_repair(512, groups_read=1)
        three = self.latency.hash2_repair(512, groups_read=3)
        assert three > one

    def test_scrub_pass(self):
        assert self.latency.scrub_pass(1 << 20) == pytest.approx((1 << 20) * 9e-9)


class TestSuDokuConfig:
    def test_paper_defaults(self):
        config = SuDokuConfig()
        assert config.data_bits == 512
        assert config.num_groups == 2048
        assert config.delta_sigma == pytest.approx(3.5)
        assert config.scrub_interval_s == 0.020

    def test_scaled_override(self):
        config = SuDokuConfig().scaled(scrub_interval_s=0.040)
        assert config.scrub_interval_s == 0.040
        assert config.group_size == 512

    def test_validation(self):
        geometry = CacheGeometry(capacity_bytes=1024 * 64, line_bytes=64, ways=4)
        with pytest.raises(ValueError):
            SuDokuConfig(geometry=geometry, group_size=3)
        with pytest.raises(ValueError):
            SuDokuConfig(geometry=geometry, group_size=2048)
        with pytest.raises(ValueError):
            SuDokuConfig(scrub_interval_s=0.0)


class TestPaperConstants:
    def test_headline_invariants(self):
        assert PAPER.overhead_bits_sudoku < PAPER.overhead_bits_ecc6
        assert PAPER.sudoku_z_fit < 1.0 < PAPER.sudoku_y_due_fit
        assert PAPER.sudoku_x_mttf_s < 60
        assert PAPER.crc31_misdetect == pytest.approx(2.0 ** -31)

    def test_scrub_sweep_shape(self):
        intervals = [row[0] for row in PAPER.scrub_sweep]
        assert intervals == [0.010, 0.020, 0.040]
        # FIT worsens with longer intervals for every scheme.
        for column in (2, 3, 4):
            values = [row[column] for row in PAPER.scrub_sweep]
            assert values[0] < values[1] < values[2]
