"""Behavioural tests for the SuDoku-X/Y/Z engines."""

import random

import pytest

from repro.coding.bitvec import random_error_vector
from repro.coding.parity import xor_reduce
from repro.core.config import SuDokuConfig
from repro.core.engine import SuDokuEngine, SuDokuX, SuDokuY, SuDokuZ, build_engine
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.cache.geometry import CacheGeometry
from repro.sttram.array import STTRAMArray

GROUP = 32
NUM_LINES = GROUP * GROUP  # SuDoku-Z needs group^2 frames
WIDTH = 553


def make_engine(level_cls, fill=True, seed=55, **kwargs):
    rng = random.Random(seed)
    codec = LineCodec()
    array = STTRAMArray(NUM_LINES, codec.stored_bits)
    engine = level_cls(array, group_size=GROUP, codec=codec, **kwargs)
    if fill:
        for frame in range(NUM_LINES):
            engine.write_data(frame, rng.getrandbits(512))
    return rng, array, engine


class TestCommonBehaviour:
    def test_format_produces_valid_codewords(self):
        _, array, engine = make_engine(SuDokuX, fill=False)
        assert engine.codec.verify(array.read(0))
        assert engine.scrub_all() == {"clean": NUM_LINES}

    def test_clean_read(self):
        rng, array, engine = make_engine(SuDokuX)
        data, outcome = engine.read_data(7)
        assert outcome is Outcome.CLEAN
        assert engine.codec.encode(data) == array.golden(7)

    def test_single_bit_fault_corrected_on_read(self):
        rng, array, engine = make_engine(SuDokuX)
        array.inject(9, 1 << 123)
        data, outcome = engine.read_data(9)
        assert outcome is Outcome.CORRECTED_ECC1
        assert array.is_clean(9)

    def test_write_path_parity_invariant(self):
        rng, array, engine = make_engine(SuDokuZ)
        for _ in range(300):
            engine.write_data(rng.randrange(NUM_LINES), rng.getrandbits(512))
        for plt, mapper in engine._tables():
            for group in range(0, mapper.num_groups, 11):
                members = mapper.members(group)
                assert plt.parity(group) == xor_reduce(
                    array.read(f) for f in members
                ), f"parity broken for group {group}"

    def test_write_to_faulty_line_keeps_parity_consistent(self):
        rng, array, engine = make_engine(SuDokuY)
        array.inject(3, random_error_vector(WIDTH, 2, rng))
        engine.write_data(3, rng.getrandbits(512))
        group = engine.mapper.group_of(3)
        members = engine.mapper.members(group)
        assert engine.plt.parity(group) == xor_reduce(array.read(f) for f in members)

    def test_from_config_small_geometry(self):
        geometry = CacheGeometry(capacity_bytes=4096 * 64, line_bytes=64, ways=4)
        config = SuDokuConfig(geometry=geometry, group_size=64)
        engine = SuDokuZ.from_config(config)
        assert engine.array.num_lines == 4096
        assert engine.group_size == 64

    def test_build_engine_factory(self):
        codec = LineCodec()
        array = STTRAMArray(NUM_LINES, codec.stored_bits)
        assert isinstance(build_engine("x", array, GROUP, codec=codec), SuDokuX)
        array = STTRAMArray(NUM_LINES, codec.stored_bits)
        assert isinstance(build_engine("Y", array, GROUP, codec=codec), SuDokuY)
        array = STTRAMArray(NUM_LINES, codec.stored_bits)
        assert isinstance(build_engine("z", array, GROUP, codec=codec), SuDokuZ)
        with pytest.raises(ValueError):
            build_engine("w", array, GROUP)

    def test_width_mismatch_rejected(self):
        array = STTRAMArray(NUM_LINES, 100)
        with pytest.raises(ValueError):
            SuDokuX(array, group_size=GROUP)

    def test_storage_overhead_paper_scale_formula(self):
        # At the paper's 512-line groups, overhead is ~43 bits/line.
        codec = LineCodec()
        array = STTRAMArray(512 * 512, codec.stored_bits)
        engine = SuDokuZ(array, group_size=512, codec=codec)
        assert engine.storage_overhead_bits_per_line == pytest.approx(43.16, abs=0.1)


class TestSuDokuX:
    def test_multibit_fault_raid4(self):
        rng, array, engine = make_engine(SuDokuX)
        array.inject(4, random_error_vector(WIDTH, 5, rng))
        data, outcome = engine.read_data(4)
        assert outcome is Outcome.CORRECTED_RAID4
        assert array.is_clean(4)
        assert engine.stats.raid4_invocations == 1

    def test_two_multibit_lines_same_group_due(self):
        rng, array, engine = make_engine(SuDokuX)
        array.inject(1, random_error_vector(WIDTH, 2, rng))
        array.inject(2, random_error_vector(WIDTH, 2, rng))
        counts = engine.scrub_all()
        assert counts.get("due") == 2

    def test_multibit_lines_in_different_groups_ok(self):
        rng, array, engine = make_engine(SuDokuX)
        array.inject(1, random_error_vector(WIDTH, 3, rng))
        array.inject(GROUP + 1, random_error_vector(WIDTH, 3, rng))
        counts = engine.scrub_all()
        assert counts.get("corrected_raid4") == 2
        assert "due" not in counts

    def test_scrub_reports_each_line_once(self):
        rng, array, engine = make_engine(SuDokuX)
        array.inject(0, 1 << 9)
        array.inject(1, random_error_vector(WIDTH, 4, rng))
        counts = engine.scrub_all()
        assert sum(counts.values()) == NUM_LINES


class TestSuDokuY:
    def test_dual_two_fault_sdr(self):
        rng, array, engine = make_engine(SuDokuY)
        array.inject(1, random_error_vector(WIDTH, 2, rng))
        array.inject(2, random_error_vector(WIDTH, 2, rng))
        counts = engine.scrub_all()
        assert "due" not in counts
        assert counts.get("corrected_sdr", 0) >= 1
        assert array.is_clean(1) and array.is_clean(2)

    def test_dual_heavy_fault_due(self):
        rng, array, engine = make_engine(SuDokuY)
        array.inject(1, random_error_vector(WIDTH, 3, rng))
        array.inject(2, random_error_vector(WIDTH, 3, rng))
        counts = engine.scrub_all()
        assert counts.get("due") == 2

    def test_full_overlap_due(self):
        rng, array, engine = make_engine(SuDokuY)
        vector = random_error_vector(WIDTH, 2, rng)
        array.inject(1, vector)
        array.inject(2, vector)
        counts = engine.scrub_all()
        assert counts.get("due") == 2

    def test_sdr_trials_accounted(self):
        rng, array, engine = make_engine(SuDokuY)
        array.inject(1, random_error_vector(WIDTH, 2, rng))
        array.inject(2, random_error_vector(WIDTH, 2, rng))
        engine.scrub_all()
        assert engine.stats.sdr_invocations == 1
        assert engine.stats.sdr_trials >= 1


class TestSuDokuZ:
    def test_dual_heavy_fixed_via_hash2(self):
        rng, array, engine = make_engine(SuDokuZ)
        array.inject(1, random_error_vector(WIDTH, 3, rng))
        array.inject(2, random_error_vector(WIDTH, 3, rng))
        counts = engine.scrub_all()
        assert "due" not in counts
        assert counts.get("corrected_hash2") == 2
        assert array.is_clean(1) and array.is_clean(2)
        assert engine.stats.hash2_invocations == 1

    def test_peeling_through_blocked_hash2_group(self):
        rng, array, engine = make_engine(SuDokuZ)
        # Two heavy lines in one Hash-1 group...
        array.inject(1, random_error_vector(WIDTH, 3, rng))
        array.inject(2, random_error_vector(WIDTH, 3, rng))
        # ...and 2-fault partners congesting line 1's Hash-2 group.
        partners = engine.mapper2.members(engine.mapper2.group_of(1))
        array.inject(partners[3], random_error_vector(WIDTH, 2, rng))
        array.inject(partners[4], random_error_vector(WIDTH, 2, rng))
        counts = engine.scrub_all()
        assert "due" not in counts
        assert not array.faulty_lines()

    def test_doubly_blocked_core_is_due(self):
        rng, array, engine = make_engine(SuDokuZ)
        # Four heavy lines forming a closed blocking square: frames (a, b)
        # share a Hash-1 group; their Hash-2 partners (c, d) are heavy
        # too, and c, d share a Hash-1 group as well.
        a, b = 1, 2
        c = engine.mapper2.members(engine.mapper2.group_of(a))[5]
        d = engine.mapper2.members(engine.mapper2.group_of(b))[5]
        assert engine.mapper.group_of(c) == engine.mapper.group_of(d)
        for frame in (a, b, c, d):
            array.inject(frame, random_error_vector(WIDTH, 3, rng))
        counts = engine.scrub_all()
        assert counts.get("due") == 4

    def test_seven_bit_fault_single_line_recovered(self):
        # ECC-6 would fail a 7-bit fault; SuDoku-Z recovers it via RAID-4.
        rng, array, engine = make_engine(SuDokuZ)
        array.inject(11, random_error_vector(WIDTH, 7, rng))
        data, outcome = engine.read_data(11)
        assert outcome is Outcome.CORRECTED_RAID4
        assert array.is_clean(11)


class TestAudit:
    def test_audit_flags_wrong_restores(self):
        # Force an SDC by corrupting golden-tracking: restore a wrong
        # value through a custom scheme and let the audit catch it.
        rng, array, engine = make_engine(SuDokuX)
        frame = 13
        wrong_word = engine.codec.encode(0x1234)
        array.inject(frame, array.read(frame) ^ wrong_word)  # stored = valid wrong codeword
        counts = engine.scrub_all()
        assert counts.get("sdc") == 1

    def test_audit_disabled_reports_belief(self):
        rng, array, engine = make_engine(SuDokuX, audit=False)
        frame = 13
        wrong_word = engine.codec.encode(0x1234)
        array.inject(frame, array.read(frame) ^ wrong_word)
        counts = engine.scrub_all()
        assert "sdc" not in counts
