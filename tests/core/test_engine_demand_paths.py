"""Demand-access paths: reads and writes hitting live fault states.

Scrub campaigns exercise the batch path; these tests pin down the
on-demand behaviours -- a read landing on a line whose *group* is in a
degraded state, reads racing each other through pending outcomes, and
the engine's bookkeeping across mixed read/write/fault interleavings.
"""

import random

import pytest

from repro.coding.bitvec import random_error_vector
from repro.core.ecc2 import ECC2LineCodec
from repro.core.engine import SuDokuY, SuDokuZ
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray

GROUP = 16
NUM_LINES = 256
CODEC = LineCodec()


def fresh(engine_cls, codec=CODEC, num_lines=NUM_LINES, seed=71):
    array = STTRAMArray(num_lines, codec.stored_bits)
    engine = engine_cls(array, group_size=GROUP, codec=codec)
    rng = random.Random(seed)
    payloads = {}
    for frame in range(num_lines):
        payloads[frame] = rng.getrandbits(512)
        engine.write_data(frame, payloads[frame])
    return array, engine, payloads, rng


class TestDemandReads:
    def test_read_of_clean_line_in_degraded_group(self):
        # A clean line must read CLEAN even while its group holds
        # uncorrectable neighbours.
        array, engine, payloads, rng = fresh(SuDokuY)
        width = CODEC.stored_bits
        array.inject(1, random_error_vector(width, 3, rng))
        array.inject(2, random_error_vector(width, 3, rng))
        data, outcome = engine.read_data(5)   # same group, untouched line
        assert outcome is Outcome.CLEAN
        assert data == payloads[5]

    def test_read_repairs_whole_group_collaterally(self):
        array, engine, payloads, rng = fresh(SuDokuY)
        width = CODEC.stored_bits
        array.inject(3, random_error_vector(width, 2, rng))
        array.inject(4, random_error_vector(width, 2, rng))
        # One demand read triggers the group repair; both lines heal.
        data, outcome = engine.read_data(3)
        assert data == payloads[3]
        assert outcome.is_corrected
        assert array.is_clean(3) and array.is_clean(4)

    def test_read_of_due_line_reports_due_and_preserves_detection(self):
        array, engine, payloads, rng = fresh(SuDokuY)
        width = CODEC.stored_bits
        vector = random_error_vector(width, 2, rng)
        array.inject(6, vector)
        array.inject(7, vector)   # full overlap: Y cannot repair
        data, outcome = engine.read_data(6)
        assert outcome is Outcome.DUE
        # The line is still flagged faulty, never silently served.
        assert not array.is_clean(6)

    def test_repeated_reads_after_repair_are_clean(self):
        array, engine, payloads, rng = fresh(SuDokuZ)
        width = CODEC.stored_bits
        array.inject(9, random_error_vector(width, 4, rng))
        first = engine.read_data(9)
        second = engine.read_data(9)
        assert first[1] is Outcome.CORRECTED_RAID4
        assert second[1] is Outcome.CLEAN
        assert first[0] == second[0] == payloads[9]

    def test_interleaved_reads_writes_faults(self):
        array, engine, payloads, rng = fresh(SuDokuZ, seed=72)
        width = CODEC.stored_bits
        for step in range(300):
            action = rng.random()
            frame = rng.randrange(NUM_LINES)
            if action < 0.4:
                payloads[frame] = rng.getrandbits(512)
                engine.write_data(frame, payloads[frame])
            elif action < 0.8:
                data, outcome = engine.read_data(frame)
                if not outcome.is_failure:
                    assert data == payloads[frame], f"step {step}"
            else:
                array.inject(
                    frame, random_error_vector(width, rng.randint(1, 2), rng)
                )
        # Converge: a final scrub leaves no corruption behind.
        counts = engine.scrub_all()
        assert counts.get("sdc", 0) == 0


class TestECC2DemandPaths:
    CODEC2 = ECC2LineCodec()

    def test_demand_read_two_fault_local_fix(self):
        array, engine, payloads, rng = fresh(SuDokuZ, codec=self.CODEC2, seed=73)
        array.inject(4, random_error_vector(self.CODEC2.stored_bits, 2, rng))
        data, outcome = engine.read_data(4)
        assert outcome is Outcome.CORRECTED_ECC1
        assert data == payloads[4]

    def test_demand_read_three_fault_needs_group(self):
        array, engine, payloads, rng = fresh(SuDokuZ, codec=self.CODEC2, seed=74)
        array.inject(8, random_error_vector(self.CODEC2.stored_bits, 3, rng))
        data, outcome = engine.read_data(8)
        assert outcome is Outcome.CORRECTED_RAID4
        assert data == payloads[8]
