"""``python -m repro`` -- see :mod:`repro.cli`.

One-shot subcommands (``campaign``, ``raresim``, ``scenario``, ...) run
and exit; ``python -m repro serve`` starts the long-running campaign
service (:mod:`repro.serve`).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
