"""Crash-safe campaign checkpoints and the wall-clock deadline watchdog.

A multi-hour campaign must survive being killed: every
``--checkpoint-every`` intervals (and on SIGINT or deadline expiry) the
campaign writes a JSON snapshot -- RNG states, completed-interval
counter, and the running aggregates -- via the same atomic
tmp-file+rename helper the telemetry exporters use.  ``--resume``
restores the snapshot and continues; because RNG state is captured
*between* intervals, a resumed campaign replays the exact random
sequence an uninterrupted run would have seen, so the final aggregates
are bit-identical (the acceptance property ``tests/reliability/
test_resume.py`` pins down).

Checkpoints are validated up front: a missing file, corrupt JSON, a
snapshot from a different campaign kind, or mismatched campaign
parameters all raise :class:`CheckpointError` with a one-line message --
never a traceback from deep inside the interval loop.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.atomicio import atomic_write_json

#: Format version stamped into every checkpoint file.
CHECKPOINT_VERSION = 1


class CheckpointError(Exception):
    """A checkpoint could not be loaded, validated, or applied."""


class Deadline:
    """Wall-clock watchdog: end a campaign cleanly with partial results.

    :param seconds: budget from *now*; must be positive.
    :param clock: monotonic clock, injectable for tests.

    ``reason`` is the ``stop_reason`` a campaign records when this
    watchdog fires; deadline-compatible adapters (the job-cancellation
    hook in :mod:`repro.parallel.runner`) override it so a truncated
    result says *why* it stopped.
    """

    #: stop_reason recorded by campaign loops when :meth:`expired` fires.
    reason = "deadline"

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if not seconds > 0.0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        self.seconds = seconds
        self._clock = clock
        self._end = clock() + seconds

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._end - self._clock()

    def expired(self) -> bool:
        """Has the budget run out?"""
        return self.remaining() <= 0.0


class CancelWatch:
    """Deadline-compatible watchdog driven by a cancellation callback.

    Campaign loops already poll ``deadline.expired()`` at every interval
    boundary and record ``deadline.reason`` when it fires; wrapping a
    job-cancellation callback in this adapter reuses that exact
    machinery, so a cancelled job stops cleanly at a trial boundary with
    checkpoints flushed -- same as a deadline expiry, but the truncated
    result says ``stop_reason="cancelled"``.

    :param poll: zero-argument callable; truthy once the job is
        cancelled.  Polled at interval boundaries, so it must be cheap.
    :param deadline: optional wall-clock budget to compose with; when it
        fires first, ``reason`` stays ``"deadline"``.
    """

    def __init__(
        self,
        poll: Callable[[], bool],
        deadline: Optional[Deadline] = None,
    ) -> None:
        self._poll = poll
        self._deadline = deadline
        self._cancelled = False

    @property
    def reason(self) -> str:
        """Why :meth:`expired` fired (valid once it has returned True)."""
        return "cancelled" if self._cancelled else "deadline"

    def remaining(self) -> float:
        """Seconds left on the composed deadline (inf without one)."""
        if self._deadline is None:
            return float("inf")
        return self._deadline.remaining()

    def expired(self) -> bool:
        """True once the callback fires or the composed deadline runs out."""
        if self._cancelled or self._poll():
            self._cancelled = True
            return True
        return self._deadline is not None and self._deadline.expired()


@dataclass
class Checkpointer:
    """Checkpoint schedule + destination for one campaign run.

    :param path: where snapshots are written (atomically).
    :param every: write a snapshot each time this many intervals/trials
        complete; ``0`` means only on interrupt, deadline expiry, or
        completion.
    :param resume: a payload previously returned by
        :func:`load_checkpoint` to continue from, or ``None`` for a
        fresh run.
    """

    path: str
    every: int = 0
    resume: Optional[Dict[str, object]] = None
    writes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("checkpoint path must be non-empty")
        if self.every < 0:
            raise ValueError("checkpoint interval must be >= 0")

    def due(self, completed: int) -> bool:
        """Is a periodic snapshot owed after ``completed`` units?"""
        return self.every > 0 and completed > 0 and completed % self.every == 0

    def save(self, payload: Dict[str, object]) -> None:
        """Write a snapshot atomically."""
        atomic_write_json(self.path, payload)
        self.writes += 1


def job_checkpoint_path(directory: str, digest: str) -> str:
    """Checkpoint path for a serve job, keyed by its content digest.

    Jobs are deduplicated by digest, so the checkpoint must be too: a
    resubmitted spec resumes the partial work of its earlier submission
    regardless of job id, tenant, or priority.
    """
    if not digest or any(ch in digest for ch in "/\\."):
        raise ValueError(f"invalid job digest {digest!r}")
    return os.path.join(directory, f"job-{digest}.ck.json")


def build_payload(
    kind: str,
    config: Dict[str, object],
    completed: int,
    aggregates: Dict[str, object],
    rng: Dict[str, object],
) -> Dict[str, object]:
    """Assemble a checkpoint payload in the canonical shape."""
    return {
        "version": CHECKPOINT_VERSION,
        "kind": kind,
        "config": dict(config),
        "completed": completed,
        "aggregates": dict(aggregates),
        "rng": dict(rng),
    }


def load_checkpoint(path: str, kind: str) -> Dict[str, object]:
    """Load and structurally validate a checkpoint file.

    :raises CheckpointError: on a missing/unreadable file, corrupt JSON,
        wrong format version, or a snapshot of a different campaign kind.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {error}")
    except json.JSONDecodeError as error:
        raise CheckpointError(f"corrupt checkpoint {path!r}: {error}")
    if not isinstance(payload, dict):
        raise CheckpointError(f"corrupt checkpoint {path!r}: not a JSON object")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    if payload.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path!r} is a {payload.get('kind')!r} snapshot, "
            f"not {kind!r}"
        )
    for key in ("config", "completed", "aggregates", "rng"):
        if key not in payload:
            raise CheckpointError(f"checkpoint {path!r} is missing {key!r}")
    return payload


def require_config_match(
    payload: Dict[str, object], config: Dict[str, object]
) -> None:
    """Refuse to resume under different campaign parameters.

    :raises CheckpointError: naming the first mismatched key.
    """
    saved = payload.get("config")
    if not isinstance(saved, dict):
        raise CheckpointError("checkpoint config block is corrupt")
    for key in sorted(set(saved) | set(config)):
        if saved.get(key) != config.get(key):
            raise CheckpointError(
                f"checkpoint was taken with {key}={saved.get(key)!r} but this "
                f"run uses {key}={config.get(key)!r}; refusing to resume"
            )


# -- RNG state (de)serialisation --------------------------------------------------


def numpy_rng_state(generator) -> Dict[str, object]:
    """JSON-serialisable snapshot of a ``numpy.random.Generator``."""
    state = generator.bit_generator.state
    return json.loads(json.dumps(state, default=int))


def restore_numpy_rng_state(generator, state: Dict[str, object]) -> None:
    """Restore a :func:`numpy_rng_state` snapshot onto ``generator``."""
    expected = type(generator.bit_generator).__name__
    saved = state.get("bit_generator") if isinstance(state, dict) else None
    if saved != expected:
        raise CheckpointError(
            f"checkpoint RNG is {saved!r} but this run uses {expected!r}"
        )
    try:
        generator.bit_generator.state = state
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"checkpoint RNG state is corrupt: {error}")


def python_rng_state(rng) -> List[object]:
    """JSON-serialisable snapshot of a ``random.Random``."""
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def restore_python_rng_state(rng, state) -> None:
    """Restore a :func:`python_rng_state` snapshot onto ``rng``."""
    try:
        version, internal, gauss = state
        rng.setstate((version, tuple(internal), gauss))
    except (TypeError, ValueError) as error:
        raise CheckpointError(f"checkpoint RNG state is corrupt: {error}")
