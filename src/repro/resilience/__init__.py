"""repro.resilience -- chaos testing and crash-safe campaign machinery.

Two halves, both in service of the same question the paper asks of the
hardware: *what survives when things fail?*

* :mod:`repro.resilience.chaos` -- fault injection for the correction
  **metadata** (PLT parity words, group mapping, scrub schedule), the
  structure the paper -- and, previously, this reproduction -- treated
  as axiomatically immune.  The engines respond with CRC verification,
  group quarantine, CRC-verified rebuilds, and the explicit
  ``metadata_due`` outcome instead of silent corruption.
* :mod:`repro.resilience.checkpoint` -- crash-safe, bit-identically
  resumable campaign state: atomic JSON snapshots of RNG streams and
  aggregates, a wall-clock :class:`Deadline` watchdog, and the
  :class:`CheckpointError` taxonomy the CLI turns into one-line errors.

See ``docs/resilience.md`` for the full story.
"""

from repro.resilience.chaos import ChaosInjector, ChaosPolicy
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CancelWatch,
    Checkpointer,
    CheckpointError,
    Deadline,
    build_payload,
    job_checkpoint_path,
    load_checkpoint,
    numpy_rng_state,
    python_rng_state,
    require_config_match,
    restore_numpy_rng_state,
    restore_python_rng_state,
)

__all__ = [
    "ChaosPolicy",
    "ChaosInjector",
    "CHECKPOINT_VERSION",
    "CancelWatch",
    "Checkpointer",
    "CheckpointError",
    "Deadline",
    "build_payload",
    "job_checkpoint_path",
    "load_checkpoint",
    "require_config_match",
    "numpy_rng_state",
    "restore_numpy_rng_state",
    "python_rng_state",
    "restore_python_rng_state",
]
