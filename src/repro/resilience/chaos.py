"""Chaos fault injection for the correction *metadata*.

The paper's design assumption -- and the reproduction's, until now -- is
that the SRAM Parity Line Table never fails.  Field studies of deployed
memory systems disagree: ECC and metadata structures take faults too,
and transient faults propagate through the very logic meant to contain
them.  This module drops the axiom deliberately, as a test harness:

* **PLT bit flips** -- raw SRAM upsets in parity words, applied behind
  the entry CRC's back (``ParityLineTable.corrupt``); the engine's CRC
  verification is expected to catch them.
* **Group-mapping perturbation** -- the PLT row decoder resolves the
  wrong row, modelled as an entry swap between two groups of the same
  table (``ParityLineTable.swap``).  Each entry remains internally
  consistent, but the location-keyed entry CRC (computed over the group
  index as well as the parity) fails at the new slot -- the defence that
  matters, because the linearity of ECC-1/CRC-31/XOR would otherwise
  let the wrong parity reconstruct a valid-but-wrong codeword.
* **Scrub-visit drop / duplicate** -- the scrub scheduler skips a line
  it owed a visit, or visits one twice.

Every knob defaults to zero; a :class:`ChaosInjector` built from the
all-zero :class:`ChaosPolicy` consumes no randomness and perturbs
nothing, so campaigns with chaos disabled remain bit-identical to
campaigns that never heard of this module.  The injector keeps its own
``random.Random`` stream, fully separate from the campaign's fault RNG,
so enabling chaos never shifts the data-fault sequence either.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ChaosPolicy:
    """Per-interval rates for each metadata fault class.

    :param plt_flip_rate: per-group, per-interval probability that one
        random bit of the group's parity word flips (CRC not updated).
    :param map_swap_rate: per-group, per-interval probability that the
        group's PLT entry is swapped with a random other group's entry
        (parity and CRC move together -- a mapping fault, not a cell
        fault).
    :param visit_drop_rate: per scheduled scrub visit, probability the
        visit is silently dropped.
    :param visit_duplicate_rate: per scheduled scrub visit, probability
        the visit is performed twice.
    """

    plt_flip_rate: float = 0.0
    map_swap_rate: float = 0.0
    visit_drop_rate: float = 0.0
    visit_duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")

    @property
    def enabled(self) -> bool:
        """Does this policy perturb anything at all?"""
        return any(rate > 0.0 for rate in self.as_dict().values())

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form (checkpoint fingerprints, reports)."""
        return asdict(self)


class ChaosInjector:
    """Applies a :class:`ChaosPolicy` to an engine, interval by interval.

    The injector is deterministic given its seed/rng and records every
    event it applies.  It never touches the campaign's fault RNG.
    """

    def __init__(
        self,
        policy: ChaosPolicy,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        self.policy = policy
        self._rng = rng if rng is not None else random.Random(seed)
        self.events: Counter = Counter()

    # -- metadata corruption ------------------------------------------------------

    def corrupt_metadata(self, engine) -> Counter:
        """Apply one interval's worth of PLT corruption to every table.

        ``engine`` is any SuDoku engine (its ``_tables()`` pairs are the
        chaos surface).  Returns the events applied this call.
        """
        applied: Counter = Counter()
        policy = self.policy
        for plt, _mapper in engine._tables():
            if policy.plt_flip_rate > 0.0:
                for group in range(plt.num_groups):
                    if self._rng.random() < policy.plt_flip_rate:
                        bit = self._rng.randrange(plt.line_bits)
                        plt.corrupt(group, 1 << bit)
                        applied["plt_flips"] += 1
            if policy.map_swap_rate > 0.0 and plt.num_groups > 1:
                for group in range(plt.num_groups):
                    if self._rng.random() < policy.map_swap_rate:
                        other = self._rng.randrange(plt.num_groups - 1)
                        if other >= group:
                            other += 1
                        plt.swap(group, other)
                        applied["map_swaps"] += 1
        self.events.update(applied)
        return applied

    # -- scrub schedule perturbation ----------------------------------------------

    def perturb_visits(self, frames: List[int]) -> Tuple[List[int], Counter]:
        """Drop and/or duplicate scheduled scrub visits.

        Returns the perturbed visit list plus the events applied.  With
        both rates zero the input list is returned unchanged and no
        randomness is consumed.
        """
        policy = self.policy
        if policy.visit_drop_rate <= 0.0 and policy.visit_duplicate_rate <= 0.0:
            return frames, Counter()
        applied: Counter = Counter()
        visits: List[int] = []
        for frame in frames:
            if (
                policy.visit_drop_rate > 0.0
                and self._rng.random() < policy.visit_drop_rate
            ):
                applied["visits_dropped"] += 1
                continue
            visits.append(frame)
            if (
                policy.visit_duplicate_rate > 0.0
                and self._rng.random() < policy.visit_duplicate_rate
            ):
                visits.append(frame)
                applied["visits_duplicated"] += 1
        self.events.update(applied)
        return visits, applied

    # -- checkpoint support ---------------------------------------------------------

    def rng_state(self) -> List[object]:
        """JSON-serialisable snapshot of the chaos RNG stream."""
        version, internal, gauss = self._rng.getstate()
        return [version, list(internal), gauss]

    def restore_rng_state(self, state) -> None:
        """Restore a snapshot produced by :meth:`rng_state`."""
        version, internal, gauss = state
        self._rng.setstate((version, tuple(internal), gauss))
