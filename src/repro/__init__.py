"""repro -- a from-scratch reproduction of SuDoku (DSN 2019).

SuDoku is a resilient cache architecture that tolerates high rates of
transient bit failures (scaled STTRAM's thermal flips) with per-line
ECC-1 + CRC-31 and region RAID-4, enhanced by Sequential Data
Resurrection and skewed dual-hash parity groups.

Public API highlights
---------------------

* :class:`repro.core.engine.SuDokuX` / ``SuDokuY`` / ``SuDokuZ`` -- the
  functional correction engines over a bit-level STTRAM array.
* :class:`repro.core.config.SuDokuConfig` and :data:`repro.core.config.PAPER`
  -- configuration plus the registry of paper-quoted constants.
* :mod:`repro.reliability` -- analytical FIT/MTTF models and the
  Monte-Carlo fault-injection harness behind every table in the paper.
* :mod:`repro.perf` -- the trace-driven multicore performance and energy
  simulator behind Figures 8 and 9.
* :mod:`repro.coding`, :mod:`repro.sttram`, :mod:`repro.cache` -- the
  substrates (codes, device physics, cache model) everything builds on.

Quickstart
----------

>>> from repro import SuDokuZ, STTRAMArray, LineCodec
>>> codec = LineCodec()
>>> array = STTRAMArray(num_lines=4096, line_bits=codec.stored_bits)
>>> engine = SuDokuZ(array, group_size=64)
>>> engine.write_data(0, 0xDEADBEEF)
>>> array.inject(0, error_vector=0b101)          # two-bit transient fault
>>> data, outcome = engine.read_data(0)
>>> hex(data), str(outcome)
('0xdeadbeef', 'corrected_raid4')
"""

from repro.cache.geometry import CacheGeometry
from repro.core.config import PAPER, PaperConstants, SuDokuConfig
from repro.core.engine import SuDokuEngine, SuDokuX, SuDokuY, SuDokuZ, build_engine
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.sttram.array import STTRAMArray
from repro.sttram.faults import TransientFaultInjector
from repro.sttram.scrub import ScrubEngine, ScrubReport

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "PAPER",
    "PaperConstants",
    "SuDokuConfig",
    "SuDokuEngine",
    "SuDokuX",
    "SuDokuY",
    "SuDokuZ",
    "build_engine",
    "LineCodec",
    "Outcome",
    "STTRAMArray",
    "TransientFaultInjector",
    "ScrubEngine",
    "ScrubReport",
    "__version__",
]
