"""Discovering and executing the benchmark suite for ``repro bench``.

The benchmarks stay ordinary pytest files (``benchmarks/bench_*.py``)
so ``pytest benchmarks/ --benchmark-only`` keeps working unchanged;
this module is the programmatic driver the CLI uses: select a subset,
run it in a pytest subprocess pointed at a trajectory store, and report
which bench ids recorded new entries (by diffing store counts, so the
answer is exact even when a benchmark emits several exhibits or none).

``pytest-benchmark`` is optional here: when the plugin is installed the
run passes ``--benchmark-disable`` (the fixture degrades to a plain
call -- the trajectory wall clock is our timing source); when it is
missing, the benchmark conftest provides a stand-in fixture, so the
suite runs on a bare pytest too.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.bench.store import STORE_ENV, TrajectoryStore

#: Default benchmark directory, relative to the repository checkout.
DEFAULT_BENCH_DIR = "benchmarks"


def discover(bench_dir: str, only: Sequence[str] = ()) -> List[pathlib.Path]:
    """Benchmark files under ``bench_dir`` matching any ``only`` filter.

    Filters are case-insensitive substrings of the file stem (so
    ``--only scrub`` selects ``bench_scrub_fastpath.py``); with no
    filters, the whole suite is selected.  Sorted for run-order
    determinism.
    """
    root = pathlib.Path(bench_dir)
    files = sorted(root.glob("bench_*.py"))
    if not only:
        return files
    wanted = [pattern.lower() for pattern in only]
    return [
        path for path in files
        if any(pattern in path.stem.lower() for pattern in wanted)
    ]


def _benchmark_plugin_available() -> bool:
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass
class RunOutcome:
    """What one ``repro bench`` execution produced."""

    exit_code: int
    files: List[str] = field(default_factory=list)
    recorded: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


def run_benchmarks(
    files: Sequence[pathlib.Path],
    store_root: str,
    pytest_args: Sequence[str] = (),
) -> RunOutcome:
    """Run benchmark files in a pytest subprocess, recording trajectories.

    The subprocess inherits the current interpreter and environment,
    with ``REPRO_BENCH_STORE`` pointing at ``store_root`` and the
    installed ``repro`` package location prepended to ``PYTHONPATH``
    (so an uninstalled ``PYTHONPATH=src`` invocation propagates).
    Returns the pytest exit code plus the bench ids whose trajectories
    grew during the run.
    """
    if not files:
        return RunOutcome(exit_code=0)
    store = TrajectoryStore(store_root)
    before = store.counts()
    command = [sys.executable, "-m", "pytest", "-q"]
    if _benchmark_plugin_available():
        command.append("--benchmark-disable")
    command.extend(str(path) for path in files)
    command.extend(pytest_args)
    environment = dict(os.environ)
    environment[STORE_ENV] = str(store_root)
    package_root = str(pathlib.Path(__file__).resolve().parents[2])
    existing = environment.get("PYTHONPATH", "")
    environment["PYTHONPATH"] = (
        package_root + (os.pathsep + existing if existing else "")
    )
    completed = subprocess.run(command, env=environment)
    after = store.counts()
    recorded = sorted(
        bench_id for bench_id, count in after.items()
        if count > before.get(bench_id, 0)
    )
    return RunOutcome(
        exit_code=completed.returncode,
        files=[str(path) for path in files],
        recorded=recorded,
    )
