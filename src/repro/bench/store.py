"""The append-only benchmark trajectory store.

Layout: one JSON-lines file per bench id under the store root
(``benchmarks/trajectory/`` by default), each line one
:class:`~repro.bench.record.BenchRecord`.  Appends rewrite the file
through :func:`repro.obs.atomicio.atomic_write_text` -- the POSIX
append-with-rename idiom -- so a run killed mid-record leaves the
previous trajectory intact rather than a torn line.

The store is the single source the comparator (:mod:`repro.bench
.baseline`) and the dashboard (:mod:`repro.bench.report`) read; nothing
in it is ever mutated in place, only appended, which is what makes
"trajectory" a meaningful word: the history of a bench id is the file,
in write order.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional

from repro.bench.record import BenchRecord
from repro.obs.atomicio import atomic_write_text

#: Environment override for the store root (the bench CLI and the
#: benchmark conftest both honour it, so a CI job can point every
#: producer and consumer at one scratch directory).
STORE_ENV = "REPRO_BENCH_STORE"

#: Default store root, relative to the repository checkout.
DEFAULT_STORE = "benchmarks/trajectory"


def resolve_store_root(explicit: str = "") -> str:
    """The store root: explicit flag > ``REPRO_BENCH_STORE`` > default."""
    return explicit or os.environ.get(STORE_ENV, "") or DEFAULT_STORE


class TrajectoryStore:
    """Read/append access to one trajectory directory."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)

    def _path(self, bench_id: str) -> pathlib.Path:
        return self.root / f"{bench_id}.jsonl"

    # -- writing ---------------------------------------------------------------

    def append(self, record: BenchRecord) -> pathlib.Path:
        """Append one record to its bench trajectory (crash-safe)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(record.bench_id)
        existing = path.read_text(encoding="utf-8") if path.exists() else ""
        line = json.dumps(record.to_dict(), sort_keys=True, default=str)
        atomic_write_text(str(path), existing + line + "\n")
        return path

    # -- reading ---------------------------------------------------------------

    def bench_ids(self) -> List[str]:
        """Every bench id with at least one record, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.stem
            for entry in self.root.glob("*.jsonl")
            if entry.is_file()
        )

    def load(self, bench_id: str) -> List[BenchRecord]:
        """All records of one bench id, oldest first."""
        path = self._path(bench_id)
        if not path.exists():
            return []
        records = []
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                records.append(BenchRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError) as error:
                raise ValueError(
                    f"corrupt trajectory record {path}:{number}: {error}"
                ) from error
        return records

    def latest(self, bench_id: str) -> Optional[BenchRecord]:
        """The most recent record of one bench id (None when absent)."""
        records = self.load(bench_id)
        return records[-1] if records else None

    def counts(self) -> Dict[str, int]:
        """bench id -> number of recorded runs (run-delta detection)."""
        return {bench_id: len(self.load(bench_id)) for bench_id in self.bench_ids()}
