"""``repro bench`` subcommand glue.

The perf analogue of ``repro lint``: run the benchmark suite (or a
subset), record schema-versioned trajectory entries, gate against the
committed baseline, and render the trend dashboard.

Actions (the first positional argument, default ``run``):

* ``run``    -- discover + execute benchmarks, appending one trajectory
  record per exhibit; with ``--compare`` the latest records are checked
  against ``benchmarks/baseline.json`` and a regression exits non-zero.
* ``report`` -- render the markdown (and optionally HTML) dashboard of
  every recorded trajectory.
* ``list``   -- print the discovered benchmark files and recorded ids.

Exit codes: 0 clean, 1 benchmark run failed (pytest's failure), 4 a
baseline threshold regressed, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.baseline import DEFAULT_BASELINE, Baseline
from repro.bench.report import write_dashboard
from repro.bench.runner import DEFAULT_BENCH_DIR, discover, run_benchmarks
from repro.bench.store import TrajectoryStore, resolve_store_root

#: Exit code for a baseline regression (distinct from pytest failures).
REGRESSION_EXIT = 4


def configure_bench_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro bench`` arguments to a subparser."""
    parser.add_argument(
        "action", nargs="?", choices=["run", "report", "list"], default="run",
        help="run the suite (default), render the dashboard, or list "
             "benchmarks",
    )
    parser.add_argument(
        "--only", action="append", default=[], metavar="SUBSTR",
        help="case-insensitive substring filter on benchmark file names "
             "(repeatable; filters OR together)",
    )
    parser.add_argument(
        "--bench-dir", default=DEFAULT_BENCH_DIR, metavar="DIR",
        help=f"benchmark suite directory (default: {DEFAULT_BENCH_DIR})",
    )
    parser.add_argument(
        "--store", default="", metavar="DIR",
        help="trajectory store directory (default: $REPRO_BENCH_STORE or "
             "benchmarks/trajectory)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"committed threshold file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="after running, compare the recorded entries against the "
             "baseline and exit non-zero on regression",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="after running, re-pin the baseline at the recorded values "
             "(keeps existing tolerances and directions)",
    )
    parser.add_argument(
        "--skip-run", action="store_true",
        help="with --compare/--update-baseline: use the latest recorded "
             "trajectory entries instead of running the suite",
    )
    parser.add_argument(
        "--output", default="", metavar="FILE",
        help="report: write the markdown dashboard to FILE "
             "(default: <store>/DASHBOARD.md)",
    )
    parser.add_argument(
        "--html", default="", metavar="FILE",
        help="report: also write a self-contained HTML dashboard to FILE",
    )
    parser.add_argument(
        "--window", type=int, default=12, metavar="N",
        help="report: runs shown per trend chart (default: 12)",
    )


def _cmd_list(args: argparse.Namespace, store: TrajectoryStore) -> int:
    files = discover(args.bench_dir, args.only)
    print(f"{len(files)} benchmark file(s) in {args.bench_dir}:")
    for path in files:
        print(f"  {path}")
    ids = store.bench_ids()
    print(f"{len(ids)} recorded trajectory id(s) in {store.root}:")
    for bench_id in ids:
        print(f"  {bench_id} ({len(store.load(bench_id))} run(s))")
    return 0


def _cmd_report(args: argparse.Namespace, store: TrajectoryStore) -> int:
    output = args.output or str(store.root / "DASHBOARD.md")
    baseline = Baseline.load(args.baseline)
    write_dashboard(
        store, output,
        baseline=baseline, html_output=args.html, window=max(1, args.window),
    )
    print(f"wrote dashboard to {output}"
          + (f" and {args.html}" if args.html else ""))
    return 0


def _cmd_run(args: argparse.Namespace, store: TrajectoryStore) -> int:
    recorded = None
    if args.skip_run:
        if not (args.compare or args.update_baseline):
            print(
                "repro bench: error: --skip-run needs --compare or "
                "--update-baseline",
                file=sys.stderr,
            )
            return 2
    else:
        files = discover(args.bench_dir, args.only)
        if not files:
            print(
                f"repro bench: error: no benchmarks match {args.only!r} "
                f"in {args.bench_dir}",
                file=sys.stderr,
            )
            return 2
        print(
            f"running {len(files)} benchmark file(s), trajectory -> "
            f"{store.root}"
        )
        outcome = run_benchmarks(files, str(store.root))
        recorded = outcome.recorded
        print(
            f"recorded {len(outcome.recorded)} trajectory entr"
            f"{'y' if len(outcome.recorded) == 1 else 'ies'}"
        )
        if not outcome.ok:
            print(
                f"repro bench: benchmark run failed (pytest exit "
                f"{outcome.exit_code})",
                file=sys.stderr,
            )
            return 1

    status = 0
    if args.compare:
        baseline = Baseline.load(args.baseline)
        comparison = baseline.compare(store, bench_ids=recorded)
        for bench_id in comparison.missing_baseline:
            print(f"repro bench: note: no baseline entry for {bench_id}")
        for bench_id in comparison.missing_records:
            print(
                f"repro bench: error: no trajectory recorded for "
                f"{bench_id}",
                file=sys.stderr,
            )
            status = REGRESSION_EXIT
        if comparison.regressions:
            for regression in comparison.regressions:
                print(
                    f"repro bench: REGRESSION {regression.describe()}",
                    file=sys.stderr,
                )
            status = REGRESSION_EXIT
        else:
            print(
                f"baseline comparison clean: {len(comparison.checked)} "
                "benchmark(s) within thresholds"
            )
    if args.update_baseline:
        baseline = Baseline.load(args.baseline)
        baseline.update_from_store(store, bench_ids=recorded)
        baseline.save(args.baseline)
        print(f"updated baseline {args.baseline}")
    return status


def run_bench_command(args: argparse.Namespace) -> int:
    """Execute ``repro bench`` from parsed arguments."""
    store = TrajectoryStore(resolve_store_root(args.store))
    if args.action == "list":
        return _cmd_list(args, store)
    if args.action == "report":
        return _cmd_report(args, store)
    return _cmd_run(args, store)
