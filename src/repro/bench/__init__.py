"""repro.bench -- benchmark trajectory records, baselines, dashboards.

The observability layer for *performance*: every paper-exhibit
benchmark persists a schema-versioned :class:`BenchRecord` (rows,
wall-clock timing, git SHA, machine fingerprint) into an append-only
:class:`TrajectoryStore`; the committed :class:`Baseline` gates the
latest run with per-metric tolerance thresholds; and
:mod:`repro.bench.report` renders the trend dashboard.  Driven by
``python -m repro bench`` (see docs/benchmarking.md).
"""

from __future__ import annotations

from repro.bench.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    Comparison,
    Regression,
    Threshold,
)
from repro.bench.record import (
    SCHEMA_VERSION,
    BenchRecord,
    machine_fingerprint,
    record_from_exhibit,
    stable_bench_id,
)
from repro.bench.report import render_dashboard, trend_chart, write_dashboard
from repro.bench.runner import RunOutcome, discover, run_benchmarks
from repro.bench.store import (
    DEFAULT_STORE,
    STORE_ENV,
    TrajectoryStore,
    resolve_store_root,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchRecord",
    "stable_bench_id",
    "machine_fingerprint",
    "record_from_exhibit",
    "TrajectoryStore",
    "resolve_store_root",
    "STORE_ENV",
    "DEFAULT_STORE",
    "Baseline",
    "Threshold",
    "Regression",
    "Comparison",
    "DEFAULT_BASELINE",
    "render_dashboard",
    "trend_chart",
    "write_dashboard",
    "discover",
    "run_benchmarks",
    "RunOutcome",
]
