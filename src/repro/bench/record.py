"""Schema-versioned benchmark records and stable bench identifiers.

Every paper-exhibit benchmark persists one :class:`BenchRecord` per run
into the trajectory store (:mod:`repro.bench.store`).  A record is the
machine-readable twin of the human-readable ``.txt`` exhibit: the same
rows, plus everything needed to interpret a timing across time and
machines -- wall-clock duration, git SHA, a machine fingerprint, and a
schema version so future readers can migrate old entries instead of
guessing.

Bench identifiers must be *stable* (the trajectory of one benchmark is
the sequence of records sharing an id) and *collision-free* (two
exhibits whose titles agree on a 60-character prefix must not share a
file).  :func:`stable_bench_id` therefore keys on the full title: a
readable slug prefix plus a short digest of the untruncated title.
"""

from __future__ import annotations

import hashlib
import os
import platform
import re
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional

#: Bump when a field changes meaning; readers dispatch on it.
SCHEMA_VERSION = 1

#: Readable prefix length of a bench id (the digest suffix disambiguates).
_SLUG_PREFIX = 60


def slugify(text: str) -> str:
    """Lowercase filesystem-safe slug of ``text`` (full length)."""
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")


def stable_bench_id(title: str) -> str:
    """A stable, collision-free identifier for one exhibit title.

    ``<slug prefix>-<8 hex>``: the prefix keeps files greppable, the
    digest of the *full* title keeps two long titles that agree on the
    prefix from silently sharing a file (the old 60-character
    truncation bug).
    """
    digest = hashlib.blake2b(title.encode("utf-8"), digest_size=4).hexdigest()
    return f"{slugify(title)[:_SLUG_PREFIX].rstrip('_')}-{digest}"


def machine_fingerprint() -> Dict[str, object]:
    """Where a record was produced (timings are machine-relative)."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def utc_timestamp() -> str:
    """The current UTC time as an ISO-8601 string (a timestamp, so
    ``datetime`` rather than a monotonic clock)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class BenchRecord:
    """One benchmark run: exhibit rows plus timing and provenance.

    ``scalars`` carries named numeric outputs a benchmark wants tracked
    over time beyond its wall clock -- a FIT estimate, a speedup factor,
    a telemetry-overhead fraction.  The baseline comparator and the
    dashboard treat every scalar as a first-class trajectory series.
    """

    bench_id: str
    title: str
    wall_s: float
    test: str = ""
    headers: List[str] = field(default_factory=list)
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""
    scalars: Dict[str, float] = field(default_factory=dict)
    git_sha: Optional[str] = None
    machine: Dict[str, object] = field(default_factory=machine_fingerprint)
    config: Dict[str, object] = field(default_factory=dict)
    recorded_at: str = field(default_factory=utc_timestamp)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (one trajectory-store line)."""
        return {
            "schema": self.schema,
            "bench_id": self.bench_id,
            "title": self.title,
            "test": self.test,
            "wall_s": self.wall_s,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
            "scalars": dict(self.scalars),
            "git_sha": self.git_sha,
            "machine": dict(self.machine),
            "config": dict(self.config),
            "recorded_at": self.recorded_at,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BenchRecord":
        """Parse one stored record (raises ``KeyError`` on missing core
        fields -- the store never writes partial lines, so a failure
        here means genuine corruption, not a torn write)."""
        return cls(
            bench_id=str(payload["bench_id"]),
            title=str(payload["title"]),
            wall_s=float(payload["wall_s"]),
            test=str(payload.get("test", "")),
            headers=list(payload.get("headers", [])),
            rows=[list(row) for row in payload.get("rows", [])],
            notes=str(payload.get("notes", "")),
            scalars={
                str(k): float(v)
                for k, v in dict(payload.get("scalars", {})).items()
            },
            git_sha=payload.get("git_sha"),
            machine=dict(payload.get("machine", {})),
            config=dict(payload.get("config", {})),
            recorded_at=str(payload.get("recorded_at", "")),
            schema=int(payload.get("schema", SCHEMA_VERSION)),
        )


def record_from_exhibit(
    exhibit: Dict[str, object],
    wall_s: float,
    test: str = "",
    config: Optional[Dict[str, object]] = None,
) -> BenchRecord:
    """Build a record from the ``emit()`` exhibit dict of a benchmark.

    The optional ``scalars`` key of the exhibit (name -> number) is
    copied through; everything else is derived.
    """
    from repro.obs.export import git_sha

    title = str(exhibit["title"])
    return BenchRecord(
        bench_id=stable_bench_id(title),
        title=title,
        wall_s=wall_s,
        test=test,
        headers=list(exhibit.get("headers", [])),
        rows=[list(row) for row in exhibit.get("rows", [])],
        notes=str(exhibit.get("notes", "") or ""),
        scalars={
            str(k): float(v)
            for k, v in dict(exhibit.get("scalars", {}) or {}).items()
        },
        git_sha=git_sha(),
        config=dict(config or {}),
    )
