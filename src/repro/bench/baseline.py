"""Committed per-benchmark baselines and the regression comparator.

The perf analogue of the lint gate: ``benchmarks/baseline.json`` pins,
per bench id, the expected wall-clock time and any tracked scalars
(speedups, FIT estimates, overhead fractions), each with a tolerance.
``repro bench --compare`` measures the latest trajectory record against
it and exits non-zero on regression, so a 2x slowdown is a red CI job
instead of an eyeballed table.

Tolerances are *relative*: a wall-time entry of ``{"value": 0.8,
"tolerance": 1.0}`` allows up to ``0.8 * (1 + 1.0)`` seconds.  Scalars
carry a direction -- ``"max"`` metrics (wall time, FIT, overhead)
regress upward, ``"min"`` metrics (speedup) regress downward -- so one
comparator covers both "slower is worse" and "smaller is worse".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.bench.record import BenchRecord
from repro.bench.store import TrajectoryStore
from repro.obs.atomicio import atomic_write_json

#: Default committed baseline, relative to the repository checkout.
DEFAULT_BASELINE = "benchmarks/baseline.json"

#: Relative slack applied when an entry does not set its own tolerance.
DEFAULT_TOLERANCE = 1.0

_DIRECTIONS = ("max", "min")


@dataclass(frozen=True)
class Threshold:
    """One gated metric: expected value, relative tolerance, direction."""

    value: float
    tolerance: float = DEFAULT_TOLERANCE
    direction: str = "max"

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got "
                f"{self.direction!r}"
            )
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")

    @property
    def allowed(self) -> float:
        """The worst measurement that still passes."""
        if self.direction == "max":
            return self.value * (1.0 + self.tolerance)
        return self.value * max(0.0, 1.0 - self.tolerance)

    def regressed(self, measured: float) -> bool:
        if self.direction == "max":
            return measured > self.allowed
        return measured < self.allowed


@dataclass(frozen=True)
class Regression:
    """One threshold violation found by the comparator."""

    bench_id: str
    metric: str
    measured: float
    threshold: Threshold

    def describe(self) -> str:
        worse = ">" if self.threshold.direction == "max" else "<"
        return (
            f"{self.bench_id}: {self.metric} {self.measured:.6g} "
            f"{worse} allowed {self.threshold.allowed:.6g} "
            f"(baseline {self.threshold.value:.6g}, "
            f"tolerance {self.threshold.tolerance:g})"
        )


@dataclass
class Comparison:
    """The full outcome of one baseline comparison."""

    regressions: List[Regression] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)
    missing_baseline: List[str] = field(default_factory=list)
    missing_records: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


class Baseline:
    """The committed thresholds, keyed by bench id."""

    def __init__(
        self, benchmarks: Optional[Dict[str, Dict[str, Threshold]]] = None
    ) -> None:
        #: bench id -> metric name -> threshold; ``"wall_s"`` is the
        #: reserved metric name for the record's wall clock.
        self.benchmarks: Dict[str, Dict[str, Threshold]] = benchmarks or {}

    # -- persistence -----------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Parse a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        benchmarks: Dict[str, Dict[str, Threshold]] = {}
        for bench_id, metrics in payload.get("benchmarks", {}).items():
            benchmarks[bench_id] = {
                name: Threshold(
                    value=float(entry["value"]),
                    tolerance=float(
                        entry.get("tolerance", DEFAULT_TOLERANCE)
                    ),
                    direction=str(entry.get("direction", "max")),
                )
                for name, entry in metrics.items()
            }
        return cls(benchmarks)

    def save(self, path: str) -> None:
        """Write the baseline (atomically, stable key order)."""
        payload = {
            "version": 1,
            "benchmarks": {
                bench_id: {
                    name: {
                        "value": threshold.value,
                        "tolerance": threshold.tolerance,
                        "direction": threshold.direction,
                    }
                    for name, threshold in sorted(metrics.items())
                }
                for bench_id, metrics in sorted(self.benchmarks.items())
            },
        }
        atomic_write_json(path, payload)

    # -- comparison ------------------------------------------------------------

    def compare_record(self, record: BenchRecord) -> List[Regression]:
        """Regressions of one record against its thresholds."""
        metrics = self.benchmarks.get(record.bench_id)
        if not metrics:
            return []
        measured: Dict[str, float] = {"wall_s": record.wall_s}
        measured.update(record.scalars)
        regressions = []
        for name, threshold in sorted(metrics.items()):
            if name not in measured:
                # A baselined scalar the benchmark stopped reporting is
                # itself a regression: the gate must not silently relax.
                regressions.append(
                    Regression(
                        bench_id=record.bench_id,
                        metric=f"{name} (missing from record)",
                        measured=float("nan"),
                        threshold=threshold,
                    )
                )
                continue
            if threshold.regressed(measured[name]):
                regressions.append(
                    Regression(
                        bench_id=record.bench_id,
                        metric=name,
                        measured=measured[name],
                        threshold=threshold,
                    )
                )
        return regressions

    def compare(
        self, store: TrajectoryStore, bench_ids: Optional[Iterable[str]] = None
    ) -> Comparison:
        """Compare the latest record of each bench id against the baseline.

        ``bench_ids`` restricts the check (e.g. to the benches recorded
        by the current run); default is every id in the store *or* the
        baseline.  Ids with a baseline entry but no trajectory record
        are reported in ``missing_records`` -- a benchmark that silently
        stopped running must not read as green.
        """
        if bench_ids is not None:
            ids = sorted(bench_ids)
        else:
            ids = sorted(set(store.bench_ids()) | set(self.benchmarks))
        comparison = Comparison()
        for bench_id in ids:
            latest = store.latest(bench_id)
            if latest is None:
                comparison.missing_records.append(bench_id)
                continue
            comparison.checked.append(bench_id)
            if bench_id not in self.benchmarks:
                comparison.missing_baseline.append(bench_id)
                continue
            comparison.regressions.extend(self.compare_record(latest))
        return comparison

    # -- maintenance -----------------------------------------------------------

    def update_from_store(
        self,
        store: TrajectoryStore,
        bench_ids: Optional[Iterable[str]] = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        """Re-pin thresholds at the latest recorded values.

        Existing entries keep their tolerance and direction; new metrics
        get ``tolerance`` and the ``"max"`` default (edit the JSON for
        ``"min"`` metrics like speedups -- a direction cannot be
        inferred from one measurement).
        """
        ids = bench_ids if bench_ids is not None else store.bench_ids()
        for bench_id in ids:
            latest = store.latest(bench_id)
            if latest is None:
                continue
            previous = self.benchmarks.get(bench_id, {})
            measured: Dict[str, float] = {"wall_s": latest.wall_s}
            measured.update(latest.scalars)
            self.benchmarks[bench_id] = {
                name: Threshold(
                    value=value,
                    tolerance=(
                        previous[name].tolerance
                        if name in previous else tolerance
                    ),
                    direction=(
                        previous[name].direction
                        if name in previous else "max"
                    ),
                )
                for name, value in sorted(measured.items())
            }
