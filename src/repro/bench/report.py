"""The perf-trajectory dashboard: trend charts over recorded runs.

``repro bench report`` folds every trajectory in the store into one
document: a summary table (latest wall clock, delta vs the previous run
and vs the committed baseline), then a section per bench id with the
run history and a Unicode trend chart per tracked metric (wall clock
plus every recorded scalar), rendered through
:mod:`repro.analysis.charts` -- the same dependency-free charts the
exhibits use, so the dashboard works where no plotting stack exists.

Markdown is the primary format (it renders in a terminal, a PR, and a
CI artifact viewer alike); the optional HTML output wraps the same
content for artifact hosting.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional

from repro.analysis.charts import bar_chart
from repro.analysis.tables import format_table
from repro.bench.baseline import Baseline
from repro.bench.record import BenchRecord
from repro.bench.store import TrajectoryStore
from repro.obs.atomicio import atomic_write_text

#: Runs shown per trend chart (the trajectory files keep everything).
DEFAULT_WINDOW = 12


def _run_label(record: BenchRecord, index: int) -> str:
    sha = (record.git_sha or "")[:7] or "-"
    return f"run{index} {sha}"


def _delta(current: float, previous: Optional[float]) -> str:
    if previous is None or previous == 0:
        return "--"
    return f"{(current / previous - 1.0) * 100:+.1f}%"


def _metric_series(records: List[BenchRecord]) -> Dict[str, List[float]]:
    """metric name -> per-run values (wall clock first, scalars after).

    A scalar absent from some runs charts only the runs that report it.
    """
    series: Dict[str, List[float]] = {"wall_s": []}
    names = []
    for record in records:
        for name in record.scalars:
            if name not in names:
                names.append(name)
    for record in records:
        series["wall_s"].append(record.wall_s)
    for name in names:
        series[name] = [
            record.scalars[name]
            for record in records if name in record.scalars
        ]
    return series


def trend_chart(
    records: List[BenchRecord], metric: str = "wall_s", width: int = 40
) -> str:
    """Unicode trend chart of one metric across recorded runs."""
    if metric == "wall_s":
        values = [record.wall_s for record in records]
        labelled = list(enumerate(records))
    else:
        labelled = [
            (index, record)
            for index, record in enumerate(records)
            if metric in record.scalars
        ]
        values = [record.scalars[metric] for _, record in labelled]
    if not values:
        return "(no recorded values)"
    labels = [_run_label(record, index) for index, record in labelled]
    return bar_chart(labels, values, width=width)


def _summary_rows(
    store: TrajectoryStore, baseline: Optional[Baseline]
) -> List[List[object]]:
    rows: List[List[object]] = []
    for bench_id in store.bench_ids():
        records = store.load(bench_id)
        latest = records[-1]
        previous = records[-2].wall_s if len(records) > 1 else None
        pinned = "--"
        if baseline is not None:
            entry = baseline.benchmarks.get(bench_id, {})
            if "wall_s" in entry:
                pinned = f"{entry['wall_s'].value:.4g}s"
        rows.append([
            bench_id,
            len(records),
            f"{latest.wall_s:.4g}s",
            _delta(latest.wall_s, previous),
            pinned,
        ])
    return rows


def render_dashboard(
    store: TrajectoryStore,
    baseline: Optional[Baseline] = None,
    window: int = DEFAULT_WINDOW,
) -> str:
    """The full markdown dashboard for one trajectory store."""
    lines = [
        "# Benchmark trajectory dashboard",
        "",
        f"Store: `{store.root}` -- {len(store.bench_ids())} benchmarks, "
        "append-only JSONL (see docs/benchmarking.md).",
        "",
    ]
    ids = store.bench_ids()
    if not ids:
        lines.append("_No recorded runs yet: `python -m repro bench`._")
        return "\n".join(lines) + "\n"
    lines += [
        "## Summary",
        "",
        "```",
        format_table(
            ["benchmark", "runs", "latest wall", "vs prev", "baseline"],
            _summary_rows(store, baseline),
        ),
        "```",
        "",
    ]
    for bench_id in ids:
        records = store.load(bench_id)[-window:]
        latest = records[-1]
        lines += [f"## {latest.title}", "", f"`{bench_id}` -- {latest.test}"]
        if latest.notes:
            lines.append(f"\n> {latest.notes}")
        lines.append("")
        for metric in _metric_series(records):
            lines += [
                f"### {metric}",
                "",
                "```",
                trend_chart(records, metric),
                "```",
                "",
            ]
        lines += [
            "### runs",
            "",
            "```",
            format_table(
                ["recorded", "git", "wall (s)", "scalars"],
                [
                    [
                        record.recorded_at,
                        (record.git_sha or "")[:10] or "--",
                        f"{record.wall_s:.4g}",
                        ", ".join(
                            f"{name}={value:.6g}"
                            for name, value in sorted(record.scalars.items())
                        ) or "--",
                    ]
                    for record in records
                ],
            ),
            "```",
            "",
        ]
    return "\n".join(lines)


def render_dashboard_html(markdown: str) -> str:
    """A self-contained HTML wrapper around the markdown dashboard.

    Deliberately minimal (no converter dependency): the monospace
    content -- tables and Unicode charts -- is the dashboard.
    """
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        "<title>Benchmark trajectory dashboard</title>"
        "<style>body{background:#111;color:#eee;}"
        "pre{font-family:ui-monospace,monospace;font-size:13px;"
        "line-height:1.35;}</style></head>\n"
        "<body><pre>" + _html.escape(markdown) + "</pre></body></html>\n"
    )


def write_dashboard(
    store: TrajectoryStore,
    output: str,
    baseline: Optional[Baseline] = None,
    html_output: str = "",
    window: int = DEFAULT_WINDOW,
) -> str:
    """Render and atomically write the dashboard; returns the markdown."""
    markdown = render_dashboard(store, baseline=baseline, window=window)
    atomic_write_text(output, markdown)
    if html_output:
        atomic_write_text(html_output, render_dashboard_html(markdown))
    return markdown
