"""Trace-driven multicore performance and energy simulation (Figs 8-9).

The paper evaluates SuDoku's performance cost on an 8-core system with a
shared 64 MB STTRAM LLC (Table VI), using CMP$im + USIMM over SPEC2006 /
PARSEC / BioBench / commercial traces.  Those proprietary traces are not
available offline, so this package substitutes a *synthetic workload
generator* parameterised per benchmark (LLC access intensity, write
fraction, footprint, hot-set locality) -- the marginal overheads being
measured (a 1-cycle syndrome check, scrub bandwidth, rare microsecond
corrections, PLT write traffic) depend on LLC access rates and bank
occupancy, which the synthetic streams exercise faithfully.

* :mod:`repro.perf.trace` -- access records and the synthetic generator.
* :mod:`repro.perf.workloads` -- per-benchmark profiles and the suite list.
* :mod:`repro.perf.dram` -- DDR3-style channel/bank timing.
* :mod:`repro.perf.llc` -- banked STTRAM LLC timing with scrub/correction.
* :mod:`repro.perf.system` -- the event-driven 8-core system simulator.
* :mod:`repro.perf.energy` -- energy and EDP accounting (Table VII).
"""

from repro.perf.trace import Access, SyntheticTrace
from repro.perf.workloads import WORKLOADS, WorkloadProfile, suite_names
from repro.perf.dram import DRAMConfig, DRAMModel
from repro.perf.llc import LLCConfig, LLCTiming
from repro.perf.system import SimulationResult, SystemConfig, SystemSimulator
from repro.perf.energy import EnergyModel, EnergyReport

__all__ = [
    "Access",
    "SyntheticTrace",
    "WORKLOADS",
    "WorkloadProfile",
    "suite_names",
    "DRAMConfig",
    "DRAMModel",
    "LLCConfig",
    "LLCTiming",
    "SimulationResult",
    "SystemConfig",
    "SystemSimulator",
    "EnergyModel",
    "EnergyReport",
]
