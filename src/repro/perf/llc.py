"""Banked STTRAM LLC timing, with scrub and correction intrusions.

The LLC is modelled as a set of banks, each a FIFO server with STTRAM
service times (9 ns reads / 18 ns writes, Table VI).  A SuDoku
configuration additionally:

* adds the 1-cycle syndrome check to every access -- in the controller,
  after the array read, so it lengthens the requester's latency without
  occupying the bank (section VII-C);
* runs the scrub engine.  The paper attributes Fig. 8's overhead to the
  syndrome check and corrections only (section VII-A), i.e. scrubbing is
  scheduled into idle bank slots; the default ``opportunistic`` mode
  models that, consuming idle bank time and reporting a *deficit* if the
  idle capacity cannot cover the scrub target.  The ``blocking`` mode --
  scrub chunks contend with demand traffic -- is kept for the
  scrub-bandwidth ablation study;
* suffers occasional correction events (expected ~4 multi-bit repairs
  per 20 ms at the paper's BER): a RAID-4 repair reads a whole 512-line
  group, briefly occupying every bank; and
* mirrors every write into the PLT -- SRAM, banked like the cache, so it
  adds energy but no stall time (section VII-I); the energy model
  accounts it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class LLCConfig:
    """Timing/geometry of the LLC and its resilience machinery."""

    num_banks: int = 32
    read_s: float = 9e-9
    write_s: float = 18e-9
    syndrome_check_s: float = 0.0          # 1 cycle (0.3125 ns) for SuDoku
    scrub_enabled: bool = False
    scrub_priority: str = "opportunistic"  # or "blocking"
    scrub_interval_s: float = 0.020
    scrub_chunk_lines: int = 64            # lines per chunk (blocking mode)
    num_lines: int = 1 << 20
    corrections_per_interval: float = 0.0  # expected RAID repairs / interval
    correction_group_size: int = 512

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if self.read_s <= 0 or self.write_s <= 0:
            raise ValueError("service times must be positive")
        if self.scrub_interval_s <= 0:
            raise ValueError("scrub interval must be positive")
        if self.scrub_priority not in ("opportunistic", "blocking"):
            raise ValueError("scrub_priority must be opportunistic or blocking")

    @classmethod
    def ideal(cls, **overrides) -> "LLCConfig":
        """The error-free baseline: no syndrome check, no scrub."""
        return cls(**overrides)

    @classmethod
    def sudoku(
        cls,
        core_frequency_hz: float = 3.2e9,
        corrections_per_interval: float = 4.0,
        **overrides,
    ) -> "LLCConfig":
        """SuDoku-Z timing: +1 cycle checks, scrub on, corrections on."""
        return cls(
            syndrome_check_s=1.0 / core_frequency_hz,
            scrub_enabled=True,
            corrections_per_interval=corrections_per_interval,
            **overrides,
        )


class LLCTiming:
    """Bank-contention timing for the LLC.

    :param metrics: optional :class:`repro.obs.metrics.MetricsRegistry`;
        when given, scrub chunks and correction intrusions feed the
        ``perf_llc_scrub_chunks_total`` / ``perf_llc_corrections_total``
        counters (labelled by config kind) as they occur.  Default None:
        the hot path carries no telemetry cost at all.
    """

    def __init__(self, config: LLCConfig, seed: int = 0, metrics=None) -> None:
        self.config = config
        self._label = "sudoku" if config.scrub_enabled else "ideal"
        self._m_scrub_chunks = self._m_corrections = None
        if metrics is not None:
            self._m_scrub_chunks = metrics.counter(
                "perf_llc_scrub_chunks_total",
                "Blocking-mode scrub chunks applied to the banks.",
                labels=("config",),
            ).labels(config=self._label)
            self._m_corrections = metrics.counter(
                "perf_llc_corrections_total",
                "RAID-repair correction intrusions applied to the banks.",
                labels=("config",),
            ).labels(config=self._label)
        self._busy_until: List[float] = [0.0] * config.num_banks
        self._rng = random.Random(seed)
        self._next_scrub_chunk_s: Optional[float] = (
            0.0
            if config.scrub_enabled and config.scrub_priority == "blocking"
            else None
        )
        self._chunk_period_s = self._compute_chunk_period()
        self._next_correction_s = self._draw_correction_gap(0.0)
        self.accesses = 0
        self.reads = 0
        self.writes = 0
        self.scrub_chunks = 0
        self.scrub_lines_done = 0.0
        self.corrections = 0
        self.busy_time_s = 0.0
        self.latest_time_s = 0.0

    def _compute_chunk_period(self) -> float:
        config = self.config
        chunks_per_interval = max(1, config.num_lines // config.scrub_chunk_lines)
        return config.scrub_interval_s / chunks_per_interval

    def _draw_correction_gap(self, now_s: float) -> Optional[float]:
        rate = self.config.corrections_per_interval
        if rate <= 0:
            return None
        mean_gap = self.config.scrub_interval_s / rate
        return now_s + self._rng.expovariate(1.0 / mean_gap)

    # -- intrusions -----------------------------------------------------------------

    def _advance_background(self, now_s: float) -> None:
        """Apply blocking-scrub chunks and correction events due by now."""
        config = self.config
        while (
            self._next_scrub_chunk_s is not None
            and self._next_scrub_chunk_s <= now_s
        ):
            chunk_service = config.scrub_chunk_lines * config.read_s / config.num_banks
            for bank in range(config.num_banks):
                start = max(self._busy_until[bank], self._next_scrub_chunk_s)
                self._busy_until[bank] = start + chunk_service
            self.busy_time_s += chunk_service * config.num_banks
            self.scrub_chunks += 1
            self.scrub_lines_done += config.scrub_chunk_lines
            if self._m_scrub_chunks is not None:
                self._m_scrub_chunks.inc()
            self._next_scrub_chunk_s += self._chunk_period_s
        while (
            self._next_correction_s is not None and self._next_correction_s <= now_s
        ):
            repair_service = (
                config.correction_group_size * config.read_s / config.num_banks
            )
            for bank in range(config.num_banks):
                start = max(self._busy_until[bank], self._next_correction_s)
                self._busy_until[bank] = start + repair_service
            self.busy_time_s += repair_service * config.num_banks
            self.corrections += 1
            if self._m_corrections is not None:
                self._m_corrections.inc()
            self._next_correction_s = self._draw_correction_gap(
                self._next_correction_s
            )

    # -- demand accesses ----------------------------------------------------------------

    def access(self, line_address: int, is_write: bool, now_s: float) -> float:
        """Issue a demand access at ``now_s``; returns completion time.

        The syndrome check happens in the controller after the array
        read: it delays the requester but does not occupy the bank.
        """
        self._advance_background(now_s)
        config = self.config
        bank = line_address % config.num_banks
        service = config.write_s if is_write else config.read_s
        start = max(self._busy_until[bank], now_s)
        if (
            config.scrub_enabled
            and config.scrub_priority == "opportunistic"
            and start > self._busy_until[bank]
        ):
            # The bank sat idle between its last request and this one;
            # the scrub engine consumed that window.
            idle = start - self._busy_until[bank]
            self.scrub_lines_done += idle / config.read_s
        self._busy_until[bank] = start + service
        self.accesses += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.busy_time_s += service
        self.latest_time_s = max(self.latest_time_s, self._busy_until[bank])
        return self._busy_until[bank] + config.syndrome_check_s

    def fill(self, line_address: int, now_s: float) -> float:
        """Install a miss fill (a write into the array)."""
        return self.access(line_address, True, now_s)

    # -- reporting ------------------------------------------------------------------------

    def scrub_lines_required(self, elapsed_s: float) -> float:
        """Scrub target over an elapsed window: the whole array per interval."""
        if not self.config.scrub_enabled:
            return 0.0
        return self.config.num_lines * elapsed_s / self.config.scrub_interval_s

    def scrub_deficit(self, elapsed_s: float) -> float:
        """Scrub lines the idle capacity failed to cover (0 when healthy).

        A sustained positive deficit means the workload saturates the
        banks so completely that the scrub interval would stretch --
        flagged rather than silently ignored.
        """
        return max(0.0, self.scrub_lines_required(elapsed_s) - self.scrub_lines_done)

    def utilisation(self, elapsed_s: float) -> float:
        """Aggregate bank utilisation over the run."""
        if elapsed_s <= 0:
            return 0.0
        return self.busy_time_s / (elapsed_s * self.config.num_banks)
