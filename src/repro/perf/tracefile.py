"""Trace file I/O: plug real memory traces into the Fig. 8 pipeline.

The synthetic generator stands in for the paper's Pin traces; users who
*have* real traces (from Pin, DynamoRIO, gem5, ChampSim...) can convert
them to this text format and drive the same simulations.

Format: one access per line, whitespace-separated ::

    <gap_cycles> <line_address> <R|W>

``#``-prefixed lines are comments.  Gap cycles are the compute cycles
since the previous access issue; line addresses are byte address / 64.
The format is deliberately trivial -- a one-line awk script converts
most trace dumps.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, Sequence, Union

from repro.obs.atomicio import atomic_write_text
from repro.perf.trace import Access


class TraceFormatError(ValueError):
    """A trace file line failed validation.

    Carries the offending file (``path``, when known) and 1-based
    ``line_number`` so callers can point users at the exact input line.
    """

    def __init__(self, message: str, path: str = "<trace>", line_number: int = 0):
        super().__init__(f"{path}, line {line_number}: {message}")
        self.path = path
        self.line_number = line_number


def write_trace(accesses: Iterable[Access], stream: io.TextIOBase) -> int:
    """Serialise accesses to a text stream; returns the count written."""
    count = 0
    for access in accesses:
        kind = "W" if access.is_write else "R"
        stream.write(f"{access.gap_cycles} {access.line_address} {kind}\n")
        count += 1
    return count


def save_trace(accesses: Iterable[Access], path: str) -> int:
    """Serialise accesses to a file atomically; returns the count written.

    The trace is rendered in memory and moved into place with
    ``os.replace`` (via :func:`repro.obs.atomicio.atomic_write_text`),
    so a run killed mid-save leaves the previous trace -- never a
    truncated one that :func:`parse_trace` would reject line-by-line.
    """
    buffer = io.StringIO()
    buffer.write("# repro trace v1: gap_cycles line_address R|W\n")
    count = write_trace(accesses, buffer)
    atomic_write_text(path, buffer.getvalue())
    return count


def parse_trace(stream: Iterable[str], path: str = "<trace>") -> Iterator[Access]:
    """Parse accesses from an iterable of lines.

    Strict: any malformed line raises :class:`TraceFormatError` naming
    ``path`` and the 1-based line number.
    """
    for line_number, line in enumerate(stream, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        parts = text.split()
        if len(parts) != 3:
            raise TraceFormatError(
                f"expected 3 fields, got {len(parts)}", path, line_number
            )
        gap, address, kind = parts
        if kind not in ("R", "W"):
            raise TraceFormatError(
                f"access kind must be R or W, got {kind!r}", path, line_number
            )
        try:
            gap_cycles = int(gap)
            line_address = int(address)
        except ValueError:
            raise TraceFormatError(
                f"non-integer field in {text!r}", path, line_number
            ) from None
        if gap_cycles < 0 or line_address < 0:
            raise TraceFormatError("negative field", path, line_number)
        yield Access(
            gap_cycles=max(1, gap_cycles),
            line_address=line_address,
            is_write=kind == "W",
        )


class FileTrace:
    """A trace loaded from disk; duck-types :class:`SyntheticTrace`.

    The whole trace is materialised in memory (an ``Access`` is three
    machine words; a hundred-million-access trace fits comfortably on
    evaluation machines).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "r", encoding="utf-8") as handle:
            self._accesses: List[Access] = list(parse_trace(handle, path=path))

    def __iter__(self) -> Iterator[Access]:
        return iter(self._accesses)

    def __len__(self) -> int:
        return len(self._accesses)


TraceLike = Union[FileTrace, Sequence[Access]]
