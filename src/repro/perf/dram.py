"""DDR3-style main-memory timing (the USIMM stand-in).

Table VI's system backs the LLC with two channels of DDR3-800.  The
model here is a banked queueing abstraction: each channel has a number of
banks, each bank is a FIFO server, and a request occupies its bank for a
row-hit or row-miss service time (open-page with a simple same-row
heuristic).  That is the level of fidelity the Fig. 8 experiment needs
from memory: LLC misses must cost realistic, contention-sensitive
latencies so the *relative* cost of SuDoku's cache-side overheads is
measured against a realistic denominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class DRAMConfig:
    """Timing/geometry of the memory subsystem.

    Latencies approximate DDR3-800 (tCK = 2.5 ns): activate + CAS + burst
    for a row miss, CAS + burst for a row hit.
    """

    channels: int = 2
    banks_per_channel: int = 8
    row_hit_s: float = 25e-9
    row_miss_s: float = 50e-9
    row_size_lines: int = 128  # 8 KB rows / 64 B lines
    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ValueError("geometry must be positive")
        if self.row_hit_s <= 0 or self.row_miss_s < self.row_hit_s:
            raise ValueError("row-miss latency must be >= row-hit latency")


@dataclass
class _Bank:
    busy_until: float = 0.0
    open_row: int = -1


class DRAMModel:
    """Banked FIFO memory model; returns completion times for requests."""

    def __init__(self, config: DRAMConfig = DRAMConfig()) -> None:
        self.config = config
        self._banks: List[_Bank] = [
            _Bank() for _ in range(config.channels * config.banks_per_channel)
        ]
        self.requests = 0
        self.row_hits = 0
        self.busy_time_s = 0.0

    def reset(self) -> None:
        """Clear all timing state (between simulation runs)."""
        for bank in self._banks:
            bank.busy_until = 0.0
            bank.open_row = -1
        self.requests = 0
        self.row_hits = 0
        self.busy_time_s = 0.0

    def access(self, line_address: int, now_s: float) -> float:
        """Issue a request at ``now_s``; returns its completion time."""
        config = self.config
        bank_index = line_address % len(self._banks)
        row = line_address // config.row_size_lines
        bank = self._banks[bank_index]
        start = max(bank.busy_until, now_s)
        if bank.open_row == row:
            service = config.row_hit_s
            self.row_hits += 1
        else:
            service = config.row_miss_s
            bank.open_row = row
        bank.busy_until = start + service
        self.requests += 1
        self.busy_time_s += service
        return bank.busy_until

    def row_hit_rate(self) -> float:
        """Fraction of requests that hit an open row."""
        return self.row_hits / self.requests if self.requests else 0.0
