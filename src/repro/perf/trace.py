"""Memory access traces and the synthetic trace generator.

A trace is a bounded stream of :class:`Access` records per core.  The
synthetic generator models each benchmark with four knobs (see
:class:`repro.perf.workloads.WorkloadProfile`):

* **intensity** -- LLC accesses per kilo-instruction, which together with
  the base IPC sets the compute gap between accesses;
* **write fraction** -- share of accesses that are writes (drives PLT
  update traffic and STTRAM write occupancy);
* **footprint** -- distinct lines touched; footprints beyond the per-core
  share of the LLC produce capacity misses, just as in the real suites;
* **locality** -- a hot set absorbing most accesses plus a sequential
  streaming component, approximating the reuse behaviour that makes some
  workloads cache-friendly and others memory-bound.

Determinism: a trace is fully determined by (profile, core id, seed),
so the ideal-vs-SuDoku comparison of Fig. 8 replays *identical* access
streams through both configurations.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.perf.workloads import WorkloadProfile


@dataclass(frozen=True)
class Access:
    """One LLC access.

    :param gap_cycles: core cycles of compute between the previous access
        *issue* and this one.
    :param line_address: line-granular address (byte address / 64).
    :param is_write: write (store / writeback) vs read.
    """

    gap_cycles: int
    line_address: int
    is_write: bool


class SyntheticTrace:
    """Deterministic synthetic access stream for one core."""

    def __init__(
        self,
        profile: WorkloadProfile,
        core_id: int,
        num_accesses: int,
        seed: int = 0,
    ) -> None:
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        self.profile = profile
        self.core_id = core_id
        self.num_accesses = num_accesses
        self.seed = seed
        # Private address-space base per core: benchmarks in rate mode /
        # mixes do not share data (the shared-LLC interference is purely
        # capacity/bandwidth, as in the paper's multiprogrammed setup).
        self._base = core_id << 26

    def __iter__(self) -> Iterator[Access]:
        profile = self.profile
        # zlib.crc32 is a *stable* name hash; built-in str hashing is
        # salted per process and would make runs irreproducible.
        name_hash = zlib.crc32(profile.name.encode("utf-8"))
        rng = random.Random((self.seed << 8) ^ self.core_id ^ name_hash)
        mean_gap = profile.mean_gap_cycles()
        hot_lines = max(1, int(profile.footprint_lines * profile.hot_fraction))
        stream_position = 0
        for _ in range(self.num_accesses):
            # Exponential compute gaps reproduce bursty arrivals; minimum
            # one cycle keeps the stream causal.
            gap = max(1, int(rng.expovariate(1.0 / mean_gap)))
            if rng.random() < profile.hot_probability:
                line = rng.randrange(hot_lines)
            else:
                # Streaming component: sequential sweep with occasional
                # jumps, wrapped over the cold region.
                stream_position += 1
                if rng.random() < 0.01:
                    stream_position = rng.randrange(profile.footprint_lines)
                line = hot_lines + (
                    stream_position % max(1, profile.footprint_lines - hot_lines)
                )
            yield Access(
                gap_cycles=gap,
                line_address=self._base + line,
                is_write=rng.random() < profile.write_fraction,
            )

    def __len__(self) -> int:
        return self.num_accesses
