"""The event-driven 8-core system simulator (Fig. 8's engine).

Each core replays its (deterministic) synthetic trace: accesses issue in
program order separated by compute gaps, with a bounded number of
outstanding misses (the ROB-160 machine of Table VI sustains limited
memory-level parallelism).  Accesses flow through the shared functional
LLC for hit/miss behaviour, the banked :class:`repro.perf.llc.LLCTiming`
for cache occupancy, and :class:`repro.perf.dram.DRAMModel` for miss
latency.  Dirty victims write back to memory.

The Fig. 8 experiment runs the *same* traces through two system
configurations -- an ideal error-free LLC and a SuDoku-Z LLC (syndrome
check + scrub + corrections) -- and compares execution times.  Identical
streams and deterministic replacement keep the comparison free of
simulation noise down to the sub-percent effects being measured.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.functional import FunctionalCache
from repro.cache.geometry import CacheGeometry
from repro.obs import Telemetry, resolve_telemetry
from repro.perf.dram import DRAMConfig, DRAMModel
from repro.perf.llc import LLCConfig, LLCTiming
from repro.perf.trace import SyntheticTrace
from repro.perf.workloads import profiles_for


@dataclass(frozen=True)
class SystemConfig:
    """The Table VI baseline system."""

    num_cores: int = 8
    core_frequency_hz: float = 3.2e9
    max_outstanding: int = 10
    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    llc: LLCConfig = field(default_factory=LLCConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")


@dataclass
class SimulationResult:
    """Measurements from one simulation run."""

    workload: str
    config_label: str
    execution_time_s: float
    per_core_time_s: List[float]
    llc_accesses: int
    llc_hits: int
    llc_misses: int
    llc_reads: int
    llc_writes: int
    dram_requests: int
    writebacks: int
    scrub_chunks: int
    corrections: int
    scrub_lines_read: int
    scrub_deficit_lines: float = 0.0
    llc_utilisation: float = 0.0
    total_memory_latency_s: float = 0.0

    @property
    def miss_rate(self) -> float:
        """LLC miss ratio."""
        return self.llc_misses / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def average_memory_latency_s(self) -> float:
        """Mean issue-to-completion latency of an LLC access."""
        if not self.llc_accesses:
            return 0.0
        return self.total_memory_latency_s / self.llc_accesses

    @property
    def core_imbalance(self) -> float:
        """Slowest-core time over mean core time (1.0 = perfectly even)."""
        if not self.per_core_time_s:
            return 1.0
        mean = sum(self.per_core_time_s) / len(self.per_core_time_s)
        return max(self.per_core_time_s) / mean if mean else 1.0


class _CoreState:
    """Replay state of one core."""

    def __init__(self, trace_iter, frequency_hz: float) -> None:
        self.trace_iter = trace_iter
        self.cycle_s = 1.0 / frequency_hz
        self.next_issue_s = 0.0
        self.outstanding: List[float] = []  # completion-time heap
        self.finished_at_s = 0.0
        self.done = False

    def pop_next(self) -> Optional[object]:
        try:
            return next(self.trace_iter)
        except StopIteration:
            self.done = True
            return None


class SystemSimulator:
    """Runs one workload through one system configuration."""

    def __init__(
        self,
        config: SystemConfig,
        workload: str,
        accesses_per_core: int = 50_000,
        seed: int = 0,
        config_label: str = "",
        warmup_accesses_per_core: int = 0,
        traces: Optional[list] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config
        self.workload = workload
        self.accesses_per_core = accesses_per_core
        self.seed = seed
        self.config_label = config_label or (
            "sudoku" if config.llc.scrub_enabled else "ideal"
        )
        self.warmup_accesses_per_core = warmup_accesses_per_core
        if traces is not None and len(traces) != config.num_cores:
            raise ValueError("need one trace per core")
        #: Optional explicit per-core traces (e.g. repro.perf.tracefile
        #: FileTrace objects); overrides the synthetic generator.
        self.traces = traces
        #: Telemetry bundle (null by default); :meth:`run` publishes
        #: simulated-vs-wall-clock throughput gauges through it.
        self.telemetry = resolve_telemetry(telemetry)

    def run(self) -> SimulationResult:
        """Simulate to completion of every core's trace."""
        tel = self.telemetry
        wall_started = time.perf_counter() if tel.enabled else 0.0
        with tel.tracer.span(
            "perf_sim", workload=self.workload, config=self.config_label,
            accesses_per_core=self.accesses_per_core,
        ):
            result = self._run_simulation()
        if tel.enabled:
            self._publish_metrics(result, time.perf_counter() - wall_started)
        return result

    def _run_simulation(self) -> SimulationResult:
        config = self.config
        cache = FunctionalCache(config.geometry)
        llc = LLCTiming(
            config.llc,
            seed=self.seed,
            metrics=self.telemetry.metrics if self.telemetry.enabled else None,
        )
        dram = DRAMModel(config.dram)
        profiles = (
            profiles_for(self.workload, config.num_cores)
            if self.traces is None
            else None
        )
        if self.warmup_accesses_per_core and profiles is not None:
            # Functional-only warm-up: populate the cache so the measured
            # window reflects steady-state (not cold-start) miss rates.
            # A distinct seed keeps the measured streams untouched.
            for core_id in range(config.num_cores):
                warm_trace = SyntheticTrace(
                    profiles[core_id],
                    core_id,
                    self.warmup_accesses_per_core,
                    seed=self.seed + 101,
                )
                for access in warm_trace:
                    cache.access(access.line_address << 6, access.is_write)
            cache.hits = cache.misses = cache.writebacks = 0
        if self.traces is not None:
            streams = [iter(trace) for trace in self.traces]
        else:
            streams = [
                iter(
                    SyntheticTrace(
                        profiles[core_id],
                        core_id,
                        self.accesses_per_core,
                        seed=self.seed,
                    )
                )
                for core_id in range(config.num_cores)
            ]
        cores = [
            _CoreState(stream, config.core_frequency_hz) for stream in streams
        ]
        writebacks = 0
        total_latency = 0.0

        # Event heap of (issue_time, core_id); each entry is the next
        # in-order access of that core.
        heap: List = []
        for core_id, core in enumerate(cores):
            access = core.pop_next()
            if access is not None:
                core.next_issue_s = access.gap_cycles * core.cycle_s
                heapq.heappush(heap, (core.next_issue_s, core_id, access))

        while heap:
            issue_s, core_id, access = heapq.heappop(heap)
            core = cores[core_id]

            # Respect the MLP bound: wait for an outstanding slot.
            while (
                len(core.outstanding) >= config.max_outstanding
                and core.outstanding[0] <= issue_s
            ):
                heapq.heappop(core.outstanding)
            if len(core.outstanding) >= config.max_outstanding:
                stall_until = heapq.heappop(core.outstanding)
                issue_s = max(issue_s, stall_until)

            result = cache.access(access.line_address << 6, access.is_write)
            llc_done = llc.access(access.line_address, access.is_write, issue_s)
            if result.hit:
                completion = llc_done
            else:
                dram_done = dram.access(access.line_address, llc_done)
                completion = dram_done
                llc.fill(access.line_address, dram_done)
                if result.victim_dirty and result.victim_line_address is not None:
                    dram.access(result.victim_line_address, dram_done)
                    writebacks += 1
            heapq.heappush(core.outstanding, completion)
            core.finished_at_s = max(core.finished_at_s, completion)
            total_latency += completion - issue_s

            next_access = core.pop_next()
            if next_access is not None:
                next_issue = issue_s + next_access.gap_cycles * core.cycle_s
                heapq.heappush(heap, (next_issue, core_id, next_access))

        per_core = [core.finished_at_s for core in cores]
        execution_time = max(per_core) if per_core else 0.0
        scrub_lines = min(
            llc.scrub_lines_done, llc.scrub_lines_required(execution_time)
        )
        return SimulationResult(
            workload=self.workload,
            config_label=self.config_label,
            execution_time_s=execution_time,
            per_core_time_s=per_core,
            llc_accesses=cache.accesses,
            llc_hits=cache.hits,
            llc_misses=cache.misses,
            llc_reads=llc.reads,
            llc_writes=llc.writes,
            dram_requests=dram.requests,
            writebacks=writebacks,
            scrub_chunks=llc.scrub_chunks,
            corrections=llc.corrections,
            scrub_lines_read=int(scrub_lines),
            scrub_deficit_lines=llc.scrub_deficit(execution_time),
            llc_utilisation=llc.utilisation(execution_time),
            total_memory_latency_s=total_latency,
        )

    def _publish_metrics(
        self, result: SimulationResult, wall_s: float
    ) -> None:
        """Publish run gauges: simulated vs wall-clock plus LLC traffic."""
        metrics = self.telemetry.metrics
        labels = dict(workload=self.workload, config=self.config_label)
        label_names = ("workload", "config")

        def gauge(name: str, help_text: str, value: float) -> None:
            metrics.gauge(name, help_text, labels=label_names).labels(
                **labels
            ).set(value)

        gauge(
            "perf_sim_simulated_seconds",
            "Simulated execution time of the run.",
            result.execution_time_s,
        )
        gauge(
            "perf_sim_wallclock_seconds",
            "Host wall-clock time spent simulating the run.",
            wall_s,
        )
        if wall_s > 0:
            gauge(
                "perf_sim_time_ratio",
                "Simulated seconds produced per host wall-clock second.",
                result.execution_time_s / wall_s,
            )
            gauge(
                "perf_sim_accesses_per_wall_second",
                "Simulator throughput: LLC accesses processed per host second.",
                result.llc_accesses / wall_s,
            )
        gauge(
            "perf_llc_accesses", "LLC accesses in the run.", result.llc_accesses
        )
        gauge("perf_llc_misses", "LLC misses in the run.", result.llc_misses)
        gauge(
            "perf_llc_utilisation",
            "Aggregate LLC bank utilisation over the run.",
            result.llc_utilisation,
        )
        gauge(
            "perf_dram_requests",
            "DRAM requests issued by the run.",
            result.dram_requests,
        )
        gauge(
            "perf_scrub_deficit_lines",
            "Scrub lines the idle bank capacity failed to cover.",
            result.scrub_deficit_lines,
        )


def compare_ideal_vs_sudoku(
    workload: str,
    accesses_per_core: int = 50_000,
    seed: int = 0,
    geometry: Optional[CacheGeometry] = None,
    corrections_per_interval: float = 4.0,
    warmup_accesses_per_core: int = 0,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, SimulationResult]:
    """Run one workload under both configurations (the Fig. 8 pair)."""
    geometry = geometry if geometry is not None else CacheGeometry()
    base = dict(num_lines=geometry.num_lines)
    ideal = SystemConfig(geometry=geometry, llc=LLCConfig.ideal(**base))
    sudoku = SystemConfig(
        geometry=geometry,
        llc=LLCConfig.sudoku(
            corrections_per_interval=corrections_per_interval, **base
        ),
    )
    return {
        "ideal": SystemSimulator(
            ideal, workload, accesses_per_core, seed, "ideal",
            warmup_accesses_per_core=warmup_accesses_per_core,
            telemetry=telemetry,
        ).run(),
        "sudoku": SystemSimulator(
            sudoku, workload, accesses_per_core, seed, "sudoku",
            warmup_accesses_per_core=warmup_accesses_per_core,
            telemetry=telemetry,
        ).run(),
    }


def normalized_slowdown(results: Dict[str, SimulationResult]) -> float:
    """SuDoku execution time / ideal execution time - 1."""
    ideal = results["ideal"].execution_time_s
    sudoku = results["sudoku"].execution_time_s
    if ideal <= 0:
        raise ValueError("ideal run has zero execution time")
    return sudoku / ideal - 1.0
