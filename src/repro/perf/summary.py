"""Suite-level aggregation of performance results (Fig. 8/9 style).

The paper reports per-benchmark bars plus suite averages.  This module
aggregates a set of per-workload measurements into per-suite and overall
statistics (arithmetic mean and geometric mean of ratios -- the right
mean for normalised execution times), keeping the aggregation logic out
of the exhibit builders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.perf.workloads import MIXES, WORKLOADS


def suite_of(workload: str) -> str:
    """Suite label for a workload name (MIXes form their own suite)."""
    if workload in MIXES:
        return "MIX"
    profile = WORKLOADS.get(workload)
    if profile is None:
        raise KeyError(f"unknown workload {workload!r}")
    return profile.suite


def geometric_mean(ratios: Sequence[float]) -> float:
    """Geometric mean of positive ratios."""
    if not ratios:
        raise ValueError("geometric mean of nothing")
    if any(value <= 0 for value in ratios):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in ratios) / len(ratios))


@dataclass(frozen=True)
class SuiteSummary:
    """Aggregated statistics for one suite."""

    suite: str
    count: int
    mean: float
    geomean_ratio: float
    worst: float
    worst_workload: str


def summarise(
    values: Mapping[str, float],
    as_ratio_offset: float = 1.0,
) -> List[SuiteSummary]:
    """Aggregate per-workload values (e.g. slowdown fractions) by suite.

    :param values: workload -> value (e.g. 0.001 = 0.1% slowdown).
    :param as_ratio_offset: the geomean is computed over
        ``value + offset`` (slowdowns become execution-time ratios).
    :returns: one entry per suite plus an ``ALL`` rollup, suites sorted
        alphabetically.
    """
    if not values:
        raise ValueError("nothing to summarise")
    by_suite: Dict[str, Dict[str, float]] = {}
    for workload, value in values.items():
        by_suite.setdefault(suite_of(workload), {})[workload] = value

    summaries = []
    for suite in sorted(by_suite):
        members = by_suite[suite]
        worst_workload = max(members, key=lambda name: members[name])
        summaries.append(
            SuiteSummary(
                suite=suite,
                count=len(members),
                mean=sum(members.values()) / len(members),
                geomean_ratio=geometric_mean(
                    [value + as_ratio_offset for value in members.values()]
                ),
                worst=members[worst_workload],
                worst_workload=worst_workload,
            )
        )
    worst_workload = max(values, key=lambda name: values[name])
    summaries.append(
        SuiteSummary(
            suite="ALL",
            count=len(values),
            mean=sum(values.values()) / len(values),
            geomean_ratio=geometric_mean(
                [value + as_ratio_offset for value in values.values()]
            ),
            worst=values[worst_workload],
            worst_workload=worst_workload,
        )
    )
    return summaries
