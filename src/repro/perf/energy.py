"""Energy and EDP accounting (Fig. 9, Table VII parameters).

Energy is assembled from the event counts a simulation run produces:

* STTRAM array accesses at Table VII's per-access energies (0.35 nJ
  write / 0.13 nJ read) plus its static power (0.07 nW per cell);
* the SRAM Parity Line Tables: one PLT write per cache write (two for
  SuDoku-Z), at SRAM energies (0.11 nJ write / 0.05 nJ read, 4.02 nW per
  cell static);
* ECC/CRC codec energy: ~40 pJ per encoded/decoded line (per [54], which
  the paper conservatively charges to CRC-31 + ECC-1 as well);
* scrub and correction reads at STTRAM read energy; and
* DRAM access energy for LLC misses and writebacks.

System EDP = (total energy) x (execution time); Fig. 9 reports SuDoku's
EDP normalised to the ideal configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.perf.system import SimulationResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies and static powers (Table VII and [54])."""

    sttram_write_j: float = 0.35e-9
    sttram_read_j: float = 0.13e-9
    sttram_static_w_per_cell: float = 0.07e-9
    sram_write_j: float = 0.11e-9
    sram_read_j: float = 0.05e-9
    sram_static_w_per_cell: float = 4.02e-9
    codec_j_per_access: float = 40e-12
    dram_access_j: float = 20e-9
    cache_cells: int = 64 * 1024 * 1024 * 8
    plt_cells: int = 2 * 128 * 1024 * 8
    #: Rest-of-system (cores + uncore + DRAM background) power.  Fig. 9
    #: normalises *system* EDP; eight 3.2 GHz OoO cores dominate it.
    system_power_w: float = 40.0

    def report(
        self,
        result: SimulationResult,
        with_sudoku_overheads: bool,
    ) -> "EnergyReport":
        """Assemble the energy breakdown for one simulation run."""
        demand_reads = result.llc_reads
        demand_writes = result.llc_writes
        array_read_j = (demand_reads + result.scrub_lines_read) * self.sttram_read_j
        array_write_j = demand_writes * self.sttram_write_j
        correction_read_j = (
            result.corrections * 512 * self.sttram_read_j
            if with_sudoku_overheads
            else 0.0
        )
        codec_j = (
            (demand_reads + demand_writes + result.scrub_lines_read)
            * self.codec_j_per_access
            if with_sudoku_overheads
            else 0.0
        )
        # Each demand write updates both PLTs (SuDoku-Z): a read-modify-
        # write each, charged as one read + one write per table.
        plt_j = (
            demand_writes * 2 * (self.sram_read_j + self.sram_write_j)
            if with_sudoku_overheads
            else 0.0
        )
        static_w = (
            self.cache_cells * self.sttram_static_w_per_cell + self.system_power_w
        )
        if with_sudoku_overheads:
            static_w += self.plt_cells * self.sram_static_w_per_cell
        static_j = static_w * result.execution_time_s
        dram_j = (result.dram_requests) * self.dram_access_j
        return EnergyReport(
            array_read_j=array_read_j,
            array_write_j=array_write_j,
            correction_read_j=correction_read_j,
            codec_j=codec_j,
            plt_j=plt_j,
            static_j=static_j,
            dram_j=dram_j,
            execution_time_s=result.execution_time_s,
        )


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run."""

    array_read_j: float
    array_write_j: float
    correction_read_j: float
    codec_j: float
    plt_j: float
    static_j: float
    dram_j: float
    execution_time_s: float

    @property
    def total_j(self) -> float:
        """Total system energy."""
        return (
            self.array_read_j
            + self.array_write_j
            + self.correction_read_j
            + self.codec_j
            + self.plt_j
            + self.static_j
            + self.dram_j
        )

    @property
    def edp(self) -> float:
        """Energy-delay product (J x s)."""
        return self.total_j * self.execution_time_s

    def breakdown(self) -> Dict[str, float]:
        """Component energies as a dict (for tables)."""
        return {
            "array_read": self.array_read_j,
            "array_write": self.array_write_j,
            "correction_read": self.correction_read_j,
            "codec": self.codec_j,
            "plt": self.plt_j,
            "static": self.static_j,
            "dram": self.dram_j,
        }


def edp_increase(
    ideal: SimulationResult,
    sudoku: SimulationResult,
    model: EnergyModel = EnergyModel(),
) -> float:
    """Fig. 9's metric: SuDoku system EDP / ideal system EDP - 1."""
    ideal_edp = model.report(ideal, with_sudoku_overheads=False).edp
    sudoku_edp = model.report(sudoku, with_sudoku_overheads=True).edp
    if ideal_edp <= 0:
        raise ValueError("ideal run has zero EDP")
    return sudoku_edp / ideal_edp - 1.0
