"""Benchmark profiles for the synthetic workload generator.

The paper runs SPEC CPU2006, PARSEC, BioBench, and the MSC commercial
traces, plus four random MIXes (Fig. 8's x-axis).  The real traces are
proprietary; these profiles encode each benchmark's published memory
character -- LLC access intensity, write share, footprint, locality -- at
the fidelity the Fig. 8/9 experiments need (they measure *marginal* costs
of SuDoku against an ideal cache on identical streams, so what matters is
realistic access volume and mix, not microarchitectural phasing).

Intensity and footprint values are drawn from the broadly reported
characterisations of these suites (e.g. memory-bound mcf/lbm/milc vs
cache-friendly povray/calculix) rounded to representative levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic-trace parameters for one benchmark.

    :param name: benchmark label (Fig. 8 x-axis).
    :param suite: suite label (SPEC / PARSEC / BIO / COMM / MIX).
    :param llc_apki: LLC accesses per kilo-instruction.
    :param ipc: base (non-memory-stalled) instructions per cycle.
    :param write_fraction: fraction of LLC accesses that are writes.
    :param footprint_lines: distinct 64 B lines touched by one core.
    :param hot_fraction: share of the footprint forming the hot set.
    :param hot_probability: probability an access targets the hot set.
    """

    name: str
    suite: str
    llc_apki: float
    ipc: float
    write_fraction: float
    footprint_lines: int
    hot_fraction: float = 0.05
    hot_probability: float = 0.85

    def __post_init__(self) -> None:
        if self.llc_apki <= 0 or self.ipc <= 0:
            raise ValueError("intensity and IPC must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be a probability")
        if self.footprint_lines <= 0:
            raise ValueError("footprint must be positive")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_probability <= 1.0:
            raise ValueError("hot_probability must be a probability")

    def mean_gap_cycles(self) -> float:
        """Mean core cycles between LLC accesses."""
        return 1000.0 / (self.llc_apki * self.ipc)


def _spec(name: str, apki: float, ipc: float, wr: float, footprint_k: int) -> WorkloadProfile:
    return WorkloadProfile(name, "SPEC", apki, ipc, wr, footprint_k * 1024)


def _parsec(name: str, apki: float, ipc: float, wr: float, footprint_k: int) -> WorkloadProfile:
    return WorkloadProfile(name, "PARSEC", apki, ipc, wr, footprint_k * 1024)


def _bio(name: str, apki: float, ipc: float, wr: float, footprint_k: int) -> WorkloadProfile:
    return WorkloadProfile(name, "BIO", apki, ipc, wr, footprint_k * 1024)


def _comm(name: str, apki: float, ipc: float, wr: float, footprint_k: int) -> WorkloadProfile:
    return WorkloadProfile(name, "COMM", apki, ipc, wr, footprint_k * 1024)


#: The evaluation suite: name -> profile.  Footprints are per core, in
#: lines (1 K lines = 64 KB).
WORKLOADS: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        # SPEC CPU2006 -- memory-bound heavy hitters.
        _spec("mcf", 20.0, 0.7, 0.25, 500),
        _spec("lbm", 18.0, 0.9, 0.45, 400),
        _spec("milc", 15.0, 0.8, 0.30, 450),
        _spec("libquantum", 16.0, 1.0, 0.20, 350),
        _spec("soplex", 12.0, 0.9, 0.25, 300),
        _spec("omnetpp", 10.0, 0.8, 0.35, 250),
        _spec("gcc", 8.0, 1.2, 0.30, 150),
        _spec("xalancbmk", 9.0, 1.0, 0.30, 200),
        _spec("bzip2", 5.0, 1.4, 0.25, 100),
        _spec("sphinx3", 9.0, 1.1, 0.15, 150),
        _spec("hmmer", 3.0, 1.8, 0.20, 60),
        _spec("povray", 1.0, 2.0, 0.15, 20),
        _spec("astar", 7.0, 1.1, 0.25, 180),
        _spec("GemsFDTD", 14.0, 0.9, 0.35, 420),
        _spec("zeusmp", 9.0, 1.2, 0.30, 220),
        _spec("cactusADM", 8.0, 1.1, 0.35, 260),
        _spec("gobmk", 4.0, 1.3, 0.25, 90),
        _spec("sjeng", 3.0, 1.5, 0.20, 70),
        _spec("h264ref", 4.0, 1.6, 0.25, 80),
        _spec("namd", 2.0, 1.9, 0.15, 50),
        _spec("dealII", 5.0, 1.4, 0.25, 120),
        _spec("bwaves", 13.0, 1.0, 0.30, 380),
        _spec("leslie3d", 11.0, 1.0, 0.30, 320),
        _spec("wrf", 7.0, 1.2, 0.30, 200),
        # PARSEC.
        _parsec("canneal", 14.0, 0.8, 0.30, 450),
        _parsec("streamcluster", 11.0, 1.0, 0.20, 350),
        _parsec("fluidanimate", 7.0, 1.3, 0.35, 200),
        _parsec("blackscholes", 2.0, 1.8, 0.20, 40),
        _parsec("dedup", 9.0, 1.1, 0.35, 280),
        _parsec("ferret", 8.0, 1.2, 0.25, 240),
        _parsec("swaptions", 2.0, 1.7, 0.20, 45),
        # BioBench.
        _bio("mummer", 12.0, 0.9, 0.15, 400),
        _bio("tigr", 10.0, 1.0, 0.15, 300),
        # MSC commercial traces.
        _comm("comm1", 12.0, 0.9, 0.40, 350),
        _comm("comm2", 9.0, 1.0, 0.40, 280),
    ]
}

#: Random-selection mixes (Fig. 8's MIX1..MIX4): 8 slots per mix.
MIXES: Dict[str, Sequence[str]] = {
    "MIX1": ("mcf", "gcc", "lbm", "povray", "canneal", "bzip2", "comm1", "hmmer"),
    "MIX2": ("milc", "sphinx3", "streamcluster", "tigr", "soplex", "blackscholes", "omnetpp", "comm2"),
    "MIX3": ("libquantum", "xalancbmk", "fluidanimate", "mummer", "mcf", "gcc", "milc", "bzip2"),
    "MIX4": ("lbm", "canneal", "comm1", "comm2", "povray", "hmmer", "soplex", "sphinx3"),
    "MIX5": ("bwaves", "astar", "dedup", "namd", "GemsFDTD", "sjeng", "ferret", "wrf"),
    "MIX6": ("leslie3d", "zeusmp", "cactusADM", "h264ref", "dealII", "gobmk", "swaptions", "mcf"),
}


def suite_names() -> List[str]:
    """All workload labels in Fig. 8 order (benchmarks then mixes)."""
    return list(WORKLOADS) + list(MIXES)


def profiles_for(workload: str, num_cores: int = 8) -> List[WorkloadProfile]:
    """Per-core profile assignment for a workload label.

    Single benchmarks run in rate mode (one copy per core, as the paper's
    multiprogrammed setup does for SPEC); MIX labels map each core to its
    mix slot.
    """
    if workload in WORKLOADS:
        return [WORKLOADS[workload]] * num_cores
    if workload in MIXES:
        names = MIXES[workload]
        return [WORKLOADS[names[i % len(names)]] for i in range(num_cores)]
    raise KeyError(f"unknown workload {workload!r}")
