"""XOR parity helpers used by the RAID-style region protection schemes.

RAID-4 over cache lines reduces to integer XOR: the parity line of a
RAID-Group is the XOR of every member line, and reconstructing one missing
member is the XOR of the parity with every *other* member.  These helpers
keep that arithmetic in one audited place, shared by SuDoku's Parity Line
Table, the RAID-6 baseline (row + diagonal parity), and the 2DP baseline
(horizontal + vertical parity).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.coding.bitvec import mask_of, popcount


def xor_reduce(values: Iterable[int]) -> int:
    """XOR of all values in the iterable (0 for an empty iterable)."""
    result = 0
    for value in values:
        result ^= value
    return result


def reconstruct(parity: int, other_members: Iterable[int]) -> int:
    """RAID-4 reconstruction of one missing member from parity + the rest."""
    return parity ^ xor_reduce(other_members)


class ParityAccumulator:
    """Incrementally maintained XOR parity over a fixed set of slots.

    This mirrors how hardware maintains the Parity Line Table: every write
    to slot ``i`` XORs ``old ^ new`` into the running parity, so the
    accumulator never needs to re-read the whole group.  ``rebuild`` is the
    scrub-time ground-truth recomputation used to find mismatch positions.
    """

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self._width = width
        self._mask = mask_of(width)
        self._parity = 0

    @property
    def width(self) -> int:
        """Bit width of the protected lines."""
        return self._width

    @property
    def parity(self) -> int:
        """Current parity value."""
        return self._parity

    def update(self, old_value: int, new_value: int) -> None:
        """Fold an in-place overwrite of one member into the parity."""
        self._check(old_value)
        self._check(new_value)
        self._parity ^= old_value ^ new_value

    def set_parity(self, parity: int) -> None:
        """Overwrite the stored parity (used when loading a PLT image)."""
        self._check(parity)
        self._parity = parity

    def rebuild(self, members: Sequence[int]) -> int:
        """Recompute parity from scratch over ``members`` and store it."""
        for member in members:
            self._check(member)
        self._parity = xor_reduce(members)
        return self._parity

    def mismatch(self, members: Sequence[int]) -> int:
        """Bit positions (as a vector) where stored parity disagrees.

        The returned int has a 1 wherever the XOR of ``members`` differs
        from the stored parity -- exactly the candidate-fault positions SDR
        enumerates.
        """
        return self._parity ^ xor_reduce(members)

    def _check(self, value: int) -> None:
        if value < 0 or value > self._mask:
            raise ValueError(f"value does not fit in {self._width} bits")


def diagonal_parity(members: Sequence[int], width: int) -> int:
    """Diagonal parity over a group of equal-width lines (RAID-6 style).

    Bit ``d`` of the result is the XOR of ``members[i]`` bit
    ``(d - i) mod width`` for all ``i`` -- i.e. parity along wrapping
    diagonals of the (line x bit) matrix.  Together with row parity this
    lets the RAID-6 baseline solve for two unknown lines.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    result = 0
    for index, member in enumerate(members):
        if member < 0 or member >> width:
            raise ValueError(f"member {index} does not fit in {width} bits")
        shift = index % width
        rotated = ((member << shift) | (member >> (width - shift))) & mask_of(width)
        result ^= rotated
    return result


def column_parities(members: Sequence[int], width: int) -> int:
    """Vertical (column-wise) parity of a group: simply the XOR of members.

    Provided as a named alias so 2DP call sites read as the paper describes
    (horizontal parity per line, vertical parity per column).
    """
    for index, member in enumerate(members):
        if member < 0 or member >> width:
            raise ValueError(f"member {index} does not fit in {width} bits")
    return xor_reduce(members)


def row_parity_bits(members: Sequence[int]) -> List[int]:
    """Horizontal (per-line) parity bit for each member line."""
    return [popcount_parity(member) for member in members]


def popcount_parity(value: int) -> int:
    """Even/odd parity (0 or 1) of a non-negative integer.

    Delegates to the shared :func:`repro.coding.bitvec.popcount` kernel
    (``int.bit_count`` on 3.10+, table-driven on 3.9), which also owns
    the single negative-value check.
    """
    return popcount(value) & 1


def interleave_groups(num_items: int, group_size: int) -> Dict[int, List[int]]:
    """Partition ``range(num_items)`` into strided groups of ``group_size``.

    Item ``i`` joins group ``i % num_groups``; used for the "every Nth
    line" style of grouping (the paper's Hash-2 illustration in Fig. 5).
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    if num_items % group_size:
        raise ValueError("num_items must be a multiple of group_size")
    num_groups = num_items // group_size
    groups: Dict[int, List[int]] = {g: [] for g in range(num_groups)}
    for item in range(num_items):
        groups[item % num_groups].append(item)
    return groups


def contiguous_groups(num_items: int, group_size: int) -> Dict[int, List[int]]:
    """Partition ``range(num_items)`` into consecutive runs of ``group_size``."""
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    if num_items % group_size:
        raise ValueError("num_items must be a multiple of group_size")
    return {
        group: list(range(group * group_size, (group + 1) * group_size))
        for group in range(num_items // group_size)
    }
