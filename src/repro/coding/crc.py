"""Cyclic redundancy checks.

SuDoku attaches a 31-bit CRC to every cache line as its strong error
*detector*: CRC-31 is guaranteed to detect up to seven bit errors in a
64-byte line and misses longer error patterns with probability only
2^-31 (paper section III-F, citing Koopman's CRC zoo).

This module provides a fully general, table-driven CRC engine
(:class:`CRC`, parameterised like the Rocksoft model: width, polynomial,
init, reflect-in/out, xor-out) plus the concrete 31-bit instance used
throughout the reproduction.  The Koopman zoo page cited by the paper is
not reachable offline, so we use the catalogued CRC-31/PHILIPS polynomial
as our concrete CRC-31; the *detection-capability parameters* the paper's
analysis relies on (detects <= 7 errors over a line, misdetection
probability 2^-31 beyond) live in :class:`DetectionModel` and are verified
empirically by the Monte-Carlo tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.coding.bitvec import mask_of


def reflect(value: int, width: int) -> int:
    """Bit-reverse ``value`` within ``width`` bits."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class CRC:
    """A parameterised CRC in the Rocksoft/catalogue model.

    Parameters mirror the conventional CRC catalogue description:

    :param width: CRC register width in bits (>= 8 here).
    :param poly: generator polynomial in normal (MSB-first) form without
        the implicit leading x^width term.
    :param init: initial register value.
    :param refin: reflect each input byte before processing.
    :param refout: reflect the register before xor-out.
    :param xorout: value XORed into the final register.
    :param name: catalogue name, for diagnostics.
    """

    def __init__(
        self,
        width: int,
        poly: int,
        init: int = 0,
        refin: bool = False,
        refout: bool = False,
        xorout: int = 0,
        name: str = "",
    ) -> None:
        if width < 8:
            raise ValueError("CRC widths below 8 bits are not supported")
        if poly <= 0 or poly >> width:
            raise ValueError(f"polynomial does not fit in {width} bits")
        self.width = width
        self.poly = poly
        self.init = init & mask_of(width)
        self.refin = refin
        self.refout = refout
        self.xorout = xorout & mask_of(width)
        self.name = name or f"CRC-{width}"
        self._mask = mask_of(width)
        self._topbit = 1 << (width - 1)
        self._table = self._build_table()

    def _build_table(self) -> list:
        table = []
        shift = self.width - 8
        for byte in range(256):
            register = byte << shift
            for _ in range(8):
                if register & self._topbit:
                    register = ((register << 1) ^ self.poly) & self._mask
                else:
                    register = (register << 1) & self._mask
            table.append(register)
        return table

    # -- public API ---------------------------------------------------------

    def compute(self, data: bytes) -> int:
        """CRC of a byte string, honouring all catalogue parameters."""
        register = self.init
        shift = self.width - 8
        table = self._table
        if self.refin:
            data = bytes(_REFLECT8[b] for b in data)
        for byte in data:
            index = ((register >> shift) ^ byte) & 0xFF
            register = ((register << 8) & self._mask) ^ table[index]
        if self.refout:
            register = reflect_bytewise(register, self.width)
        return register ^ self.xorout

    def compute_int(self, value: int, nbits: int) -> int:
        """CRC of an ``nbits``-wide little-endian bit vector stored in an int.

        ``nbits`` must be a multiple of 8; the value is serialised to
        little-endian bytes (bit 0 of the vector = LSB of byte 0), which is
        the canonical wire format for cache-line data in this code base.
        """
        if nbits % 8:
            raise ValueError("compute_int requires a whole number of bytes")
        if value < 0 or value >> nbits:
            raise ValueError(f"value does not fit in {nbits} bits")
        return self.compute(value.to_bytes(nbits // 8, "little"))

    def compute_bits(self, value: int, nbits: int) -> int:
        """Bit-serial CRC over exactly ``nbits`` bits.

        Reference implementation for arbitrary (non-byte-multiple) message
        lengths.  Bits are consumed in the same order as :meth:`compute`
        over the little-endian serialisation -- byte 0 first, MSB-first
        within each byte -- so for byte-multiple widths this matches
        :meth:`compute_int` exactly; a trailing partial byte is consumed
        MSB-first as well.  Used by tests to validate the table path.
        """
        if value < 0 or (nbits and value >> nbits):
            raise ValueError(f"value does not fit in {nbits} bits")
        register = self.init
        full_bytes, remainder_bits = divmod(nbits, 8)

        def feed(bit: int) -> None:
            nonlocal register
            top = (register >> (self.width - 1)) & 1
            register = (register << 1) & self._mask
            if top ^ bit:
                register ^= self.poly

        for byte_index in range(full_bytes):
            byte = (value >> (8 * byte_index)) & 0xFF
            if self.refin:
                byte = _REFLECT8[byte]
            for bit_index in range(7, -1, -1):
                feed((byte >> bit_index) & 1)
        if remainder_bits:
            tail = value >> (8 * full_bytes)
            for bit_index in range(remainder_bits - 1, -1, -1):
                feed((tail >> bit_index) & 1)
        if self.refout:
            register = reflect_bytewise(register, self.width)
        return register ^ self.xorout

    def matches(self, value: int, nbits: int, stored_crc: int) -> bool:
        """Does the stored CRC agree with a fresh computation?"""
        return self.compute_int(value, nbits) == stored_crc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CRC(name={self.name!r}, width={self.width}, "
            f"poly=0x{self.poly:x})"
        )


_REFLECT8 = [reflect(byte, 8) for byte in range(256)]


def reflect_bytewise(value: int, width: int) -> int:
    """Bit-reverse ``value`` within ``width`` bits via the byte table.

    Equivalent to :func:`reflect` (the tests pin the equivalence over the
    catalogue widths) but walks ``ceil(width / 8)`` table lookups instead
    of ``width`` single-bit shifts -- this runs once per message on every
    ``refout=True`` computation, which made the bit loop a measurable tax
    on CRC-32-heavy paths.
    """
    nbytes = (width + 7) >> 3
    result = 0
    for _ in range(nbytes):
        result = (result << 8) | _REFLECT8[value & 0xFF]
        value >>= 8
    # The table reverses whole bytes; drop the padding bits a non-multiple
    # width picked up.
    return result >> ((nbytes << 3) - width)


# ---------------------------------------------------------------------------
# Catalogue instances.
# ---------------------------------------------------------------------------

#: CRC-32 (the ubiquitous reflected Ethernet/zlib CRC); used only to
#: validate the generic engine against its published check value.
CRC32 = CRC(
    32, 0x04C11DB7, init=0xFFFFFFFF, refin=True, refout=True,
    xorout=0xFFFFFFFF, name="CRC-32",
)

#: CRC-16/CCITT-FALSE; engine validation.
CRC16_CCITT = CRC(16, 0x1021, init=0xFFFF, name="CRC-16/CCITT-FALSE")

#: CRC-8 (SMBus); engine validation.
CRC8 = CRC(8, 0x07, name="CRC-8")

#: The 31-bit CRC SuDoku stores with every line.  Concrete polynomial is
#: the catalogued CRC-31/PHILIPS; the paper's reliability analysis only
#: uses the width (31 bits => 2^-31 misdetection) and the Hamming-distance
#: guarantee (detects <= 7 errors at cache-line length), both of which are
#: captured in :data:`CRC31_DETECTION`.
CRC31_SUDOKU = CRC(
    31, 0x04C11DB7, init=0x7FFFFFFF, refin=False, refout=False,
    xorout=0x7FFFFFFF, name="CRC-31/PHILIPS",
)


def crc31(value: int, nbits: int = 512) -> int:
    """CRC-31 of an ``nbits``-bit line value (default: one 64-byte line)."""
    return CRC31_SUDOKU.compute_int(value, nbits)


@dataclass(frozen=True)
class DetectionModel:
    """Analytical detection capability of a CRC, as used by the paper.

    The reliability models never run the polynomial; they use exactly two
    numbers, which this dataclass makes explicit and testable:

    * ``guaranteed_detect``: every error pattern of weight <= this is
      detected (Hamming distance of the code at line length).
    * ``misdetect_probability``: probability that a heavier random pattern
      maps to a zero syndrome (2^-width for a well-formed CRC).
    """

    width: int
    guaranteed_detect: int
    misdetect_probability: float

    @classmethod
    def for_crc31(cls) -> "DetectionModel":
        """The paper's CRC-31 detection model: HD 8 at 64-byte lines."""
        return cls(width=31, guaranteed_detect=7, misdetect_probability=2.0 ** -31)


#: Detection model for CRC-31 at cache-line length (paper section III-F).
CRC31_DETECTION = DetectionModel.for_crc31()


#: Published check values (CRC of the ASCII bytes "123456789") for the
#: catalogue instances above; exercised by the unit tests.
CHECK_VALUES: Dict[str, int] = {
    "CRC-32": 0xCBF43926,
    "CRC-16/CCITT-FALSE": 0x29B1,
    "CRC-8": 0xF4,
    "CRC-31/PHILIPS": 0x0CE9E46C,
}
