"""Binary BCH codes: the "ECC-k" multi-bit correction baselines.

The paper's strawman is uniform per-line ECC-6: a six-error-correcting
code over each 64-byte line, costing 60 check bits and a multi-cycle
decoder.  For a 512-bit payload the natural construction is a narrow-sense
binary BCH code over GF(2^10) (primitive length n = 1023) shortened to the
payload size; t errors cost at most ``m * t`` check bits, which for
t = 6, m = 10 gives exactly the paper's 60 bits per line.

The implementation is textbook and self-contained:

* generator polynomial = LCM of the minimal polynomials of
  alpha^1 .. alpha^2t (built via :class:`repro.coding.gf2m.GF2m`),
* systematic encoding by polynomial division over GF(2),
* decoding via syndrome computation, Berlekamp--Massey for the error
  locator polynomial, and Chien search for the error positions.

Decoding failures (more than t errors) are reported, not silently
miscorrected, whenever Berlekamp--Massey/Chien can tell; like all bounded
distance decoders, patterns that land within distance t of a different
codeword will miscorrect, which is precisely the behaviour the
reliability models account for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.coding.bitvec import bit_positions
from repro.coding.gf2m import (
    GF2m,
    gf2_degree,
    gf2_lcm,
    gf2_mod,
)


@dataclass(frozen=True)
class BCHResult:
    """Outcome of a BCH decode.

    ``ok`` is True when the decoder produced a codeword it believes in
    (zero errors, or <= t errors located and flipped).  ``error_positions``
    lists the 0-based codeword bits that were flipped.  When ``ok`` is
    False the received word was left unmodified.
    """

    corrected_word: int
    data: int
    error_positions: Tuple[int, ...]
    ok: bool


class BCH:
    """A t-error-correcting binary BCH code, shortened to ``data_bits``.

    :param data_bits: payload size in bits (e.g. 512 for a 64-byte line).
    :param t: designed correction capability in bits.
    :param m: field degree; defaults to the smallest m with
        2^m - 1 >= data_bits + m*t.
    """

    def __init__(self, data_bits: int, t: int, m: int = 0) -> None:
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        if t <= 0:
            raise ValueError("t must be positive")
        if not m:
            m = 3
            while (1 << m) - 1 < data_bits + m * t:
                m += 1
        self.field = GF2m(m)
        self.m = m
        self.t = t
        self.n_full = (1 << m) - 1  # primitive code length

        # Generator polynomial: LCM of minimal polynomials of alpha^1..2t.
        minimal_polys = []
        seen = set()
        for power in range(1, 2 * t + 1):
            element = self.field.alpha_pow(power)
            if element in seen:
                continue
            # Record the whole conjugacy class as covered.
            conjugate = element
            while conjugate not in seen:
                seen.add(conjugate)
                conjugate = self.field.mul(conjugate, conjugate)
            minimal_polys.append(self.field.minimal_polynomial(element))
        self.generator = gf2_lcm(minimal_polys)
        self.num_check_bits = gf2_degree(self.generator)

        self.k = data_bits
        self.n = data_bits + self.num_check_bits
        if self.n > self.n_full:
            raise ValueError(
                f"payload {data_bits} + {self.num_check_bits} check bits "
                f"exceeds primitive length {self.n_full} for m={m}"
            )
        # Shortening amount: the (virtual) high-order message bits fixed at 0.
        self.shortened_by = self.n_full - self.n

    # -- encoding -------------------------------------------------------------

    def encode(self, data: int) -> int:
        """Systematic encode: codeword = data << r | remainder.

        Bit layout (little-endian ints): bits [0, r) hold the check bits,
        bits [r, r + k) hold the payload, matching the classic
        ``x^r * m(x) + rem(x)`` systematic construction.
        """
        if data < 0 or data >> self.k:
            raise ValueError(f"data does not fit in {self.k} bits")
        shifted = data << self.num_check_bits
        remainder = gf2_mod(shifted, self.generator)
        return shifted | remainder

    def extract_data(self, codeword: int) -> int:
        """Payload bits of a codeword."""
        if codeword < 0 or codeword >> self.n:
            raise ValueError(f"codeword does not fit in {self.n} bits")
        return codeword >> self.num_check_bits

    def is_codeword(self, word: int) -> bool:
        """True iff ``word`` divides cleanly by the generator polynomial."""
        if word < 0 or word >> self.n:
            raise ValueError(f"word does not fit in {self.n} bits")
        return gf2_mod(word, self.generator) == 0

    # -- decoding -------------------------------------------------------------

    def syndromes(self, word: int) -> List[int]:
        """S_i = r(alpha^i) for i = 1 .. 2t."""
        field = self.field
        positions = bit_positions(word)
        result = []
        for i in range(1, 2 * self.t + 1):
            accumulator = 0
            for position in positions:
                accumulator ^= field.alpha_pow(i * position)
            result.append(accumulator)
        return result

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Error locator polynomial sigma(x) from the syndrome sequence."""
        field = self.field
        sigma = [1]          # current locator
        previous = [1]       # locator before the last length change
        previous_discrepancy = 1
        gap = 1              # iterations since the last length change
        for step in range(len(syndromes)):
            # Discrepancy: S_step+1 + sum sigma_i * S_step+1-i.
            discrepancy = syndromes[step]
            for i in range(1, len(sigma)):
                if step - i >= 0 and sigma[i]:
                    discrepancy ^= field.mul(sigma[i], syndromes[step - i])
            if discrepancy == 0:
                gap += 1
                continue
            scale = field.div(discrepancy, previous_discrepancy)
            candidate = list(sigma)
            needed = len(previous) + gap
            if needed > len(candidate):
                candidate.extend([0] * (needed - len(candidate)))
            for i, coefficient in enumerate(previous):
                if coefficient:
                    candidate[i + gap] ^= field.mul(scale, coefficient)
            if 2 * (len(sigma) - 1) <= step:
                previous = sigma
                previous_discrepancy = discrepancy
                gap = 1
            else:
                gap += 1
            sigma = candidate
        return sigma

    def _chien_search(self, sigma: List[int]) -> Optional[List[int]]:
        """Roots of sigma(x) as error positions; None if root count != degree.

        An error at position j makes alpha^-j a root of sigma.  We probe
        every position of the (shortened) codeword; a locator whose degree
        is not matched by its root count signals an uncorrectable word.
        """
        field = self.field
        degree = len(sigma) - 1
        while degree > 0 and sigma[degree] == 0:
            degree -= 1
        if degree == 0:
            return []
        positions = []
        for position in range(self.n):
            x = field.alpha_pow(-position % field.order)
            if field.poly_eval(sigma[: degree + 1], x) == 0:
                positions.append(position)
                if len(positions) > degree:
                    return None
        if len(positions) != degree:
            return None
        return positions

    def decode(self, word: int) -> BCHResult:
        """Bounded-distance decode of a received word."""
        if word < 0 or word >> self.n:
            raise ValueError(f"word does not fit in {self.n} bits")
        syndromes = self.syndromes(word)
        if not any(syndromes):
            return BCHResult(word, self.extract_data(word), (), True)
        sigma = self._berlekamp_massey(syndromes)
        if len(sigma) - 1 > self.t:
            return BCHResult(word, self.extract_data(word), (), False)
        positions = self._chien_search(sigma)
        if positions is None:
            return BCHResult(word, self.extract_data(word), (), False)
        corrected = word
        for position in positions:
            corrected ^= 1 << position
        # Sanity: the corrected word must be a codeword.
        if not self.is_codeword(corrected):
            return BCHResult(word, self.extract_data(word), (), False)
        return BCHResult(
            corrected, self.extract_data(corrected), tuple(sorted(positions)), True
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BCH(k={self.k}, t={self.t}, m={self.m}, "
            f"r={self.num_check_bits}, n={self.n})"
        )
