"""Binary extension-field arithmetic GF(2^m).

The multi-bit "ECC-k" baselines in the paper (up to the ECC-6 comparison
point, 60 check bits per 64-byte line) are BCH codes, whose decoders work
in GF(2^m).  This module provides log/antilog-table field arithmetic for
3 <= m <= 16 plus the GF(2)[x] polynomial helpers the BCH construction
needs (carry-less multiply/mod over bit-packed polynomials).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.coding.bitvec import bit_positions

#: Primitive (irreducible, primitive-root) polynomials for GF(2^m),
#: bit-packed with the x^m term included, e.g. m=4 -> x^4 + x + 1 = 0b10011.
PRIMITIVE_POLYNOMIALS: Dict[int, int] = {
    3: 0b1011,                # x^3 + x + 1
    4: 0b10011,               # x^4 + x + 1
    5: 0b100101,              # x^5 + x^2 + 1
    6: 0b1000011,             # x^6 + x + 1
    7: 0b10001001,            # x^7 + x^3 + 1
    8: 0b100011101,           # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,          # x^9 + x^4 + 1
    10: 0b10000001001,        # x^10 + x^3 + 1
    11: 0b100000000101,       # x^11 + x^2 + 1
    12: 0b1000001010011,      # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,     # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,    # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,   # x^15 + x + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
}


class GF2m:
    """The finite field GF(2^m) with table-driven arithmetic.

    Elements are ints in ``[0, 2^m)``.  ``alpha`` (= 2, the polynomial
    ``x``) is a primitive element, so every non-zero element is
    ``alpha^i`` for a unique ``i`` in ``[0, 2^m - 1)``.
    """

    def __init__(self, m: int, primitive_poly: int = 0) -> None:
        if m < 2 or m > 16:
            raise ValueError("GF2m supports 2 <= m <= 16")
        poly = primitive_poly or PRIMITIVE_POLYNOMIALS.get(m, 0)
        if not poly:
            raise ValueError(f"no default primitive polynomial for m={m}")
        if poly >> (m + 1) or not (poly >> m):
            raise ValueError("primitive polynomial must have degree exactly m")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        self.poly = poly

        # exp table doubled in length so mul can skip a modulo.
        self._exp: List[int] = [0] * (2 * self.order)
        self._log: List[int] = [0] * self.size
        value = 1
        for power in range(self.order):
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & self.size:
                value ^= poly
            if value == 1 and power < self.order - 1:
                # x has multiplicative order power+1 < 2^m - 1: the
                # polynomial is irreducible but not primitive (e.g.
                # x^4 + x^3 + x^2 + x + 1, whose root has order 5).
                raise ValueError(
                    f"polynomial 0x{poly:x} is not primitive for GF(2^{m})"
                )
        if value != 1:
            raise ValueError(
                f"polynomial 0x{poly:x} is not primitive for GF(2^{m})"
            )
        for power in range(self.order, 2 * self.order):
            self._exp[power] = self._exp[power - self.order]

    # -- element arithmetic --------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction = XOR)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field division a / b (b must be non-zero)."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[self._log[a] - self._log[b] + self.order]

    def inv(self, a: int) -> int:
        """Multiplicative inverse."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return self._exp[self.order - self._log[a]]

    def pow(self, a: int, exponent: int) -> int:
        """a raised to an arbitrary (possibly negative) integer power."""
        if a == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 cannot be raised to a non-positive power")
            return 0
        power = (self._log[a] * exponent) % self.order
        return self._exp[power]

    def alpha_pow(self, exponent: int) -> int:
        """alpha^exponent for the primitive element alpha."""
        return self._exp[exponent % self.order]

    def log(self, a: int) -> int:
        """Discrete log base alpha (a must be non-zero)."""
        if a == 0:
            raise ValueError("log of zero is undefined")
        return self._log[a]

    # -- polynomials over GF(2^m), coefficient lists (index = degree) --------

    def poly_eval(self, coefficients: Sequence[int], x: int) -> int:
        """Evaluate sum(coefficients[i] * x^i) by Horner's rule."""
        result = 0
        for coefficient in reversed(coefficients):
            result = self.mul(result, x) ^ coefficient
        return result

    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Product of two coefficient-list polynomials."""
        result = [0] * (len(a) + len(b) - 1)
        for i, coeff_a in enumerate(a):
            if coeff_a == 0:
                continue
            for j, coeff_b in enumerate(b):
                if coeff_b:
                    result[i + j] ^= self.mul(coeff_a, coeff_b)
        return result

    def minimal_polynomial(self, element: int) -> int:
        """GF(2)-minimal polynomial of ``element``, bit-packed over GF(2).

        Computed as prod (x - element^(2^i)) over the conjugacy class; the
        result has coefficients in {0, 1} and is returned with the
        convention bit i = coefficient of x^i.
        """
        if element == 0:
            return 0b10  # x
        conjugates = []
        current = element
        while current not in conjugates:
            conjugates.append(current)
            current = self.mul(current, current)
        # Multiply out (x + c) for each conjugate c, over GF(2^m); the
        # product is guaranteed to collapse to GF(2) coefficients.
        coefficients = [1]
        for conjugate in conjugates:
            coefficients = self.poly_mul(coefficients, [conjugate, 1])
        packed = 0
        for degree, coefficient in enumerate(coefficients):
            if coefficient not in (0, 1):
                raise AssertionError("minimal polynomial not over GF(2)")
            if coefficient:
                packed |= 1 << degree
        return packed


# ---------------------------------------------------------------------------
# GF(2)[x] helpers on bit-packed polynomials (bit i = coefficient of x^i).
# ---------------------------------------------------------------------------


def gf2_degree(poly: int) -> int:
    """Degree of a bit-packed GF(2) polynomial (-1 for the zero poly)."""
    return poly.bit_length() - 1


def gf2_mul(a: int, b: int) -> int:
    """Carry-less multiplication of bit-packed GF(2) polynomials."""
    result = 0
    for position in bit_positions(b):
        result ^= a << position
    return result


def gf2_mod(a: int, modulus: int) -> int:
    """Remainder of bit-packed polynomial division over GF(2)."""
    if modulus == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    mod_degree = gf2_degree(modulus)
    while gf2_degree(a) >= mod_degree:
        a ^= modulus << (gf2_degree(a) - mod_degree)
    return a


def gf2_divmod(a: int, modulus: int) -> tuple:
    """Quotient and remainder of bit-packed GF(2) polynomial division."""
    if modulus == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    quotient = 0
    mod_degree = gf2_degree(modulus)
    while gf2_degree(a) >= mod_degree:
        shift = gf2_degree(a) - mod_degree
        quotient |= 1 << shift
        a ^= modulus << shift
    return quotient, a


def gf2_lcm(polys: Iterable[int]) -> int:
    """Least common multiple of bit-packed GF(2) polynomials.

    The BCH generator polynomial is the LCM of the minimal polynomials of
    alpha, alpha^2, ..., alpha^2t.  Since minimal polynomials are
    irreducible, LCM is the product over the *distinct* ones; this helper
    nonetheless computes a true LCM so it is safe for any input.
    """
    result = 1
    for poly in polys:
        if poly == 0:
            raise ValueError("lcm of zero polynomial is undefined")
        quotient, _ = gf2_divmod(result, _gcd_shift(result, poly))
        result = gf2_mul(quotient, poly)
    return result


def _gcd_shift(a: int, b: int) -> int:
    """Helper used by :func:`gf2_lcm`: gcd(a, b) over GF(2)[x]."""
    while b:
        a, b = b, gf2_mod(a, b)
    return a


def gf2_gcd(a: int, b: int) -> int:
    """Greatest common divisor of bit-packed GF(2) polynomials."""
    return _gcd_shift(a, b)
