"""Hamming single-error-correcting codes: the paper's per-line "ECC-1".

SuDoku provisions each 64-byte line with an ECC-1 capable of correcting
one bit anywhere in the protected word.  Per section III-E the ECC is
computed over data *and* CRC (543 bits), which needs 10 check bits -- the
"10 bits per line" the paper budgets.

The implementation uses the classic positional construction: codeword
positions are numbered 1..n, positions that are powers of two hold check
bits, and the syndrome of a corrupted word is the (1-based) position of a
single flipped bit.  Check bits and syndromes are evaluated with
precomputed parity masks so a full encode is ~r popcounts of the word
rather than a per-bit loop.

:class:`HammingSECDED` extends the code with an overall parity bit, which
distinguishes single errors (correctable) from double errors (detectable
but uncorrectable) -- used by the ECC-baseline studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.coding.bitvec import mask_of, popcount


def check_bits_needed(data_bits: int) -> int:
    """Minimum r with 2^r >= data_bits + r + 1 (Hamming bound for SEC)."""
    if data_bits <= 0:
        raise ValueError("data_bits must be positive")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


@dataclass(frozen=True)
class SECResult:
    """Outcome of a single-error-correcting decode.

    ``corrected_word`` is the (possibly repaired) codeword, ``data`` the
    extracted payload.  ``flipped_position`` is the 0-based codeword bit the
    decoder flipped, or ``None`` if the syndrome was clean.  ``valid`` is
    False only when the syndrome pointed outside the codeword -- a
    detectable malfunction that can only arise from multi-bit corruption.
    """

    corrected_word: int
    data: int
    flipped_position: Optional[int]
    valid: bool


class HammingSEC:
    """Systematic Hamming single-error-correcting code for ``data_bits``."""

    def __init__(self, data_bits: int) -> None:
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.k = data_bits
        self.r = check_bits_needed(data_bits)
        self.n = self.k + self.r

        # Positions 1..n; powers of two are check positions.
        self._check_positions = [1 << j for j in range(self.r)]
        check_set = set(self._check_positions)
        self._data_positions = [
            position for position in range(1, self.n + 1)
            if position not in check_set
        ]
        assert len(self._data_positions) == self.k

        # Scatter/gather masks: data bit i lives at codeword bit
        # (data_positions[i] - 1).
        self._data_cw_shift = [position - 1 for position in self._data_positions]

        # Parity masks over the *codeword*: bit j of the syndrome is the
        # parity of (codeword & syndrome_mask[j]), where syndrome_mask[j]
        # selects every codeword bit whose 1-based position has bit j set.
        self._syndrome_masks: List[int] = []
        for j in range(self.r):
            mask = 0
            for position in range(1, self.n + 1):
                if position & (1 << j):
                    mask |= 1 << (position - 1)
            self._syndrome_masks.append(mask)

        # Parity masks over the *data word* for encoding: check bit j is
        # the parity of data bits whose codeword position has bit j set.
        self._encode_masks: List[int] = []
        for j in range(self.r):
            mask = 0
            for data_index, position in enumerate(self._data_positions):
                if position & (1 << j):
                    mask |= 1 << data_index
            self._encode_masks.append(mask)

    # -- encoding -----------------------------------------------------------

    def encode(self, data: int) -> int:
        """Encode ``data`` (k bits) into an n-bit codeword."""
        if data < 0 or data >> self.k:
            raise ValueError(f"data does not fit in {self.k} bits")
        codeword = self._scatter(data)
        for j, mask in enumerate(self._encode_masks):
            if popcount(data & mask) & 1:
                codeword |= 1 << (self._check_positions[j] - 1)
        return codeword

    def _scatter(self, data: int) -> int:
        codeword = 0
        for data_index in range(self.k):
            if (data >> data_index) & 1:
                codeword |= 1 << self._data_cw_shift[data_index]
        return codeword

    def extract_data(self, codeword: int) -> int:
        """Gather the k data bits out of an n-bit codeword."""
        if codeword < 0 or codeword >> self.n:
            raise ValueError(f"codeword does not fit in {self.n} bits")
        data = 0
        for data_index in range(self.k):
            if (codeword >> self._data_cw_shift[data_index]) & 1:
                data |= 1 << data_index
        return data

    # -- decoding -----------------------------------------------------------

    def syndrome(self, codeword: int) -> int:
        """Syndrome of a codeword: 0 if clean, else a 1-based bit position.

        With more than one flipped bit the syndrome is the XOR of the
        flipped positions -- generally pointing at an *innocent* bit, which
        is exactly the ECC-1 miscorrection behaviour the paper's CRC check
        exists to catch.
        """
        if codeword < 0 or codeword >> self.n:
            raise ValueError(f"codeword does not fit in {self.n} bits")
        value = 0
        for j, mask in enumerate(self._syndrome_masks):
            if popcount(codeword & mask) & 1:
                value |= 1 << j
        return value

    def correct(self, codeword: int) -> SECResult:
        """Attempt single-error correction of ``codeword``."""
        syndrome = self.syndrome(codeword)
        if syndrome == 0:
            return SECResult(codeword, self.extract_data(codeword), None, True)
        if syndrome > self.n:
            # Syndrome points outside the codeword: cannot be a single-bit
            # error.  Leave the word untouched and flag the malfunction.
            return SECResult(codeword, self.extract_data(codeword), None, False)
        corrected = codeword ^ (1 << (syndrome - 1))
        return SECResult(corrected, self.extract_data(corrected), syndrome - 1, True)

    def decode(self, codeword: int) -> int:
        """Convenience: correct then return the data payload."""
        return self.correct(codeword).data

    @property
    def codeword_mask(self) -> int:
        """All-ones mask of codeword width."""
        return mask_of(self.n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HammingSEC(k={self.k}, r={self.r}, n={self.n})"


@dataclass(frozen=True)
class SECDEDResult:
    """Outcome of a SEC-DED decode."""

    corrected_word: int
    data: int
    flipped_position: Optional[int]
    double_error_detected: bool


class HammingSECDED:
    """Extended Hamming code: SEC plus double-error detection.

    The inner SEC codeword is augmented with one overall parity bit stored
    at codeword bit ``n`` (the top).  Decoding rules follow the classic
    extended-Hamming truth table:

    * syndrome 0, overall parity OK      -> clean
    * syndrome != 0, overall parity BAD  -> single error, correct it
    * syndrome != 0, overall parity OK   -> double error, flag DED
    * syndrome 0, overall parity BAD     -> error in the parity bit itself
    """

    def __init__(self, data_bits: int) -> None:
        self._sec = HammingSEC(data_bits)
        self.k = self._sec.k
        self.r = self._sec.r + 1
        self.n = self._sec.n + 1

    def encode(self, data: int) -> int:
        inner = self._sec.encode(data)
        overall = popcount(inner) & 1
        return inner | (overall << self._sec.n)

    def extract_data(self, codeword: int) -> int:
        return self._sec.extract_data(codeword & self._sec.codeword_mask)

    def correct(self, codeword: int) -> SECDEDResult:
        if codeword < 0 or codeword >> self.n:
            raise ValueError(f"codeword does not fit in {self.n} bits")
        inner = codeword & self._sec.codeword_mask
        stored_overall = (codeword >> self._sec.n) & 1
        parity_bad = (popcount(inner) & 1) != stored_overall
        syndrome = self._sec.syndrome(inner)

        if syndrome == 0 and not parity_bad:
            return SECDEDResult(codeword, self.extract_data(codeword), None, False)
        if syndrome == 0 and parity_bad:
            # The overall parity bit itself flipped; repair it.
            corrected = inner | ((stored_overall ^ 1) << self._sec.n)
            return SECDEDResult(corrected, self._sec.extract_data(inner), self._sec.n, False)
        if parity_bad:
            # Odd number of errors; treat as single and correct.
            if syndrome > self._sec.n:
                return SECDEDResult(codeword, self.extract_data(codeword), None, True)
            fixed_inner = inner ^ (1 << (syndrome - 1))
            corrected = fixed_inner | (stored_overall << self._sec.n)
            return SECDEDResult(
                corrected, self._sec.extract_data(fixed_inner), syndrome - 1, False
            )
        # Non-zero syndrome with good overall parity: double error.
        return SECDEDResult(codeword, self.extract_data(codeword), None, True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HammingSECDED(k={self.k}, r={self.r}, n={self.n})"
