"""Bit interleaving: spreading physical bursts across logical lines.

Disturb and wear-out faults are often *bursts* -- a run of physically
adjacent cells flipping together (section VI's PCM/Flash concerns).  A
classic hardware counter is interleaving: store logical line L's bits
strided across the physical row, so a physical burst of length <= D
lands at most one bit in any logical line -- turning a multi-bit fault
(RAID territory) into D single-bit faults (each a one-cycle ECC-1 fix).

:class:`BitInterleaver` implements the standard block interleaver over
a physical row holding ``depth`` logical lines:

* physical bit ``p`` of a row stores logical line ``p % depth``,
  bit ``p // depth``;
* a contiguous physical burst of length <= depth therefore touches each
  logical line at most once.

The mapping is a pure bijection on bit positions; ``interleave`` /
``deinterleave`` are exact inverses, which the property tests pin down.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.coding.bitvec import bit_positions, mask_of


class BitInterleaver:
    """Block bit-interleaver over rows of ``depth`` logical lines.

    :param line_bits: width of each logical line.
    :param depth: logical lines per physical row (the burst-tolerance
        distance).
    """

    def __init__(self, line_bits: int, depth: int) -> None:
        if line_bits <= 0:
            raise ValueError("line_bits must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.line_bits = line_bits
        self.depth = depth
        self.row_bits = line_bits * depth
        self._line_mask = mask_of(line_bits)

    # -- bit-position maps -------------------------------------------------------

    def physical_position(self, line_index: int, bit: int) -> int:
        """Physical row position of a logical (line, bit)."""
        self._check_line(line_index)
        if not 0 <= bit < self.line_bits:
            raise ValueError("bit out of range")
        return bit * self.depth + line_index

    def logical_position(self, physical_bit: int) -> Tuple[int, int]:
        """(line_index, bit) stored at a physical row position."""
        if not 0 <= physical_bit < self.row_bits:
            raise ValueError("physical bit out of range")
        return physical_bit % self.depth, physical_bit // self.depth

    # -- whole-row transforms -------------------------------------------------------

    def interleave(self, lines: List[int]) -> int:
        """Pack ``depth`` logical lines into one physical row value."""
        if len(lines) != self.depth:
            raise ValueError(f"expected {self.depth} lines")
        row = 0
        for line_index, line in enumerate(lines):
            if line < 0 or line > self._line_mask:
                raise ValueError("line does not fit in line_bits")
            for bit in bit_positions(line):
                row |= 1 << (bit * self.depth + line_index)
        return row

    def deinterleave(self, row: int) -> List[int]:
        """Unpack a physical row back into its logical lines."""
        if row < 0 or row >> self.row_bits:
            raise ValueError("row does not fit in row_bits")
        lines = [0] * self.depth
        for position in bit_positions(row):
            lines[position % self.depth] |= 1 << (position // self.depth)
        return lines

    # -- fault mapping ------------------------------------------------------------------

    def burst_to_line_errors(self, start: int, length: int) -> List[Tuple[int, int]]:
        """Logical (line, error-vector) pairs induced by a physical burst."""
        if length <= 0 or start < 0 or start + length > self.row_bits:
            raise ValueError("burst does not fit in the row")
        errors = {}
        for physical in range(start, start + length):
            line_index, bit = self.logical_position(physical)
            errors[line_index] = errors.get(line_index, 0) | (1 << bit)
        return sorted(errors.items())

    def max_bits_per_line(self, burst_length: int) -> int:
        """Worst-case bits any logical line absorbs from such a burst."""
        if burst_length <= 0:
            raise ValueError("burst_length must be positive")
        return (burst_length + self.depth - 1) // self.depth

    def _check_line(self, line_index: int) -> None:
        if not 0 <= line_index < self.depth:
            raise ValueError("line index out of range")
