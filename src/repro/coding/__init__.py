"""Error detection and correction substrates.

This subpackage implements, from scratch, every code SuDoku and its
baselines rely on:

* :mod:`repro.coding.bitvec` -- bit-vector helpers over Python integers.
* :mod:`repro.coding.parity` -- XOR parity lines and helpers for RAID-style
  region parity.
* :mod:`repro.coding.crc` -- a generic cyclic-redundancy-check engine and the
  CRC-31 instance SuDoku attaches to every cache line.
* :mod:`repro.coding.hamming` -- Hamming SEC / SEC-DED codes (the per-line
  "ECC-1" of the paper).
* :mod:`repro.coding.gf2m` -- binary extension-field arithmetic.
* :mod:`repro.coding.bch` -- t-error-correcting BCH codes (the "ECC-k"
  baselines, including the paper's ECC-6 comparison point).
"""

from repro.coding.bitvec import (
    BitVector,
    bit_positions,
    flip_bits,
    hamming_distance,
    popcount,
    random_bits,
    random_error_vector,
)
from repro.coding.crc import CRC, CRC31_SUDOKU, crc31
from repro.coding.gf2m import GF2m
from repro.coding.hamming import HammingSEC, HammingSECDED
from repro.coding.bch import BCH
from repro.coding.parity import ParityAccumulator, xor_reduce
from repro.coding.interleave import BitInterleaver
from repro.coding.crcdistance import (
    min_weight_multiple_bound,
    verify_low_weight_detection,
)

__all__ = [
    "BitVector",
    "bit_positions",
    "flip_bits",
    "hamming_distance",
    "popcount",
    "random_bits",
    "random_error_vector",
    "CRC",
    "CRC31_SUDOKU",
    "crc31",
    "GF2m",
    "HammingSEC",
    "HammingSECDED",
    "BCH",
    "ParityAccumulator",
    "xor_reduce",
    "BitInterleaver",
    "min_weight_multiple_bound",
    "verify_low_weight_detection",
]
