"""Empirical verification of CRC detection guarantees.

The paper's SDC analysis leans on exactly two properties of CRC-31
(section III-F): every error pattern of weight <= 7 on a cache line is
detected, and heavier patterns escape with probability 2^-31.  The cited
Koopman-zoo polynomial is not reachable offline, and the catalogue
polynomial this reproduction uses (CRC-31/PHILIPS) does not come with a
published distance profile at line length -- so this module *measures* it.

The relevant error domain is the 543-bit *payload* (512 data bits plus
the 31-bit stored CRC field): a pattern ``(e_data, e_crc)`` escapes
detection iff the CRC difference induced by ``e_data`` equals ``e_crc``.
That set of undetected patterns is a linear code; its minimum weight at
line length is the detection guarantee.  Provided here:

* :func:`min_weight_multiple_bound` -- exact meet-in-the-middle search
  for undetected patterns of weight <= 4.  Finding none *proves*
  Hamming distance >= 5 at this length; witnesses are returned if found.
* :func:`verify_low_weight_detection` -- randomized certification at any
  weight (statistical coverage for weights the exact search can't reach).
* :func:`misdetection_rate` -- Monte-Carlo escape rate of heavy random
  patterns (expected ~2^-31: zero hits at any feasible sample size).

EXPERIMENTS.md records the distance statement for the shipped polynomial.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.coding.crc import CRC


def syndrome_table(
    engine: CRC, data_bits: int = 512
) -> List[int]:
    """Per-payload-position syndromes.

    Positions ``[0, data_bits)`` are data-bit flips (syndrome = the CRC
    difference they induce); positions ``[data_bits, data_bits + width)``
    are flips of the stored CRC field itself (syndrome = that bit).  A
    pattern is undetected iff its positions' syndromes XOR to zero.
    """
    if data_bits <= 0 or data_bits % 8:
        raise ValueError("data_bits must be a positive byte multiple")
    zero = engine.compute_int(0, data_bits)
    table = [
        engine.compute_int(1 << position, data_bits) ^ zero
        for position in range(data_bits)
    ]
    table.extend(1 << bit for bit in range(engine.width))
    return table


@dataclass(frozen=True)
class DistanceReport:
    """Result of a minimum-weight undetected-pattern search."""

    payload_bits: int
    max_weight_searched: int
    undetected: Tuple[Tuple[int, ...], ...]

    @property
    def proven_distance_at_least(self) -> int:
        """Detection guarantee established by the search."""
        if self.undetected:
            return min(len(pattern) for pattern in self.undetected)
        return self.max_weight_searched + 1


def min_weight_multiple_bound(
    engine: CRC,
    data_bits: int = 512,
    max_weight: int = 4,
) -> DistanceReport:
    """Exact search for undetected payload patterns of weight <= 4.

    Weights 1-3 scan directly; weight 4 uses a meet-in-the-middle over
    syndrome pairs -- O(n^2) (~150 K entries at line length) instead of
    O(n^4).
    """
    if max_weight < 1 or max_weight > 4:
        raise ValueError("exact search supports weights 1..4")
    table = syndrome_table(engine, data_bits)
    n = len(table)
    undetected: List[Tuple[int, ...]] = []

    for i in range(n):
        if table[i] == 0:
            undetected.append((i,))

    pair_index: Dict[int, List[Tuple[int, int]]] = {}
    if max_weight >= 2:
        for i in range(n):
            for j in range(i + 1, n):
                value = table[i] ^ table[j]
                if value == 0:
                    undetected.append((i, j))
                pair_index.setdefault(value, []).append((i, j))

    if max_weight >= 3:
        for k in range(n):
            for i, j in pair_index.get(table[k], []):
                if k > j:
                    undetected.append((i, j, k))

    if max_weight >= 4:
        for matches in pair_index.values():
            if len(matches) < 2:
                continue
            for (i, j), (k, l) in itertools.combinations(matches, 2):
                if len({i, j, k, l}) == 4:
                    undetected.append(tuple(sorted((i, j, k, l))))

    unique = tuple(sorted(set(undetected), key=lambda p: (len(p), p)))
    return DistanceReport(
        payload_bits=n, max_weight_searched=max_weight, undetected=unique
    )


def verify_low_weight_detection(
    engine: CRC,
    weight: int,
    data_bits: int = 512,
    samples: int = 20_000,
    rng: Optional[random.Random] = None,
    table: Optional[List[int]] = None,
) -> int:
    """Count undetected random payload patterns of exactly ``weight`` bits.

    Returns the number of misses among ``samples`` random patterns (0 is
    the expected value at any weight for a healthy 31-bit CRC).
    """
    generator = rng if rng is not None else random.Random(0)
    syndromes = table if table is not None else syndrome_table(engine, data_bits)
    n = len(syndromes)
    misses = 0
    for _ in range(samples):
        accumulator = 0
        for position in generator.sample(range(n), weight):
            accumulator ^= syndromes[position]
        if accumulator == 0:
            misses += 1
    return misses


def misdetection_rate(
    engine: CRC,
    weight: int = 16,
    data_bits: int = 512,
    samples: int = 200_000,
    rng: Optional[random.Random] = None,
) -> float:
    """Monte-Carlo escape probability of heavy random patterns.

    The true value is ~2^-31; observable hits at feasible sample sizes
    would indicate a broken polynomial or engine.
    """
    misses = verify_low_weight_detection(
        engine, weight, data_bits=data_bits, samples=samples, rng=rng
    )
    return misses / samples
