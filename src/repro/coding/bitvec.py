"""Bit-vector utilities over Python integers.

Cache lines in this reproduction are fixed-width bit vectors.  A 512-bit
line is represented as a non-negative Python ``int`` whose bit ``i``
(``(value >> i) & 1``) is the i-th bit of the line.  Python integers give
us arbitrary precision, O(word) XOR (which is exactly the RAID-4 parity
operation), and cheap popcounts, so they are the natural substrate for a
simulator that mostly XORs 512-bit values together.

The :class:`BitVector` wrapper adds width checking and convenience methods
on top of the raw-int helpers; performance-critical inner loops (parity
accumulation, fault injection) use the module-level functions directly on
ints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence


if hasattr(int, "bit_count"):  # Python 3.10+
    def _popcount_nonneg(value: int) -> int:
        return value.bit_count()
else:  # pragma: no cover - exercised on 3.9 only
    #: Set-bit counts for every byte value; big ints are counted by
    #: walking their little-endian bytes through this table, which is
    #: several times faster than ``bin(value).count("1")`` at line widths.
    _BYTE_POPCOUNTS = bytes(bin(byte).count("1") for byte in range(256))

    def _popcount_nonneg(value: int) -> int:
        if value == 0:
            return 0
        data = value.to_bytes((value.bit_length() + 7) // 8, "little")
        return sum(map(_BYTE_POPCOUNTS.__getitem__, data))


def popcount(value: int) -> int:
    """Number of set bits in ``value`` (which must be non-negative)."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative integers")
    return _popcount_nonneg(value)


def bit_positions(value: int) -> List[int]:
    """Sorted list of set-bit positions in ``value``.

    ``bit_positions(0b1010) == [1, 3]``.
    """
    if value < 0:
        raise ValueError("bit_positions is defined for non-negative integers")
    positions = []
    index = 0
    while value:
        if value & 1:
            positions.append(index)
        value >>= 1
        index += 1
    return positions


def flip_bits(
    value: int, positions: Iterable[int], width: Optional[int] = None
) -> int:
    """Return ``value`` with every bit listed in ``positions`` flipped.

    When ``width`` is given, every position must satisfy
    ``0 <= position < width``; a position at or beyond the width raises
    instead of silently widening the value (which would break any caller
    holding fixed-width lines, e.g. the golden-copy heal invariant of the
    fault-injection campaigns).
    """
    mask = 0
    for position in positions:
        if position < 0:
            raise ValueError(f"bit position must be non-negative, got {position}")
        if width is not None and position >= width:
            raise ValueError(
                f"bit position {position} out of range for a {width}-bit line"
            )
        mask |= 1 << position
    return value ^ mask


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions in which ``a`` and ``b`` differ."""
    return popcount(a ^ b)


def mask_of(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError("width must be non-negative")
    return (1 << width) - 1


def random_bits(width: int, rng: Optional[random.Random] = None) -> int:
    """Uniformly random ``width``-bit value."""
    if width < 0:
        raise ValueError("width must be non-negative")
    generator = rng if rng is not None else random
    return generator.getrandbits(width) if width else 0


def random_error_vector(
    width: int, nerrors: int, rng: Optional[random.Random] = None
) -> int:
    """Error vector with exactly ``nerrors`` distinct set bits in ``width`` bits.

    This is the canonical way tests and the Monte-Carlo engine place a known
    number of faults in a line.
    """
    if not 0 <= nerrors <= width:
        raise ValueError(f"cannot place {nerrors} errors in {width} bits")
    generator = rng if rng is not None else random
    positions = generator.sample(range(width), nerrors)
    return flip_bits(0, positions, width=width)


def int_from_bits(bits: Sequence[int]) -> int:
    """Pack a little-endian sequence of 0/1 values into an int."""
    value = 0
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r} at index {index}")
        if bit:
            value |= 1 << index
    return value


def bits_from_int(value: int, width: int) -> List[int]:
    """Unpack ``value`` into a little-endian list of ``width`` 0/1 values."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >> width:
        raise ValueError(f"value does not fit in {width} bits")
    return [(value >> index) & 1 for index in range(width)]


@dataclass(frozen=True)
class BitVector:
    """A fixed-width, immutable bit vector.

    ``BitVector`` is a thin validated wrapper around ``(value, width)``.
    All mutating-style operations return new instances.  Use it at API
    boundaries (line codecs, fault reports); use raw ints inside hot loops.
    """

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError("width must be non-negative")
        if self.value < 0:
            raise ValueError("value must be non-negative")
        if self.value >> self.width:
            raise ValueError(
                f"value 0x{self.value:x} does not fit in {self.width} bits"
            )

    # -- constructors -----------------------------------------------------

    @classmethod
    def zeros(cls, width: int) -> "BitVector":
        """All-zero vector of the given width."""
        return cls(0, width)

    @classmethod
    def ones(cls, width: int) -> "BitVector":
        """All-one vector of the given width."""
        return cls(mask_of(width), width)

    @classmethod
    def random(cls, width: int, rng: Optional[random.Random] = None) -> "BitVector":
        """Uniformly random vector of the given width."""
        return cls(random_bits(width, rng), width)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitVector":
        """Build from a little-endian 0/1 sequence."""
        return cls(int_from_bits(bits), len(bits))

    @classmethod
    def from_bytes(cls, data: bytes) -> "BitVector":
        """Build from little-endian bytes (bit 0 = LSB of ``data[0]``)."""
        return cls(int.from_bytes(data, "little"), 8 * len(data))

    # -- queries -----------------------------------------------------------

    def bit(self, index: int) -> int:
        """The bit at ``index`` (0 = LSB)."""
        self._check_index(index)
        return (self.value >> index) & 1

    def popcount(self) -> int:
        """Number of set bits."""
        return popcount(self.value)

    def set_positions(self) -> List[int]:
        """Sorted positions of set bits."""
        return bit_positions(self.value)

    def to_bits(self) -> List[int]:
        """Little-endian list of 0/1 values."""
        return bits_from_int(self.value, self.width)

    def to_bytes(self) -> bytes:
        """Little-endian byte representation (width rounded up to bytes)."""
        return self.value.to_bytes((self.width + 7) // 8, "little")

    # -- derivations -------------------------------------------------------

    def with_bit(self, index: int, bit: int) -> "BitVector":
        """Copy with bit ``index`` set to ``bit``."""
        self._check_index(index)
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if bit:
            return BitVector(self.value | (1 << index), self.width)
        return BitVector(self.value & ~(1 << index) & mask_of(self.width), self.width)

    def flipped(self, positions: Iterable[int]) -> "BitVector":
        """Copy with every listed position flipped."""
        positions = list(positions)
        for position in positions:
            self._check_index(position)
        return BitVector(
            flip_bits(self.value, positions, width=self.width), self.width
        )

    def extract(self, offset: int, width: int) -> "BitVector":
        """Sub-vector of ``width`` bits starting at ``offset``."""
        if offset < 0 or width < 0 or offset + width > self.width:
            raise ValueError(
                f"extract({offset}, {width}) out of range for width {self.width}"
            )
        return BitVector((self.value >> offset) & mask_of(width), width)

    def concat(self, other: "BitVector") -> "BitVector":
        """Concatenation: ``other`` occupies the high bits of the result."""
        return BitVector(
            self.value | (other.value << self.width), self.width + other.width
        )

    # -- operators ----------------------------------------------------------

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self.value ^ other.value, self.width)

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self.value & other.value, self.width)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self.value | other.value, self.width)

    def __invert__(self) -> "BitVector":
        return BitVector(self.value ^ mask_of(self.width), self.width)

    def __len__(self) -> int:
        return self.width

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_bits())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitVector(0x{self.value:x}, width={self.width})"

    # -- internal ------------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.width:
            raise IndexError(f"bit index {index} out of range [0, {self.width})")

    def _check_width(self, other: "BitVector") -> None:
        if self.width != other.width:
            raise ValueError(
                f"width mismatch: {self.width} vs {other.width}"
            )
