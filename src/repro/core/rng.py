"""Seed/RNG resolution: one sanctioned fallback for every constructor.

Campaign determinism rests on RNG streams being pure functions of an
explicit seed.  Historically, ten constructors carried the idiom
``rng if rng is not None else np.random.default_rng()`` -- a silent
nondeterminism trap: forget to thread ``rng=`` anywhere along a call
chain and the run stops being reproducible without any signal.  The
``repro lint`` rule RPR002 now forbids that idiom; this module provides
the replacement.

:func:`resolve_rng` (numpy) and :func:`resolve_pyrandom` (stdlib) apply
one policy:

* an explicit ``rng`` wins (passing both ``rng`` and ``seed`` is an
  error -- the ambiguity has no right answer);
* an explicit ``seed`` derives a fresh generator deterministically;
* neither: a fresh OS-entropy generator is returned *and a one-time*
  :class:`UnseededRNGWarning` *is emitted per owner* -- fine for
  interactive exploration, loud enough that a campaign path reaching it
  gets noticed and fixed.
"""

from __future__ import annotations

import random
import warnings
from typing import Optional, Set, Union

import numpy as np

#: Seed types ``np.random.default_rng`` accepts (int or SeedSequence).
SeedLike = Union[int, np.random.SeedSequence]


class UnseededRNGWarning(RuntimeWarning):
    """A stochastic component was built without ``rng=`` or ``seed=``.

    Results involving it are not reproducible; campaigns and tests
    should always thread one of the two.
    """


#: Owners already warned for, so interactive sessions see each message
#: once instead of per construction.
_WARNED_OWNERS: Set[str] = set()


def _warn_unseeded(owner: str) -> None:
    if owner in _WARNED_OWNERS:
        return
    _WARNED_OWNERS.add(owner)
    warnings.warn(
        f"{owner} constructed without rng= or seed=: results will not be "
        "reproducible; pass an explicit seed for campaign or test use",
        UnseededRNGWarning,
        stacklevel=4,
    )


def reset_unseeded_warnings() -> None:
    """Forget which owners have warned (test isolation hook)."""
    _WARNED_OWNERS.clear()


def _check_exclusive(rng: object, seed: object, owner: str) -> None:
    if rng is not None and seed is not None:
        raise ValueError(
            f"{owner}: pass either rng= or seed=, not both "
            "(an explicit generator already encodes its seeding)"
        )


def resolve_rng(
    rng: Optional[np.random.Generator] = None,
    seed: Optional[SeedLike] = None,
    *,
    owner: str = "component",
) -> np.random.Generator:
    """Resolve a numpy :class:`~numpy.random.Generator` from rng/seed.

    :param rng: an existing generator (takes precedence; exclusive with
        ``seed``).
    :param seed: an int or ``SeedSequence`` to derive a generator from.
    :param owner: name used in the one-time unseeded warning.
    """
    _check_exclusive(rng, seed, owner)
    if rng is not None:
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    _warn_unseeded(owner)
    # The one sanctioned unseeded construction in the codebase (RPR002
    # exempts this module): interactive use, after the warning above.
    return np.random.default_rng()


def resolve_pyrandom(
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    *,
    owner: str = "component",
) -> random.Random:
    """Resolve a stdlib :class:`random.Random` from rng/seed.

    Stdlib counterpart of :func:`resolve_rng` for the rare-event and
    chaos streams, which use ``random.Random`` for its cheap
    ``getrandbits``/``sample`` on Python ints.
    """
    _check_exclusive(rng, seed, owner)
    if rng is not None:
        return rng
    if seed is not None:
        return random.Random(seed)
    _warn_unseeded(owner)
    return random.Random()
