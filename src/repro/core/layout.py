"""Per-line storage layout: data, CRC-31, ECC-1.

Section III-E of the paper fixes the composition order: the CRC is
computed over the data, and the ECC is then computed over CRC *and* data.
The stored line is therefore the Hamming codeword of ``data || crc``:

    payload  = data (512b)  ||  crc31(data) (31b)          -> 543 bits
    stored   = HammingSEC(543).encode(payload)             -> 553 bits

This ordering buys two properties the engines rely on:

* ECC-1 can repair a single fault whether it hit data, CRC, or an ECC
  check bit; and
* recomputing the CRC after an ECC "correction" exposes ECC
  miscorrections on lines that actually held 2+ faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.coding.crc import CRC, CRC31_SUDOKU
from repro.coding.hamming import HammingSEC


@dataclass(frozen=True)
class LineLayout:
    """Widths and field codecs of one protected line."""

    data_bits: int = 512
    crc_bits: int = 31

    def __post_init__(self) -> None:
        if self.data_bits <= 0 or self.data_bits % 8:
            raise ValueError("data_bits must be a positive byte multiple")
        if self.crc_bits != CRC31_SUDOKU.width:
            # The architecture is CRC-width agnostic in principle, but the
            # concrete codec is bound to the CRC-31 instance; widths must
            # agree so stored fields round-trip.
            raise ValueError(
                f"crc_bits={self.crc_bits} does not match the CRC-31 engine"
            )

    @property
    def crc(self) -> CRC:
        """The CRC engine used for the detection field."""
        return CRC31_SUDOKU

    @property
    def payload_bits(self) -> int:
        """Width of the ECC-protected payload (data + CRC)."""
        return self.data_bits + self.crc_bits

    @property
    def ecc(self) -> HammingSEC:
        """The per-line SEC code over the payload."""
        return _ecc_for(self.payload_bits)

    @property
    def ecc_bits(self) -> int:
        """Check bits of the per-line ECC (10 for the paper's layout)."""
        return self.ecc.r

    @property
    def stored_bits(self) -> int:
        """Total stored width per line (553 for the paper's layout)."""
        return self.ecc.n

    @property
    def overhead_bits(self) -> int:
        """Per-line metadata overhead: CRC + ECC check bits (41)."""
        return self.crc_bits + self.ecc_bits

    # -- payload (de)composition ------------------------------------------------

    def compose_payload(self, data: int, crc_value: int) -> int:
        """Pack ``data`` and ``crc`` into the ECC payload word."""
        if data < 0 or data >> self.data_bits:
            raise ValueError(f"data does not fit in {self.data_bits} bits")
        if crc_value < 0 or crc_value >> self.crc_bits:
            raise ValueError(f"crc does not fit in {self.crc_bits} bits")
        return data | (crc_value << self.data_bits)

    def split_payload(self, payload: int) -> Tuple[int, int]:
        """Unpack an ECC payload word into (data, crc)."""
        if payload < 0 or payload >> self.payload_bits:
            raise ValueError(f"payload does not fit in {self.payload_bits} bits")
        data = payload & ((1 << self.data_bits) - 1)
        crc_value = payload >> self.data_bits
        return data, crc_value

    def compute_crc(self, data: int) -> int:
        """CRC field value for a data word."""
        return self.crc.compute_int(data, self.data_bits)


# The Hamming code construction is deterministic per payload width and
# mildly expensive to build (mask precomputation), so share instances.
_ECC_CACHE: dict = {}


def _ecc_for(payload_bits: int) -> HammingSEC:
    ecc = _ECC_CACHE.get(payload_bits)
    if ecc is None:
        ecc = HammingSEC(payload_bits)
        _ECC_CACHE[payload_bits] = ecc
    return ecc
