"""The SuDoku controllers: SuDoku-X, SuDoku-Y, SuDoku-Z.

The three designs form a strict hierarchy (each keeps everything below):

========== ===============================================================
SuDoku-X   per-line ECC-1 + CRC-31, region RAID-4 via one Parity Line
           Table (Hash-1).  Repairs any number of 1-bit-fault lines and
           at most one multi-bit-fault line per group.
SuDoku-Y   adds Sequential Data Resurrection: parity-mismatch-guided
           flip-and-check repairs multiple 2-bit-fault lines per group,
           with a final RAID-4 pass for the last survivor.
SuDoku-Z   adds a second, skewed hash with its own PLT.  Lines a Hash-1
           group cannot repair retry in their Hash-2 groups (whose other
           members are different lines by construction); fixes feed back
           into the Hash-1 group until a fixed point.
========== ===============================================================

The engines operate on an :class:`repro.sttram.array.STTRAMArray` of
*physical frames* and satisfy the :class:`repro.sttram.scrub.LineScrubber`
protocol.  Because this is a simulator, every resolved line is audited
against the array's golden copy: an engine that *believes* it
succeeded but produced wrong bits records silent data corruption (SDC),
the quantity Table III tracks.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple, Union

from repro.coding.bitvec import popcount
from repro.core.config import SuDokuConfig
from repro.core.grouping import GroupMapper, SkewedGroupMapper
from repro.core.linecodec import DecodeStatus, LineCodec, LineDecode
from repro.core.layout import LineLayout
from repro.core.outcomes import Outcome
from repro.core.plt_ import ParityLineTable
from repro.core.raid4 import GroupScan, reconstruct_line, scan_group
from repro.core.sdr import resurrect
from repro.core.stats import CorrectionStats, LatencyModel
from repro.kernels import KernelBackend, resolve_backend
from repro.obs import Telemetry, resolve_telemetry
from repro.sttram.array import STTRAMArray

#: Bucket edges for modelled per-line repair latencies: the interesting
#: range spans the 1-cycle syndrome check (~0.3 ns) up to multi-group
#: Hash-2 repairs (tens of microseconds).
REPAIR_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-9, 1e-8, 1e-7, 1e-6, 2e-6, 5e-6, 1e-5, 5e-5, 1e-4,
)


class SuDokuEngine:
    """Base controller implementing the SuDoku-X design.

    :param array: the physical frame array this engine protects.  Its
        ``line_bits`` must equal the codec's stored width.
    :param group_size: RAID-Group size in lines (512 default, section III-D).
    :param audit: when True (the default -- this is a simulator), every
        outcome is cross-checked against the array's golden copy and
        downgraded to :data:`Outcome.SDC` if the engine silently produced
        wrong data.
    """

    level = "X"

    def __init__(
        self,
        array: STTRAMArray,
        group_size: int = 512,
        codec: Optional[LineCodec] = None,
        latency: Optional[LatencyModel] = None,
        audit: bool = True,
        format_array: bool = True,
        telemetry: Optional[Telemetry] = None,
        backend: Optional[Union[str, KernelBackend]] = None,
    ) -> None:
        self.codec = codec if codec is not None else LineCodec()
        if array.line_bits != self.codec.stored_bits:
            raise ValueError(
                f"array holds {array.line_bits}-bit lines but the codec "
                f"stores {self.codec.stored_bits}-bit words"
            )
        self.array = array
        self.group_size = group_size
        self.backend = resolve_backend(backend)
        self.mapper = GroupMapper(array.num_lines, group_size)
        self.plt = ParityLineTable(
            self.mapper.num_groups, array.line_bits, backend=self.backend
        )
        self.latency = latency if latency is not None else LatencyModel()
        self.audit = audit
        self.stats = CorrectionStats()
        self.correction_time_s = 0.0
        self._pending: Dict[int, Outcome] = {}
        #: Per-pass decode memo: frame -> (stored word, its LineDecode).
        #: Filled by batched prefetches; entries are only trusted while
        #: the frame's stored word still matches (repairs invalidate).
        self._decode_cache: Dict[int, Tuple[int, LineDecode]] = {}
        #: Optional structured event recorder (see repro.core.eventlog);
        #: attach one to capture per-line correction events.
        self.event_log = None
        self.attach_telemetry(resolve_telemetry(telemetry))
        self._init_extra_tables()
        if format_array:
            self.format()

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Attach a telemetry bundle (see :mod:`repro.obs`).

        Registers this engine's metric families and caches them so the
        scrub hot path pays one dict-free method call per event.  The
        default (null) bundle makes every call a no-op; results are
        bit-identical with telemetry attached or not.
        """
        self.telemetry = telemetry
        metrics = telemetry.metrics
        self._m_outcomes = metrics.counter(
            "sudoku_outcomes_total",
            "Resolved line outcomes by engine level and outcome label.",
            labels=("level", "outcome"),
        )
        self._m_corrections = metrics.counter(
            "sudoku_corrections_total",
            "Correction-mechanism invocations by engine level.",
            labels=("level", "mechanism"),
        )
        self._m_repair_latency = metrics.histogram(
            "sudoku_repair_latency_seconds",
            "Modelled hardware latency of resolving one line.",
            labels=("level",),
            buckets=REPAIR_LATENCY_BUCKETS,
        )
        self._m_metadata = metrics.counter(
            "sudoku_metadata_events_total",
            "Parity-metadata integrity events by engine level and kind.",
            labels=("level", "event"),
        )

    def _init_extra_tables(self) -> None:
        """Hook for subclasses that maintain additional parity tables."""

    # -- kernel backend -----------------------------------------------------------

    def set_backend(self, backend: Union[str, KernelBackend]) -> None:
        """Swap the kernel backend on this engine and all its tables.

        Backends are pure compute under a bit-identity contract, so this
        never changes results -- only how the bulk work is executed.
        """
        self.backend = resolve_backend(backend)
        for plt, _ in self._tables():
            plt.backend = self.backend
        self._decode_cache.clear()

    def _cached_decode(self, frame: int, stored: int) -> LineDecode:
        """The frame's prefetched decode, iff still valid for ``stored``.

        Repairs rewrite lines mid-pass (and chaos scans can revisit a
        frame), so a memoised decode is only trusted while the stored
        word it was computed from is unchanged; otherwise decode fresh.
        """
        entry = self._decode_cache.get(frame)
        if entry is not None and entry[0] == stored:
            return entry[1]
        return self.codec.decode(stored)

    def _prefetch_decodes(self, frames: List[int]) -> None:
        """Batch-decode frames into the per-pass memo (batched backends).

        Frames whose memo entry is still valid are skipped; the rest are
        decoded in one backend call.  A no-op for non-batched backends,
        where the scalar decode at point of use is exactly as fast.
        """
        if not self.backend.batched:
            return
        pending: List[int] = []
        words: List[int] = []
        pristine: List[int] = []
        pristine_words: List[int] = []
        for frame in frames:
            stored = self.array.read(frame)
            entry = self._decode_cache.get(frame)
            if entry is not None and entry[0] == stored:
                continue
            # A frame whose stored word still matches golden holds a
            # valid codeword (everything written goes through the codec
            # -- the same invariant scan_group's trusted_clean path
            # rests on), so its decode is known CLEAN and the backend
            # may skip the syndrome/CRC machinery for it.  The raw
            # dirty-set test is required here, not is_clean(): a line
            # whose only divergence is stuck-bit residue is *not* a
            # valid codeword.
            if not self.array.is_dirty(frame):
                pristine.append(frame)
                pristine_words.append(stored)
            else:
                pending.append(frame)
                words.append(stored)
        if pristine:
            decodes = self.backend.batch_decode_clean(self.codec, pristine_words)
            for frame, stored, decode in zip(pristine, pristine_words, decodes):
                self._decode_cache[frame] = (stored, decode)
        if not pending:
            return
        decodes = self.backend.batch_decode(self.codec, words)
        for frame, stored, decode in zip(pending, words, decodes):
            self._decode_cache[frame] = (stored, decode)

    def format(self) -> None:
        """Initialise every frame to the encoded zero line and zero parity.

        Hardware would do this at power-on; without it, raw (all-zero)
        frames are not valid codewords and the very first writes would
        trip the correction machinery.
        """
        self.array.fill_word(self.codec.encode(0))
        # Every group XORs an even number (group sizes are powers of two)
        # of identical words, so all parities are zero -- the tables'
        # initial state already; no rebuild needed.

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def from_config(
        cls, config: SuDokuConfig, audit: bool = True
    ) -> "SuDokuEngine":
        """Build an engine plus backing array from a :class:`SuDokuConfig`."""
        layout = LineLayout(data_bits=config.data_bits, crc_bits=config.crc_bits)
        codec = LineCodec(layout)
        array = STTRAMArray(config.geometry.num_lines, codec.stored_bits)
        latency = LatencyModel(
            read_s=config.sttram_read_s, write_s=config.sttram_write_s
        )
        return cls(
            array,
            group_size=config.group_size,
            codec=codec,
            latency=latency,
            audit=audit,
        )

    def initialize_parities(self) -> None:
        """Rebuild every PLT entry from the current array contents.

        Call once after bulk-loading the array (e.g. ``fill_random``) or
        to re-canonicalize after out-of-band repairs; incremental
        write-path updates keep parity consistent thereafter.  Members
        contribute their ECC-corrected word when one exists (CLEAN or
        CORRECTED decode), raw stored bits otherwise -- so a line whose
        only divergence is a single stuck bit does not poison the group
        parity for every later RAID repair of its groupmates.
        """
        for plt, mapper in self._tables():
            for group in range(mapper.num_groups):
                stored_words = [
                    self.array.read(frame) for frame in mapper.members(group)
                ]
                decodes = self.backend.batch_decode(self.codec, stored_words)
                members = [
                    stored
                    if decode.status is DecodeStatus.UNCORRECTABLE
                    else decode.word
                    for stored, decode in zip(stored_words, decodes)
                ]
                plt.rebuild(group, members)

    def _tables(self) -> List[Tuple[ParityLineTable, GroupMapper]]:
        """(PLT, mapper) pairs maintained by this engine."""
        return [(self.plt, self.mapper)]

    # -- functional write/read path -------------------------------------------------

    def write_data(self, frame: int, data: int) -> None:
        """Encode and store a data word, updating every parity table.

        Mirrors section III-B: the write is a read-modify-write, and the
        value read out is first put through the normal correction path so
        a fault in the *old* line cannot leak into the parity.  If the
        old line is *unrecoverable* (a write-path DUE: its data is
        already lost), the incremental update would poison the parity
        forever; instead the affected groups are rebuilt from their
        current stored words -- what a real controller's scrub pass does
        after signalling the poison.
        """
        old_word = self._corrected_old_word(frame)
        new_word = self.codec.encode(data)
        old_trusted = self.codec.verify(old_word)
        self.array.write(frame, new_word)
        if old_trusted:
            for plt, mapper in self._tables():
                group = mapper.group_of(frame)
                if plt.is_quarantined(group) or not plt.verify(group):
                    # Folding a delta into a corrupt entry would launder
                    # the corruption behind a freshly-valid CRC; rebuild
                    # from the stored members instead.
                    self.stats.parity_rebuilds += 1
                    plt.rebuild(
                        group,
                        [self.array.read(f) for f in mapper.members(group)],
                    )
                else:
                    plt.update(group, old_word, new_word)
        else:
            self.stats.parity_rebuilds += 1
            for plt, mapper in self._tables():
                group = mapper.group_of(frame)
                plt.rebuild(
                    group, [self.array.read(f) for f in mapper.members(group)]
                )
        self.stats.writes += 1

    def read_data(self, frame: int) -> Tuple[int, Outcome]:
        """Demand read: returns ``(data, outcome)``, repairing as needed."""
        self.stats.reads += 1
        self.correction_time_s += self.latency.syndrome_check()
        outcome = self._resolve_line(frame)
        data = self.codec.extract_data(self.array.read(frame))
        return data, outcome

    def _corrected_old_word(self, frame: int) -> int:
        """Old stored word with faults scrubbed out, for parity updates."""
        stored = self.array.read(frame)
        decode = self.codec.decode(stored)
        if decode.status is DecodeStatus.CLEAN:
            return stored
        if decode.status is DecodeStatus.CORRECTED:
            self.array.restore(frame, decode.word)
            return decode.word
        # Multi-bit fault on the write path: run the full repair first.
        self._repair_group_of(frame)
        return self.array.read(frame)

    # -- scrub protocol ----------------------------------------------------------------

    def begin_scrub_pass(self) -> None:
        """Reset per-pass caches; call before each scrub walk."""
        self._pending.clear()
        self._decode_cache.clear()

    def scrub_line(self, frame: int) -> str:
        """Resolve one line (LineScrubber protocol); returns outcome label."""
        fault_bits = (
            popcount(self.array.error_vector(frame))
            if self.event_log is not None
            else 0
        )
        outcome = self._pending.pop(frame, None)
        if outcome is None:
            outcome = self._resolve_line(frame)
        outcome = self._audit(frame, outcome)
        self.stats.record(outcome)
        if self.telemetry.enabled:
            self._m_outcomes.labels(level=self.level, outcome=outcome.value).inc()
            self._m_repair_latency.labels(level=self.level).observe(
                self._latency_for(outcome)
            )
        if self.event_log is not None:
            self.event_log.record(
                frame,
                outcome,
                fault_bits=fault_bits,
                group=self.mapper.group_of(frame),
                latency_s=self._latency_for(outcome),
            )
        return outcome.value

    def _latency_for(self, outcome: Outcome) -> float:
        """Modelled hardware latency of resolving a line this way."""
        if outcome is Outcome.CLEAN:
            return self.latency.syndrome_check()
        if outcome is Outcome.CORRECTED_ECC1:
            return self.latency.ecc1_repair()
        if outcome in (
            Outcome.CORRECTED_RAID4,
            Outcome.DUE,
            Outcome.METADATA_DUE,
            Outcome.SDC,
        ):
            return self.latency.raid4_repair(self.group_size)
        if outcome is Outcome.CORRECTED_SDR:
            # The flip-and-check search is bounded by the mismatch-width
            # cap, not a fixed constant (SuDoku-Y/Z expose the knob).
            return self.latency.sdr_repair(
                self.group_size, trials=getattr(self, "sdr_max_mismatches", 6)
            )
        return self.latency.hash2_repair(self.group_size, groups_read=2)

    def scrub_all(self) -> Dict[str, int]:
        """Convenience: scrub every frame, returning the outcome counts."""
        return self.scrub_frames(range(self.array.num_lines))

    def scrub_sparse(self) -> Dict[str, int]:
        """Fault-indexed scrub: decode only dirty frames, bulk-count clean.

        Frames outside the array's dirty set hold valid codewords (every
        write goes through the codec; injections and miscorrections mark
        the frame dirty), so decoding them is a no-op that returns
        ``clean`` -- this entry point skips those decodes and accounts the
        population in one addition.  Outcome counters are bit-identical
        to :meth:`scrub_all`; group scans, ``audit_metadata``, and the
        golden-copy audit fire exactly as in a dense pass for every frame
        actually decoded.
        """
        counts = Counter(self.scrub_frames(self.array.dirty_frames()))
        counts[Outcome.CLEAN.value] += self.account_bulk_clean(
            self.array.num_lines - sum(counts.values())
        )
        return dict(counts)

    def account_bulk_clean(self, count: int) -> int:
        """Record ``count`` known-clean lines without decoding them.

        Keeps ``stats`` and the outcome telemetry counter consistent with
        a dense pass; per-line repair-latency observations are *not*
        emitted for bulk-accounted lines (documented sparse-mode
        divergence -- histograms are diagnostics, not results).
        """
        if count < 0:
            raise ValueError("bulk clean count cannot be negative")
        self.stats.outcomes[Outcome.CLEAN.value] += count
        if count and self.telemetry.enabled:
            self._m_outcomes.labels(
                level=self.level, outcome=Outcome.CLEAN.value
            ).inc(count)
        return count

    def scrub_frames(self, frames) -> Dict[str, int]:
        """Scrub a subset of frames (plus whatever group repairs touch).

        The Monte-Carlo harness uses this to visit only the frames it
        injected faults into -- behaviourally identical to a full pass
        (clean lines contribute nothing but read time) at a fraction of
        the cost.  Outcomes of frames resolved collaterally by group
        repairs are drained and counted as well.
        """
        self.begin_scrub_pass()
        frames = list(frames)
        self._prefetch_decodes(frames)
        counts: Counter = Counter()
        for frame in frames:
            counts[self.scrub_line(frame)] += 1
        for frame, outcome in list(self._pending.items()):
            audited = self._audit(frame, outcome)
            self.stats.record(audited)
            counts[audited.value] += 1
        self._pending.clear()
        self._decode_cache.clear()
        return dict(counts)

    # -- line resolution --------------------------------------------------------------

    def _resolve_line(self, frame: int) -> Outcome:
        stored = self.array.read(frame)
        decode = self._cached_decode(frame, stored)
        if decode.status is DecodeStatus.CLEAN:
            return Outcome.CLEAN
        if decode.status is DecodeStatus.CORRECTED:
            self.array.restore(frame, decode.word)
            self.correction_time_s += self.latency.ecc1_repair()
            if self.telemetry.enabled:
                self._m_corrections.labels(
                    level=self.level, mechanism="ecc1"
                ).inc()
            return Outcome.CORRECTED_ECC1
        outcomes = self._repair_group_of(frame)
        outcome = outcomes.pop(frame, Outcome.DUE)
        # Group repair may have resolved other frames; remember their
        # outcomes so each line is reported exactly once per pass.
        for other_frame, other_outcome in outcomes.items():
            self._pending.setdefault(other_frame, other_outcome)
        return outcome

    def _repair_group_of(self, frame: int) -> Dict[int, Outcome]:
        """Run this design's group-level machinery; template method."""
        group = self.mapper.group_of(frame)
        return self._repair_hash1_group(group)

    def _repair_hash1_group(self, group: int) -> Dict[int, Outcome]:
        """SuDoku-X group repair: scan, then RAID-4 for a single survivor.

        Before any parity-consuming machinery runs, the group's PLT entry
        is verified; if it cannot be trusted (and cannot be rebuilt from
        clean members) the group-level repair is refused and surviving
        lines resolve to :data:`Outcome.METADATA_DUE` -- a detected
        failure, never a silent one.  Per-line ECC-1 fixes from the scan
        stand regardless: they never touch the parity store.
        """
        scan = self._scan(self.mapper, group)
        if self._verify_group_metadata(scan, self.plt):
            self._group_level_repair(scan, self.plt)
            fallback = Outcome.DUE
        else:
            fallback = Outcome.METADATA_DUE
        outcomes = dict(scan.line_outcomes)
        for frame in scan.uncorrectable:
            outcomes[frame] = fallback
        return outcomes

    def _verify_group_metadata(
        self, scan: GroupScan, plt: ParityLineTable
    ) -> bool:
        """Is this group's parity entry safe to use for repairs?

        Two detectors: the location-keyed per-entry CRC (catches raw SRAM
        bit flips that bypassed the checksum logic *and* another group's
        entry served by a perturbed mapping) and, when every member line
        decoded clean, a recompute-and-compare (defence in depth against
        wrong-but-consistent entries, e.g. a stale parity).  A
        detected-corrupt entry quarantines the group; when all members
        are verifiably clean the entry is immediately re-derived from
        them (the CRC-verified group rebuild) and trust restored.
        """
        group = scan.group
        known_bad = plt.is_quarantined(group)
        event = None
        if not known_bad:
            if not plt.verify(group):
                event = "crc_fault"
            elif not scan.uncorrectable and plt.mismatch(
                group, [scan.words[frame] for frame in scan.frames]
            ):
                event = "recompute_mismatch"
            if event is None:
                return True
            self.stats.metadata_faults_detected += 1
            self.stats.metadata_quarantines += 1
            plt.quarantine(group)
            if self.telemetry.enabled:
                self._m_metadata.labels(level=self.level, event=event).inc()
        if scan.uncorrectable:
            # A member is still corrupt: the parity cannot be re-derived
            # trustworthily, so the group stays quarantined.
            return False
        plt.rebuild(group, [scan.words[frame] for frame in scan.frames])
        self.stats.metadata_rebuilds += 1
        if self.telemetry.enabled:
            self._m_metadata.labels(level=self.level, event="rebuild").inc()
        return True

    def _group_level_repair(self, scan: GroupScan, plt: ParityLineTable) -> None:
        """Design-specific multi-line repair; X does RAID-4 only."""
        self._finish_with_raid4(scan, plt)

    def _finish_with_raid4(self, scan: GroupScan, plt: ParityLineTable) -> None:
        """If exactly one uncorrectable line remains, rebuild it."""
        if len(scan.uncorrectable) != 1:
            return
        self.stats.raid4_invocations += 1
        self.correction_time_s += self.latency.raid4_repair(len(scan.frames))
        self._m_corrections.labels(level=self.level, mechanism="raid4").inc()
        with self.telemetry.tracer.span(
            "raid4_repair", level=self.level, group=scan.group,
            frame=scan.uncorrectable[0],
        ):
            reconstruct_line(
                self.array, self.codec, plt, scan, scan.uncorrectable[0]
            )

    def _scan(self, mapper, group: int) -> GroupScan:
        self.stats.group_scans += 1
        self.stats.lines_scanned += mapper.group_size
        members = mapper.members(group)
        self._prefetch_decodes(list(members))
        return scan_group(
            self.array, self.codec, group, members, decoder=self._cached_decode
        )

    # -- audit ------------------------------------------------------------------------

    def _audit(self, frame: int, outcome: Outcome) -> Outcome:
        if not self.audit or outcome.is_due:
            return outcome
        if self.array.is_clean(frame):
            return outcome
        # The engine believes this line is fine, but it differs from what
        # was written: silent data corruption.
        return Outcome.SDC

    # -- metadata scrub ---------------------------------------------------------------

    def audit_metadata(self, repair: bool = True) -> Dict[str, int]:
        """Background metadata scrub: verify every PLT entry of every table.

        For each group the entry CRC is checked and -- when every member
        line decodes clean under ECC-1 -- the parity is recomputed from
        the members and compared.  With ``repair`` True (the default),
        detected-corrupt entries whose groups are otherwise healthy are
        rebuilt in place (lifting any quarantine); groups that cannot be
        re-derived yet are quarantined for the demand path to handle.

        Returns counts: ``groups`` inspected, ``crc_faults`` and
        ``recompute_faults`` newly detected, ``rebuilt``, and
        ``quarantined`` (still-untrusted entries left behind).
        """
        report = {
            "groups": 0,
            "crc_faults": 0,
            "recompute_faults": 0,
            "rebuilt": 0,
            "quarantined": 0,
        }
        for plt, mapper in self._tables():
            for group in range(mapper.num_groups):
                report["groups"] += 1
                members: List[int] = []
                members_clean = True
                for frame in mapper.members(group):
                    decode = self.codec.decode(self.array.read(frame))
                    if decode.status is DecodeStatus.UNCORRECTABLE:
                        members_clean = False
                        break
                    members.append(decode.word)
                event = None
                if not plt.verify(group):
                    event = "crc_fault"
                elif members_clean and plt.mismatch(group, members):
                    event = "recompute_mismatch"
                if event is None and not plt.is_quarantined(group):
                    continue
                if event is not None and not plt.is_quarantined(group):
                    report[
                        "crc_faults" if event == "crc_fault"
                        else "recompute_faults"
                    ] += 1
                    self.stats.metadata_faults_detected += 1
                    if self.telemetry.enabled:
                        self._m_metadata.labels(
                            level=self.level, event=event
                        ).inc()
                if repair and members_clean:
                    plt.rebuild(group, members)
                    report["rebuilt"] += 1
                    self.stats.metadata_rebuilds += 1
                else:
                    plt.quarantine(group)
                    report["quarantined"] += 1
        return report

    # -- reporting -----------------------------------------------------------------------

    @property
    def data_bits(self) -> int:
        """Payload bits per line (the campaign harness fill width)."""
        return self.codec.layout.data_bits

    @property
    def storage_overhead_bits_per_line(self) -> float:
        """Metadata bits per line: CRC + ECC + amortised parity storage."""
        parity_bits = sum(
            plt.num_groups * plt.line_bits for plt, _ in self._tables()
        )
        return (
            self.codec.layout.overhead_bits + parity_bits / self.array.num_lines
        )

    def describe(self) -> str:
        """One-line description for logs."""
        return (
            f"SuDoku-{self.level}: {self.array.num_lines} frames, "
            f"{self.group_size}-line groups, "
            f"{self.storage_overhead_bits_per_line:.1f} overhead bits/line"
        )


class SuDokuX(SuDokuEngine):
    """The base design: ECC-1 + CRC-31 + single-hash RAID-4."""

    level = "X"


class SuDokuY(SuDokuEngine):
    """SuDoku-X plus Sequential Data Resurrection."""

    level = "Y"

    def __init__(self, *args, sdr_max_mismatches: int = 6, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sdr_max_mismatches = sdr_max_mismatches

    def _group_level_repair(self, scan: GroupScan, plt: ParityLineTable) -> None:
        if len(scan.uncorrectable) > 1:
            self.stats.sdr_invocations += 1
            self._m_corrections.labels(level=self.level, mechanism="sdr").inc()
            with self.telemetry.tracer.span(
                "sdr_repair", level=self.level, group=scan.group,
                survivors=len(scan.uncorrectable),
            ) as span:
                report = resurrect(
                    self.array,
                    self.codec,
                    plt,
                    scan,
                    max_mismatches=self.sdr_max_mismatches,
                )
                span.set_attribute("trials", report.trials)
            self.stats.sdr_trials += report.trials
            self.correction_time_s += self.latency.sdr_repair(
                len(scan.frames), report.trials
            )
        self._finish_with_raid4(scan, plt)


class SuDokuZ(SuDokuY):
    """SuDoku-Y plus the skewed second hash (section V).

    Group repair escalates into a *peeling* fixed point: lines the Hash-1
    group cannot repair retry in their Hash-2 groups (different partner
    lines, by the skewing guarantee).  When a Hash-2 group is itself
    blocked by other faulty partners, those partners join the work list
    and are attacked through *their* other group -- the paper's "we can
    use the corrected value of that line to repair the other line"
    (section V-B), iterated to exhaustion.  Every fix simplifies some
    group, so the process peels the fault pattern like an erasure decoder
    and fails only on genuinely doubly-blocked cores of faulty lines.
    """

    level = "Z"

    #: Safety bound on peeling rounds (each round sweeps the work list).
    MAX_ROUNDS = 8

    def _init_extra_tables(self) -> None:
        self.mapper2 = SkewedGroupMapper(self.array.num_lines, self.group_size)
        self.plt2 = ParityLineTable(
            self.mapper2.num_groups, self.array.line_bits, backend=self.backend
        )

    def _tables(self) -> List[Tuple[ParityLineTable, GroupMapper]]:
        return [(self.plt, self.mapper), (self.plt2, self.mapper2)]

    def _repair_group_of(self, frame: int) -> Dict[int, Outcome]:
        outcomes = self._repair_hash1_group(self.mapper.group_of(frame))
        # METADATA_DUE lines are prime Hash-2 candidates: their Hash-1
        # parity is quarantined, but the Hash-2 table is independent.
        unresolved = {f for f, o in outcomes.items() if o.is_due}
        if not unresolved:
            return outcomes

        self.stats.hash2_invocations += 1
        self._m_corrections.labels(level=self.level, mechanism="hash2").inc()
        with self.telemetry.tracer.span(
            "hash2_repair", level=self.level,
            group=self.mapper.group_of(frame), survivors=len(unresolved),
        ):
            outcomes = self._peel_hash2(outcomes, unresolved)
        return outcomes

    def _peel_hash2(
        self, outcomes: Dict[int, Outcome], unresolved: set
    ) -> Dict[int, Outcome]:
        """The Hash-2 peeling fixed point (split out for span scoping)."""
        seen = set(unresolved)
        for _ in range(self.MAX_ROUNDS):
            progressed = False
            for survivor in sorted(unresolved):
                if survivor not in unresolved:
                    continue
                for mapper, plt in (
                    (self.mapper2, self.plt2),
                    (self.mapper, self.plt),
                ):
                    scan = self._scan(mapper, mapper.group_of(survivor))
                    self.correction_time_s += self.latency.raid4_repair(
                        len(scan.frames)
                    )
                    if self._verify_group_metadata(scan, plt):
                        self._group_level_repair(scan, plt)
                    for fixed_frame, fixed_outcome in scan.line_outcomes.items():
                        if fixed_frame in unresolved:
                            unresolved.discard(fixed_frame)
                            outcomes[fixed_frame] = Outcome.CORRECTED_HASH2
                            progressed = True
                        elif fixed_frame not in outcomes:
                            outcomes[fixed_frame] = fixed_outcome
                    # Faulty partners blocking this group join the work
                    # list; their *other* group may peel them next round.
                    for blocked in scan.uncorrectable:
                        if blocked not in seen:
                            seen.add(blocked)
                            unresolved.add(blocked)
                            progressed = True
                    if survivor not in unresolved:
                        break
            if not unresolved or not progressed:
                break
        for survivor in unresolved:
            # Preserve the metadata attribution when that is why the
            # line could not be repaired anywhere.
            if outcomes.get(survivor) is not Outcome.METADATA_DUE:
                outcomes[survivor] = Outcome.DUE
        return outcomes


def build_engine(
    level: str,
    array: STTRAMArray,
    group_size: int = 512,
    audit: bool = True,
    **kwargs,
) -> SuDokuEngine:
    """Factory: build a SuDoku engine by level name ('X', 'Y', or 'Z')."""
    classes = {"X": SuDokuX, "Y": SuDokuY, "Z": SuDokuZ}
    try:
        cls = classes[level.upper()]
    except KeyError:
        raise ValueError(f"unknown SuDoku level {level!r}; expected X, Y, or Z")
    return cls(array, group_size=group_size, audit=audit, **kwargs)
