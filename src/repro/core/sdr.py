"""Sequential Data Resurrection (section IV).

RAID-4 alone cannot recover a group with two or more faulty lines.  SDR
exploits the fact that the "failed units" are lines with only a *few*
faulty bits: the group's parity mismatch enumerates candidate faulty-bit
positions, and a line with two faults becomes ECC-1-correctable the
moment one of its faults is flipped away.  For every uncorrectable line,
SDR flips each mismatch position in turn, applies ECC-1, and accepts the
result iff the line's CRC endorses it.

The loop recomputes the mismatch after every successful resurrection
(each repaired line removes its fault positions from the mismatch,
shrinking the search for the remaining lines) and stops when a pass makes
no progress.  Per the paper, SDR is not attempted when the mismatch has
more than ``max_mismatches`` (default six) candidate positions.

If SDR leaves exactly one line unrepaired, the caller finishes it with
plain RAID-4 reconstruction -- "if we correct even N-1 faulty lines out
of the N faulty lines ... we correct the final uncorrectable line using
the RAID-4 based correction" (section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.coding.bitvec import bit_positions
from repro.core.linecodec import LineCodec
from repro.core.outcomes import Outcome
from repro.core.plt_ import ParityLineTable
from repro.core.raid4 import GroupScan
from repro.sttram.array import STTRAMArray


@dataclass
class SDRReport:
    """Accounting of one SDR invocation (feeds the latency model).

    ``mismatch_positions`` is the *initial* parity-mismatch width -- the
    candidate count that sizes the flip-and-check search and the
    ``max_mismatches`` give-up test.  (It was previously overwritten on
    every while-round, silently recording the final, smallest width
    instead.)  ``peak_mismatch_positions`` is the largest width seen
    across rounds (equal to the initial width unless a CRC-endorsed
    miscorrection *grew* the mismatch), and ``mismatch_history`` records
    the width at the top of each round for diagnostics.
    """

    resurrected_frames: List[int]
    trials: int = 0
    mismatch_positions: int = 0
    peak_mismatch_positions: int = 0
    mismatch_history: List[int] = field(default_factory=list)
    gave_up_too_many_mismatches: bool = False


def resurrect(
    array: STTRAMArray,
    codec: LineCodec,
    plt: ParityLineTable,
    scan: GroupScan,
    max_mismatches: int = 6,
) -> SDRReport:
    """Run SDR over a scanned group, repairing what it can in place.

    Mutates ``scan``: resurrected frames move out of
    ``scan.uncorrectable``, their words are updated, and their outcome is
    recorded as :data:`Outcome.CORRECTED_SDR`.  Whatever remains in
    ``scan.uncorrectable`` is the caller's problem (final RAID-4 pass, the
    second hash, or a DUE).
    """
    report = SDRReport(resurrected_frames=[])
    while scan.uncorrectable:
        mismatch = plt.mismatch(scan.group, [scan.words[f] for f in scan.frames])
        positions = bit_positions(mismatch)
        width = len(positions)
        report.mismatch_history.append(width)
        if len(report.mismatch_history) == 1:
            report.mismatch_positions = width
        report.peak_mismatch_positions = max(
            report.peak_mismatch_positions, width
        )
        if not positions:
            # Perfectly overlapping faults leave no trace in the parity
            # (Fig. 3c); SDR has nothing to enumerate.
            break
        if len(positions) > max_mismatches:
            report.gave_up_too_many_mismatches = True
            break

        progressed = False
        for frame in list(scan.uncorrectable):
            word = scan.words[frame]
            for position in positions:
                report.trials += 1
                repaired = codec.try_flip_and_repair(word, position)
                if repaired is None:
                    continue
                array.restore(frame, repaired)
                scan.words[frame] = repaired
                scan.uncorrectable.remove(frame)
                scan.line_outcomes[frame] = Outcome.CORRECTED_SDR
                report.resurrected_frames.append(frame)
                progressed = True
                break
        if not progressed:
            break
        # A resurrection changes the group XOR; re-derive the mismatch so
        # the next line searches only the still-unexplained positions.
    return report
