"""Structured correction-event logging (FaultSim-style [50, 52]).

Campaigns usually want aggregate counters (`CorrectionStats`), but
post-mortem analyses -- which mechanism fired for which fault pattern,
how correction work clusters in time, which groups are hot -- need the
individual events.  :class:`EventLog` is an optional, bounded recorder
the engines feed when attached; it costs nothing when absent.

Events are plain dataclasses and serialise to dicts/JSON lines, so logs
can be shipped to external analysis without this package.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.core.outcomes import Outcome
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class CorrectionEvent:
    """One resolved line.

    :param sequence: monotonically increasing event number.
    :param interval: scrub-interval index (campaign-provided; -1 when
        the driver does not track intervals).
    :param frame: physical frame index.
    :param outcome: outcome label (an :class:`Outcome` value).
    :param fault_bits: corrupted bits at resolution time (0 when the
        driver does not know, e.g. audit-off runs).
    :param group: Hash-1 group of the frame.
    :param latency_s: modelled hardware latency charged to the event.
    """

    sequence: int
    interval: int
    frame: int
    outcome: str
    fault_bits: int
    group: int
    latency_s: float

    def to_json(self) -> str:
        """One JSON line."""
        return json.dumps(asdict(self), separators=(",", ":"))


class EventLog:
    """Bounded in-memory event recorder.

    :param capacity: maximum retained events; the oldest are dropped
        beyond it (the totals keep counting).  The backing store is a
        ``deque(maxlen=capacity)``, so eviction at capacity is O(1) --
        logs sized in the hundreds of thousands stay cheap to feed.
    :param metrics: optional :class:`repro.obs.metrics.MetricsRegistry`;
        when given, every recorded event also feeds the
        ``eventlog_events_total`` / ``eventlog_dropped_total`` counters
        and the ``eventlog_latency_seconds`` histogram.
    """

    def __init__(
        self,
        capacity: int = 100_000,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[CorrectionEvent] = deque(maxlen=capacity)
        self._sequence = 0
        self._dropped = 0
        self.interval = -1
        self.totals: Counter = Counter()
        self._m_events = self._m_dropped = self._m_latency = None
        if metrics is not None:
            self._m_events = metrics.counter(
                "eventlog_events_total",
                "Correction events recorded, by outcome label.",
                labels=("outcome",),
            )
            self._m_dropped = metrics.counter(
                "eventlog_dropped_total",
                "Events evicted from the bounded event log.",
            )
            self._m_latency = metrics.histogram(
                "eventlog_latency_seconds",
                "Modelled repair latency attributed to recorded events.",
                labels=("outcome",),
                buckets=(1e-9, 1e-8, 1e-7, 1e-6, 2e-6, 5e-6, 1e-5, 5e-5, 1e-4),
            )

    # -- recording -----------------------------------------------------------------

    def begin_interval(self, index: int) -> None:
        """Tag subsequent events with a campaign interval index."""
        self.interval = index

    def record(
        self,
        frame: int,
        outcome: Outcome,
        fault_bits: int = 0,
        group: int = -1,
        latency_s: float = 0.0,
    ) -> CorrectionEvent:
        """Append one event."""
        event = CorrectionEvent(
            sequence=self._sequence,
            interval=self.interval,
            frame=frame,
            outcome=outcome.value,
            fault_bits=fault_bits,
            group=group,
            latency_s=latency_s,
        )
        self._sequence += 1
        self.totals[outcome.value] += 1
        if len(self._events) == self.capacity:
            # deque(maxlen=...) evicts the oldest entry on append in O(1).
            self._dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
        self._events.append(event)
        if self._m_events is not None:
            self._m_events.labels(outcome=outcome.value).inc()
            self._m_latency.labels(outcome=outcome.value).observe(latency_s)
        return event

    # -- access --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[CorrectionEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded to honour the capacity bound."""
        return self._dropped

    def events_for_frame(self, frame: int) -> List[CorrectionEvent]:
        """All retained events touching one frame."""
        return [event for event in self._events if event.frame == frame]

    def hottest_groups(self, top: int = 5) -> List[Tuple[int, int]]:
        """(group, event count) pairs, busiest first (clean excluded).

        >>> log = EventLog()
        >>> _ = log.record(1, Outcome.CORRECTED_RAID4, group=7)
        >>> _ = log.record(2, Outcome.CORRECTED_RAID4, group=7)
        >>> _ = log.record(3, Outcome.CORRECTED_ECC1, group=2)
        >>> log.hottest_groups(top=2)
        [(7, 2), (2, 1)]
        """
        counts: Counter = Counter()
        for event in self._events:
            if event.outcome != Outcome.CLEAN.value and event.group >= 0:
                counts[event.group] += 1
        return counts.most_common(top)

    def latency_by_outcome(self) -> Dict[str, float]:
        """Total modelled latency attributed to each outcome label."""
        totals: Dict[str, float] = {}
        for event in self._events:
            totals[event.outcome] = totals.get(event.outcome, 0.0) + event.latency_s
        return totals

    def to_json_lines(self) -> str:
        """The retained events as newline-delimited JSON."""
        return "\n".join(event.to_json() for event in self._events)

    @classmethod
    def from_json_lines(cls, text: str, capacity: int = 100_000) -> "EventLog":
        """Rebuild a log from :meth:`to_json_lines` output."""
        log = cls(capacity=capacity)
        for line in text.splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            outcome = Outcome(payload["outcome"])
            log.begin_interval(payload["interval"])
            log.record(
                frame=payload["frame"],
                outcome=outcome,
                fault_bits=payload["fault_bits"],
                group=payload["group"],
                latency_s=payload["latency_s"],
            )
        return log
