"""SuDoku: the paper's primary contribution.

Everything specific to the SuDoku architecture lives here:

* :mod:`repro.core.config` -- configuration and the paper-constant registry.
* :mod:`repro.core.layout` / :mod:`repro.core.linecodec` -- the per-line
  format (data, CRC-31, ECC-1) and its encode/verify/repair operations.
* :mod:`repro.core.grouping` -- RAID-Group hash functions (Hash-1, Hash-2).
* :mod:`repro.core.plt_` -- the Parity Line Table.
* :mod:`repro.core.raid4` -- group scan and single-line reconstruction.
* :mod:`repro.core.sdr` -- Sequential Data Resurrection.
* :mod:`repro.core.engine` -- the SuDoku-X / -Y / -Z controllers.
* :mod:`repro.core.outcomes` / :mod:`repro.core.stats` -- outcome taxonomy
  and counters.
* :mod:`repro.core.rng` -- seed/RNG resolution (the sanctioned fallback
  policed by the ``repro lint`` RPR002 rule).
"""

from repro.core.config import PAPER, PaperConstants, SuDokuConfig
from repro.core.layout import LineLayout
from repro.core.linecodec import DecodeStatus, LineCodec, LineDecode
from repro.core.grouping import GroupMapper, SkewedGroupMapper
from repro.core.plt_ import ParityLineTable
from repro.core.outcomes import Outcome
from repro.core.engine import SuDokuEngine, SuDokuX, SuDokuY, SuDokuZ, build_engine
from repro.core.rng import UnseededRNGWarning, resolve_pyrandom, resolve_rng
from repro.core.stats import CorrectionStats, LatencyModel

__all__ = [
    "PAPER",
    "PaperConstants",
    "SuDokuConfig",
    "LineLayout",
    "DecodeStatus",
    "LineCodec",
    "LineDecode",
    "GroupMapper",
    "SkewedGroupMapper",
    "ParityLineTable",
    "Outcome",
    "SuDokuEngine",
    "SuDokuX",
    "SuDokuY",
    "SuDokuZ",
    "build_engine",
    "CorrectionStats",
    "LatencyModel",
    "UnseededRNGWarning",
    "resolve_pyrandom",
    "resolve_rng",
]
