"""RAID-Group hash functions.

SuDoku-X/Y use one partition of the cache's physical frames into
RAID-Groups (Hash-1: consecutive runs of ``group_size`` frames).
SuDoku-Z adds a second, *skewed* partition (Hash-2) with the guarantee
that no two frames share a group under both hashes -- the property that
makes retrying a failed group under the other hash effective (section V-A).

With ``g = log2(group_size)``, the paper's construction is:

* Hash-1 group id: drop frame bits ``[0, g)``  (consecutive frames group).
* Hash-2 group id: drop frame bits ``[g, 2g)`` (frames striding 2^g group).

Two frames in the same Hash-1 group differ only in bits ``[0, g)``; those
bits are *part of* the Hash-2 group id, so the frames necessarily land in
different Hash-2 groups -- and symmetrically.  The construction needs at
least ``2^(2g)`` frames, which holds for every configuration studied
(paper default: 2^20 frames, g = 9).
"""

from __future__ import annotations

from typing import List


class GroupMapper:
    """Single-hash partition of frames into consecutive RAID-Groups."""

    def __init__(self, num_frames: int, group_size: int) -> None:
        _validate(num_frames, group_size)
        self.num_frames = num_frames
        self.group_size = group_size
        self._shift = group_size.bit_length() - 1

    @property
    def num_groups(self) -> int:
        """Total RAID-Groups in the partition."""
        return self.num_frames // self.group_size

    def group_of(self, frame: int) -> int:
        """Group id of a physical frame."""
        self._check(frame)
        return frame >> self._shift

    def members(self, group: int) -> List[int]:
        """Frames belonging to a group, ascending."""
        if not 0 <= group < self.num_groups:
            raise ValueError("group id out of range")
        base = group << self._shift
        return list(range(base, base + self.group_size))

    def _check(self, frame: int) -> None:
        if not 0 <= frame < self.num_frames:
            raise IndexError(f"frame {frame} out of range")


class SkewedGroupMapper:
    """The Hash-2 partition: frames striding ``group_size`` share a group.

    Group id construction: remove bits ``[g, 2g)`` from the frame index
    and concatenate the remainder.  Members of a group enumerate all
    values of the removed bits.
    """

    def __init__(self, num_frames: int, group_size: int) -> None:
        _validate(num_frames, group_size)
        g = group_size.bit_length() - 1
        if num_frames < group_size * group_size:
            raise ValueError(
                "skewed hashing needs at least group_size^2 frames "
                f"({group_size * group_size}), got {num_frames}"
            )
        self.num_frames = num_frames
        self.group_size = group_size
        self._g = g
        self._low_mask = group_size - 1

    @property
    def num_groups(self) -> int:
        """Total RAID-Groups in the partition."""
        return self.num_frames // self.group_size

    def group_of(self, frame: int) -> int:
        """Group id of a physical frame."""
        if not 0 <= frame < self.num_frames:
            raise IndexError(f"frame {frame} out of range")
        low = frame & self._low_mask
        high = frame >> (2 * self._g)
        return low | (high << self._g)

    def members(self, group: int) -> List[int]:
        """Frames belonging to a group, ascending."""
        if not 0 <= group < self.num_groups:
            raise ValueError("group id out of range")
        low = group & self._low_mask
        high = group >> self._g
        base = low | (high << (2 * self._g))
        return [base | (middle << self._g) for middle in range(self.group_size)]


def never_colocated(
    hash1: GroupMapper, hash2: SkewedGroupMapper, frame_a: int, frame_b: int
) -> bool:
    """Check the skewing invariant for a pair of distinct frames.

    Returns True when the pair does *not* share a group under both hashes
    -- the property section V-A requires.  Exposed for property-based
    testing.
    """
    if frame_a == frame_b:
        raise ValueError("frames must be distinct")
    same1 = hash1.group_of(frame_a) == hash1.group_of(frame_b)
    same2 = hash2.group_of(frame_a) == hash2.group_of(frame_b)
    return not (same1 and same2)


def _validate(num_frames: int, group_size: int) -> None:
    if group_size <= 1 or group_size & (group_size - 1):
        raise ValueError("group size must be a power of two greater than one")
    if num_frames <= 0 or num_frames % group_size:
        raise ValueError("group size must tile the frame count")
