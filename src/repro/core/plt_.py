"""The Parity Line Table (PLT).

One XOR parity line per RAID-Group, held in a small SRAM structure beside
the STTRAM array (128 KB per table for the paper's 64 MB cache; SuDoku-Z
keeps two).  The table supports the two hardware operations:

* **write-path update** (section III-B): every cache write folds
  ``old ^ new`` into the group's parity -- a read-modify-write that never
  touches the other group members; and
* **scrub-path rebuild/mismatch**: during correction the controller
  recomputes the group parity from the (single-bit-corrected) members and
  diffs it against the stored parity to locate candidate faulty bits.

The PLT is SRAM, not STTRAM, so the fault injectors never corrupt it --
matching the paper's design assumption.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.coding.bitvec import mask_of
from repro.coding.parity import xor_reduce


class ParityLineTable:
    """Per-group parity store for one hash function."""

    def __init__(self, num_groups: int, line_bits: int) -> None:
        if num_groups <= 0:
            raise ValueError("num_groups must be positive")
        if line_bits <= 0:
            raise ValueError("line_bits must be positive")
        self.num_groups = num_groups
        self.line_bits = line_bits
        self._mask = mask_of(line_bits)
        self._parity: List[int] = [0] * num_groups
        self.write_updates = 0  # PLT write traffic, for section VII-I

    # -- hardware operations ------------------------------------------------------

    def parity(self, group: int) -> int:
        """Stored parity line of a group."""
        self._check_group(group)
        return self._parity[group]

    def update(self, group: int, old_word: int, new_word: int) -> None:
        """Write-path read-modify-write: fold ``old ^ new`` into parity."""
        self._check_group(group)
        self._check_word(old_word)
        self._check_word(new_word)
        self._parity[group] ^= old_word ^ new_word
        self.write_updates += 1

    def rebuild(self, group: int, members: Sequence[int]) -> int:
        """Recompute and store a group's parity from member words."""
        self._check_group(group)
        for word in members:
            self._check_word(word)
        value = xor_reduce(members)
        self._parity[group] = value
        return value

    def mismatch(self, group: int, members: Sequence[int]) -> int:
        """Stored parity XOR recomputed parity: candidate fault positions."""
        self._check_group(group)
        return self._parity[group] ^ xor_reduce(members)

    # -- reporting ------------------------------------------------------------------

    @property
    def storage_bytes(self) -> int:
        """SRAM footprint of this table (128 KB for the paper's default)."""
        return (self.num_groups * self.line_bits + 7) // 8

    def amortised_bits_per_line(self, num_lines: int) -> float:
        """Parity storage amortised over protected lines (paper: ~1 bit/line/table)."""
        if num_lines <= 0:
            raise ValueError("num_lines must be positive")
        return self.num_groups * self.line_bits / num_lines

    # -- internal -------------------------------------------------------------------

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range")

    def _check_word(self, word: int) -> None:
        if word < 0 or word > self._mask:
            raise ValueError(f"word does not fit in {self.line_bits} bits")
