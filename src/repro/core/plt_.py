"""The Parity Line Table (PLT).

One XOR parity line per RAID-Group, held in a small SRAM structure beside
the STTRAM array (128 KB per table for the paper's 64 MB cache; SuDoku-Z
keeps two).  The table supports the two hardware operations:

* **write-path update** (section III-B): every cache write folds
  ``old ^ new`` into the group's parity -- a read-modify-write that never
  touches the other group members; and
* **scrub-path rebuild/mismatch**: during correction the controller
  recomputes the group parity from the (single-bit-corrected) members and
  diffs it against the stored parity to locate candidate faulty bits.

The paper treats the PLT as axiomatically clean (it is SRAM, not
STTRAM).  Field studies of deployed memory systems show ECC/metadata
structures fail too, so this reproduction drops the axiom: every entry
carries a CRC-32 checksum maintained by the legitimate hardware
operations, the chaos harness (:mod:`repro.resilience.chaos`) can
corrupt entries behind the checksum's back, and the engines verify
entries before trusting them (see ``SuDokuEngine``).  Groups whose
parity cannot currently be trusted are *quarantined* until a
CRC-verified rebuild restores them.

The entry checksum is **location-keyed**: it covers the group index as
well as the parity word.  This matters because every code in the stack
(ECC-1, CRC-31, XOR parity) is linear, so another group's parity fed
into a RAID-4 reconstruction produces a *valid codeword with wrong
data* -- the one fault the line codec is structurally blind to.  Keying
the checksum by location (the trick self-describing filesystem metadata
uses against misdirected writes) turns that silent-corruption pathway
into an immediately detected ``verify`` failure.

With chaos disabled nothing ever corrupts an entry, every verification
passes, and behaviour is bit-identical to the axiomatically-clean table.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Set, Union

from repro.coding.bitvec import mask_of
from repro.kernels import KernelBackend, resolve_backend


class ParityLineTable:
    """Per-group parity store for one hash function."""

    def __init__(
        self,
        num_groups: int,
        line_bits: int,
        backend: Optional[Union[str, KernelBackend]] = None,
    ) -> None:
        if num_groups <= 0:
            raise ValueError("num_groups must be positive")
        if line_bits <= 0:
            raise ValueError("line_bits must be positive")
        self.num_groups = num_groups
        self.line_bits = line_bits
        self.backend = resolve_backend(backend)
        self._mask = mask_of(line_bits)
        self._entry_bytes = (line_bits + 7) // 8
        self._parity: List[int] = [0] * num_groups
        self._crc: List[int] = [
            self._entry_crc(group, 0) for group in range(num_groups)
        ]
        #: Groups whose parity entry failed verification and has not yet
        #: been restored by a CRC-verified rebuild.
        self.quarantined: Set[int] = set()
        self.write_updates = 0  # PLT write traffic, for section VII-I
        self.corruptions = 0  # chaos events applied to this table

    # -- hardware operations ------------------------------------------------------

    def parity(self, group: int) -> int:
        """Stored parity line of a group."""
        self._check_group(group)
        return self._parity[group]

    def update(self, group: int, old_word: int, new_word: int) -> None:
        """Write-path read-modify-write: fold ``old ^ new`` into parity."""
        self._check_group(group)
        self._check_word(old_word)
        self._check_word(new_word)
        value = self._parity[group] ^ old_word ^ new_word
        self._parity[group] = value
        self._crc[group] = self._entry_crc(group, value)
        self.write_updates += 1

    def rebuild(self, group: int, members: Sequence[int]) -> int:
        """Recompute and store a group's parity from member words.

        A rebuild re-derives the entry from the protected lines, so it
        also lifts any quarantine on the group.
        """
        self._check_group(group)
        for word in members:
            self._check_word(word)
        value = self.backend.xor_fold(members, self.line_bits)
        self._parity[group] = value
        self._crc[group] = self._entry_crc(group, value)
        self.quarantined.discard(group)
        return value

    def mismatch(self, group: int, members: Sequence[int]) -> int:
        """Stored parity XOR recomputed parity: candidate fault positions."""
        self._check_group(group)
        return self._parity[group] ^ self.backend.xor_fold(members, self.line_bits)

    # -- metadata integrity -------------------------------------------------------

    def verify(self, group: int) -> bool:
        """Does the entry's stored CRC match its parity word *and* slot?

        A failure means either the SRAM cell array flipped under the
        hardware's feet (the chaos harness's ``corrupt``) or the entry
        belongs to a different group (``swap`` -- a perturbed mapping);
        in both cases the entry must not feed a RAID-4 reconstruction or
        an SDR mismatch computation.
        """
        self._check_group(group)
        return self._crc[group] == self._entry_crc(group, self._parity[group])

    def quarantine(self, group: int) -> None:
        """Mark a group's entry untrustworthy until rebuilt."""
        self._check_group(group)
        self.quarantined.add(group)

    def is_quarantined(self, group: int) -> bool:
        """Is this group's parity currently untrusted?"""
        self._check_group(group)
        return group in self.quarantined

    # -- chaos hooks (fault model for the SRAM metadata itself) -------------------

    def corrupt(self, group: int, error_mask: int) -> int:
        """Flip parity bits *without* updating the entry CRC.

        Models a transient fault striking the SRAM cells of the parity
        word; the checksum logic never ran, so ``verify`` will catch it.
        Returns the corrupted parity word.
        """
        self._check_group(group)
        self._check_word(error_mask)
        self._parity[group] ^= error_mask
        self.corruptions += 1
        return self._parity[group]

    def swap(self, group_a: int, group_b: int) -> None:
        """Swap two entries wholesale (parity *and* CRC).

        Models a perturbed group mapping: the PLT row decoder resolved
        the wrong row, so each group reads the other's (internally
        consistent) entry.  The location-keyed CRC is what catches this:
        each entry's checksum still covers its *original* group index, so
        ``verify`` fails at the new location.  Without the keying the
        linearity of the codes would let the wrong parity reconstruct a
        valid-but-wrong codeword -- silent corruption.
        """
        self._check_group(group_a)
        self._check_group(group_b)
        if group_a == group_b:
            return
        self._parity[group_a], self._parity[group_b] = (
            self._parity[group_b],
            self._parity[group_a],
        )
        self._crc[group_a], self._crc[group_b] = (
            self._crc[group_b],
            self._crc[group_a],
        )
        self.corruptions += 1

    def _entry_crc(self, group: int, word: int) -> int:
        payload = group.to_bytes(4, "little") + word.to_bytes(
            self._entry_bytes, "little"
        )
        return zlib.crc32(payload)

    # -- reporting ------------------------------------------------------------------

    @property
    def storage_bytes(self) -> int:
        """SRAM footprint of this table (128 KB for the paper's default)."""
        return (self.num_groups * self.line_bits + 7) // 8

    def amortised_bits_per_line(self, num_lines: int) -> float:
        """Parity storage amortised over protected lines (paper: ~1 bit/line/table)."""
        if num_lines <= 0:
            raise ValueError("num_lines must be positive")
        return self.num_groups * self.line_bits / num_lines

    # -- internal -------------------------------------------------------------------

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range")

    def _check_word(self, word: int) -> None:
        if word < 0 or word > self._mask:
            raise ValueError(f"word does not fit in {self.line_bits} bits")
