"""ECC-2 line codec: the section VII-G enhancement.

The paper notes SuDoku "can be enhanced even further by replacing ECC-1
with ECC-2".  This codec swaps the per-line Hamming SEC for a
two-error-correcting BCH over the same ``data || CRC`` payload:

* 20 check bits instead of 10 (stored line: 563 bits, overhead 51 --
  still under ECC-6's 60);
* lines with up to two faults repair locally;
* SDR resurrects *three*-fault lines (flip one known position, BCH-2
  absorbs the remaining two), pushing the "heavy" threshold that drives
  SuDoku-Y/Z failures from 3+ to 4+ faults per line.

The class mirrors :class:`repro.core.linecodec.LineCodec`'s interface
exactly (``encode`` / ``verify`` / ``decode`` / ``try_flip_and_repair`` /
``extract_data`` / ``stored_bits`` / ``layout``), so every engine and
baseline accepts it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.coding.bch import BCH
from repro.coding.crc import CRC, CRC31_SUDOKU
from repro.core.linecodec import DecodeStatus, LineDecode


@dataclass(frozen=True)
class ECC2Layout:
    """Widths of the ECC-2 line format (duck-types :class:`LineLayout`)."""

    data_bits: int = 512
    crc_bits: int = 31
    t: int = 2

    def __post_init__(self) -> None:
        if self.data_bits <= 0 or self.data_bits % 8:
            raise ValueError("data_bits must be a positive byte multiple")
        if self.crc_bits != CRC31_SUDOKU.width:
            raise ValueError("crc_bits must match the CRC-31 engine")
        if self.t < 1:
            raise ValueError("t must be at least 1")

    @property
    def crc(self) -> CRC:
        """The CRC engine used for the detection field."""
        return CRC31_SUDOKU

    @property
    def payload_bits(self) -> int:
        """ECC-protected payload width (data + CRC)."""
        return self.data_bits + self.crc_bits

    @property
    def ecc(self) -> BCH:
        """The per-line BCH code over the payload."""
        return _bch_for(self.payload_bits, self.t)

    @property
    def ecc_bits(self) -> int:
        """Check bits of the per-line ECC (20 for t = 2, m = 10)."""
        return self.ecc.num_check_bits

    @property
    def stored_bits(self) -> int:
        """Total stored width per line (563 for the default format)."""
        return self.ecc.n

    @property
    def overhead_bits(self) -> int:
        """Per-line metadata overhead: CRC + ECC check bits."""
        return self.crc_bits + self.ecc_bits

    def compose_payload(self, data: int, crc_value: int) -> int:
        """Pack data and CRC into the ECC payload word."""
        if data < 0 or data >> self.data_bits:
            raise ValueError(f"data does not fit in {self.data_bits} bits")
        if crc_value < 0 or crc_value >> self.crc_bits:
            raise ValueError(f"crc does not fit in {self.crc_bits} bits")
        return data | (crc_value << self.data_bits)

    def split_payload(self, payload: int) -> Tuple[int, int]:
        """Unpack an ECC payload word into (data, crc)."""
        data = payload & ((1 << self.data_bits) - 1)
        return data, payload >> self.data_bits

    def compute_crc(self, data: int) -> int:
        """CRC field value for a data word."""
        return self.crc.compute_int(data, self.data_bits)


class ECC2LineCodec:
    """Two-error-correcting line codec, interface-compatible with
    :class:`repro.core.linecodec.LineCodec`."""

    def __init__(self, layout: Optional[ECC2Layout] = None) -> None:
        self.layout = layout if layout is not None else ECC2Layout()
        self._ecc = self.layout.ecc

    # -- encode --------------------------------------------------------------------

    def encode(self, data: int) -> int:
        """Data word -> stored line (BCH codeword of data || CRC)."""
        crc_value = self.layout.compute_crc(data)
        payload = self.layout.compose_payload(data, crc_value)
        return self._ecc.encode(payload)

    # -- verify --------------------------------------------------------------------

    def verify(self, word: int) -> bool:
        """Pristine check: valid BCH codeword whose CRC matches."""
        if not self._ecc.is_codeword(word):
            return False
        data, stored_crc = self.layout.split_payload(self._ecc.extract_data(word))
        return self.layout.compute_crc(data) == stored_crc

    def extract_data(self, word: int) -> int:
        """Payload data without checking (callers must verify)."""
        data, _ = self.layout.split_payload(self._ecc.extract_data(word))
        return data

    # -- decode / repair --------------------------------------------------------------

    def decode(self, word: int) -> LineDecode:
        """Line-level decode: BCH bounded-distance + CRC endorsement."""
        result = self._ecc.decode(word)
        if result.ok:
            data, stored_crc = self.layout.split_payload(result.data)
            if self.layout.compute_crc(data) == stored_crc:
                if result.error_positions:
                    return LineDecode(
                        DecodeStatus.CORRECTED,
                        result.corrected_word,
                        data,
                        result.error_positions[0],
                    )
                return LineDecode(DecodeStatus.CLEAN, word, data)
        return LineDecode(DecodeStatus.UNCORRECTABLE, word, None)

    def try_flip_and_repair(self, word: int, position: int) -> Optional[int]:
        """SDR trial: with ECC-2 this resurrects lines with *three* faults."""
        if not 0 <= position < self._ecc.n:
            raise ValueError("position out of range for the stored word")
        result = self.decode(word ^ (1 << position))
        if result.status is DecodeStatus.UNCORRECTABLE:
            return None
        return result.word

    @property
    def stored_bits(self) -> int:
        """Stored width per line."""
        return self.layout.stored_bits


# BCH construction is deterministic per (payload, t); share instances.
_BCH_CACHE: dict = {}


def _bch_for(payload_bits: int, t: int) -> BCH:
    key = (payload_bits, t)
    code = _BCH_CACHE.get(key)
    if code is None:
        code = BCH(payload_bits, t)
        _BCH_CACHE[key] = code
    return code
