"""RAID-Group scanning and RAID-4 reconstruction (section III-C).

A *scan* reads every member of a RAID-Group, repairs the single-bit-fault
lines with the per-line ECC-1 (writing the fixes back), and partitions
the group into healthy and uncorrectable lines.  *Reconstruction* then
rebuilds exactly one uncorrectable line as the XOR of the stored parity
with every other (now healthy) member -- the classic RAID-4 recovery,
validated here by the rebuilt line's CRC before it is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.coding.parity import xor_reduce
from repro.core.linecodec import DecodeStatus, LineCodec, LineDecode
from repro.core.outcomes import Outcome
from repro.core.plt_ import ParityLineTable
from repro.sttram.array import STTRAMArray


@dataclass
class GroupScan:
    """State of a RAID-Group after line-level repair.

    ``words`` holds the current stored word of every member: post-ECC-1
    for repaired lines, the raw (faulty) word for uncorrectable ones --
    exactly the mixture the paper prescribes for computing parity
    mismatches (section IV-B).
    """

    group: int
    frames: List[int]
    words: Dict[int, int]
    uncorrectable: List[int]
    line_outcomes: Dict[int, Outcome] = field(default_factory=dict)

    def member_words_except(self, excluded_frame: int) -> List[int]:
        """Words of every member except one (the RAID-4 donor set)."""
        return [
            self.words[frame] for frame in self.frames if frame != excluded_frame
        ]

    def xor_of_words(self) -> int:
        """XOR over all current member words."""
        return xor_reduce(self.words[frame] for frame in self.frames)


def scan_group(
    array: STTRAMArray,
    codec: LineCodec,
    group: int,
    frames: Sequence[int],
    trusted_clean: bool = False,
    decoder: Optional[Callable[[int, int], LineDecode]] = None,
) -> GroupScan:
    """Read a whole group, fix single-bit faults, classify the rest.

    ECC-1 repairs are written back to the array immediately (the scrub
    write-back); uncorrectable lines are left untouched for the
    group-level machinery.

    With ``trusted_clean=True`` the scan consults the array's dirty-frame
    index and skips the decode of frames whose stored word matches
    golden: such a frame is a valid codeword (everything written goes
    through the codec), so the decode would classify it ``CLEAN`` and
    contribute its stored word unchanged -- the scan result is identical.
    This is the rare-event simulator's fast path; the SuDoku engines'
    scans stay dense (their repair machinery is the thing under test).

    ``decoder``, when given, replaces ``codec.decode``: it is called as
    ``decoder(frame, stored)`` and must return the ``LineDecode`` the
    codec would produce for that stored word.  This is how the engines
    feed batched (kernel-backend) decodes into the scan without changing
    any decision logic here.
    """
    words: Dict[int, int] = {}
    uncorrectable: List[int] = []
    outcomes: Dict[int, Outcome] = {}
    for frame in frames:
        stored = array.read(frame)
        if trusted_clean and not array.is_dirty(frame):
            words[frame] = stored
            continue
        decode = decoder(frame, stored) if decoder is not None else codec.decode(stored)
        if decode.status is DecodeStatus.CLEAN:
            words[frame] = stored
        elif decode.status is DecodeStatus.CORRECTED:
            array.restore(frame, decode.word)
            words[frame] = decode.word
            outcomes[frame] = Outcome.CORRECTED_ECC1
        else:
            words[frame] = stored
            uncorrectable.append(frame)
    return GroupScan(
        group=group,
        frames=list(frames),
        words=words,
        uncorrectable=uncorrectable,
        line_outcomes=outcomes,
    )


def reconstruct_line(
    array: STTRAMArray,
    codec: LineCodec,
    plt: ParityLineTable,
    scan: GroupScan,
    target_frame: int,
) -> Optional[int]:
    """RAID-4 recovery of one line from parity + the other members.

    Returns the reconstructed stored word on success (already written
    back), or ``None`` when the rebuilt word fails its CRC -- which means
    some *other* member of the group is still corrupt and recovery is not
    safe.
    """
    if target_frame not in scan.words:
        raise ValueError("target frame is not a member of the scanned group")
    candidate = plt.parity(scan.group) ^ xor_reduce(
        scan.member_words_except(target_frame)
    )
    decode = codec.decode(candidate)
    if decode.status is not DecodeStatus.CLEAN:
        return None
    array.restore(target_frame, candidate)
    scan.words[target_frame] = candidate
    if target_frame in scan.uncorrectable:
        scan.uncorrectable.remove(target_frame)
    scan.line_outcomes[target_frame] = Outcome.CORRECTED_RAID4
    return candidate
