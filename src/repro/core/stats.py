"""Correction statistics and the latency model of section VII-B.

The engines account every outcome and every group-level mechanism
invocation here.  :class:`LatencyModel` turns those counts into time:
RAID-based correction must read the whole group (512 lines x 9 ns = ~4.6 us
per repair; the paper budgets 16 us per 20 ms for the expected four
repairs), SDR adds a handful of trial decodes, and the second hash of
SuDoku-Z multiplies the group reads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.core.outcomes import Outcome


@dataclass
class CorrectionStats:
    """Counters maintained by a SuDoku engine."""

    outcomes: Counter = field(default_factory=Counter)
    raid4_invocations: int = 0
    sdr_invocations: int = 0
    sdr_trials: int = 0
    hash2_invocations: int = 0
    group_scans: int = 0
    lines_scanned: int = 0
    writes: int = 0
    reads: int = 0
    parity_rebuilds: int = 0
    metadata_faults_detected: int = 0
    metadata_rebuilds: int = 0
    metadata_quarantines: int = 0

    def record(self, outcome: Outcome) -> None:
        """Count one line outcome."""
        self.outcomes[outcome.value] += 1

    def count(self, outcome: Outcome) -> int:
        """How many lines resolved to ``outcome``."""
        return self.outcomes.get(outcome.value, 0)

    def count_label(self, label: str) -> int:
        """How many lines resolved to the given outcome label."""
        return self.outcomes.get(label, 0)

    @property
    def failures(self) -> int:
        """Total DUE + METADATA_DUE + SDC lines."""
        return (
            self.count(Outcome.DUE)
            + self.count(Outcome.METADATA_DUE)
            + self.count(Outcome.SDC)
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot for reports."""
        snapshot = dict(self.outcomes)
        snapshot.update(
            raid4_invocations=self.raid4_invocations,
            sdr_invocations=self.sdr_invocations,
            sdr_trials=self.sdr_trials,
            hash2_invocations=self.hash2_invocations,
            group_scans=self.group_scans,
            lines_scanned=self.lines_scanned,
            writes=self.writes,
            reads=self.reads,
            parity_rebuilds=self.parity_rebuilds,
            metadata_faults_detected=self.metadata_faults_detected,
            metadata_rebuilds=self.metadata_rebuilds,
            metadata_quarantines=self.metadata_quarantines,
        )
        return snapshot

    def publish_to(self, metrics, level: str = "") -> None:
        """Mirror the current snapshot into a metrics registry.

        Each counter becomes one series of the
        ``sudoku_engine_stat{level,stat}`` gauge family (gauges, not
        counters, because this publishes absolute totals at a point in
        time rather than deltas).  ``metrics`` is a
        :class:`repro.obs.metrics.MetricsRegistry` (or the null one).
        """
        gauge = metrics.gauge(
            "sudoku_engine_stat",
            "CorrectionStats snapshot values by engine level.",
            labels=("level", "stat"),
        )
        for stat, value in self.as_dict().items():
            gauge.labels(level=level, stat=stat).set(value)


@dataclass(frozen=True)
class LatencyModel:
    """Latency accounting for correction events (paper section VII-B).

    :param read_s: STTRAM line read latency (9 ns).
    :param write_s: STTRAM line write latency (18 ns).
    :param cycle_s: controller cycle for syndrome checks / SDR trials
        (3.2 GHz core clock).
    """

    read_s: float = 9e-9
    write_s: float = 18e-9
    cycle_s: float = 1.0 / 3.2e9

    def syndrome_check(self) -> float:
        """The 1-cycle CRC/ECC syndrome check added to every access."""
        return self.cycle_s

    def ecc1_repair(self) -> float:
        """Single-bit repair: table-lookup decode plus the write-back."""
        return self.cycle_s + self.write_s

    def raid4_repair(self, group_size: int) -> float:
        """Read the whole group, XOR, write one line back.

        ~4.6 us for 512-line groups, matching the paper's "approximately
        4 us per repair" (section III-D).
        """
        return group_size * self.read_s + self.write_s

    def sdr_repair(self, group_size: int, trials: int) -> float:
        """Group read plus the trial-and-error decodes of SDR."""
        return group_size * self.read_s + trials * self.cycle_s + self.write_s

    def hash2_repair(self, group_size: int, groups_read: int) -> float:
        """SuDoku-Z repair reading the Hash-1 group plus extra Hash-2 groups."""
        return (1 + groups_read) * group_size * self.read_s + self.write_s

    def scrub_pass(self, num_lines: int) -> float:
        """Fault-free scrub pass: one read per line."""
        return num_lines * self.read_s
