"""Configuration objects and the paper-constant registry.

:class:`SuDokuConfig` collects every knob of the architecture; the
defaults are exactly the paper's evaluation point.  :data:`PAPER` freezes
the headline numbers quoted in the paper so tests and benchmark harnesses
compare generated results against one authoritative source rather than
scattering magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.cache.geometry import CacheGeometry


@dataclass(frozen=True)
class SuDokuConfig:
    """Architecture parameters for a SuDoku-protected cache.

    Defaults correspond to the paper's evaluation configuration:
    64 MB / 64 B lines, 512-line RAID-Groups, Delta = 35 with 10 % sigma,
    20 ms scrub, CRC-31 + ECC-1 per line, SDR capped at six mismatches.
    """

    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    group_size: int = 512
    crc_bits: int = 31
    delta_mean: float = 35.0
    delta_sigma_fraction: float = 0.10
    scrub_interval_s: float = 0.020
    sdr_max_mismatches: int = 6
    target_fit: float = 1.0
    sttram_read_s: float = 9e-9
    sttram_write_s: float = 18e-9

    def __post_init__(self) -> None:
        if self.group_size <= 1:
            raise ValueError("RAID-Group size must exceed one line")
        if self.group_size & (self.group_size - 1):
            raise ValueError("RAID-Group size must be a power of two")
        if self.geometry.num_lines % self.group_size:
            raise ValueError("group size must tile the cache")
        if self.crc_bits < 8:
            raise ValueError("CRC must be at least 8 bits")
        if self.scrub_interval_s <= 0:
            raise ValueError("scrub interval must be positive")
        if self.sdr_max_mismatches < 0:
            raise ValueError("SDR mismatch cap must be non-negative")

    @property
    def data_bits(self) -> int:
        """Data payload bits per line."""
        return self.geometry.line_bits

    @property
    def num_groups(self) -> int:
        """RAID-Groups per hash over the whole cache."""
        return self.geometry.num_groups(self.group_size)

    @property
    def delta_sigma(self) -> float:
        """Absolute standard deviation of Delta."""
        return self.delta_mean * self.delta_sigma_fraction

    def scaled(self, **overrides) -> "SuDokuConfig":
        """Copy with selected fields replaced (sensitivity sweeps)."""
        from dataclasses import replace

        return replace(self, **overrides)


@dataclass(frozen=True)
class PaperConstants:
    """Headline numbers quoted in the paper, kept in one place.

    Each attribute cites its origin.  Benchmarks print these alongside the
    regenerated values; tests assert agreement to the documented
    tolerance, so any modelling regression is caught against the paper
    itself.
    """

    # Section I / Table I
    ber_delta35_20ms: float = 5.3e-6       # Table I, 22 nm node
    ber_delta60_20ms: float = 2.7e-12      # Table I, 32 nm node
    expected_faulty_bits_64mb_20ms: float = 2880.0  # Section I
    cell_mttf_delta35_days: float = 18.0   # Section I (no variation)
    mean_cell_mttf_hours: float = 1.0      # Section I (sigma = 10 %)

    # Table II (FIT of uniform ECC-k, 64 MB, 20 ms, BER 5.3e-6)
    ecc_line_failure_20ms: Tuple[float, ...] = (
        3.9e-6, 3.8e-9, 2.9e-12, 1.9e-15, 1.0e-18, 4.9e-22,
    )
    ecc_cache_failure_20ms: Tuple[float, ...] = (
        9.8e-1, 4.0e-3, 3.1e-6, 2.0e-9, 1.1e-12, 5.1e-16,
    )
    ecc_fit: Tuple[float, ...] = (1e14, 7.2e11, 5.5e8, 3.5e5, 191.0, 0.092)

    # Section III / Table III
    sudoku_x_mttf_s: float = 3.71
    sudoku_x_sdc_fit: float = 8.9e-9
    crc31_misdetect: float = 2.0 ** -31

    # Section IV (SuDoku-Y)
    sudoku_y_mttf_hours: float = 3.49      # section IV-E (3.9 h in I/V-B)
    sudoku_y_due_fit: float = 286e6
    sdr_no_overlap_fraction: float = 0.9922
    sdr_one_overlap_fraction: float = 0.0078
    sdr_two_overlap_fraction: float = 4e-6  # "0.0004%"

    # Section V (SuDoku-Z)
    sudoku_z_fit: float = 1.05e-4
    sudoku_z_vs_ecc6: float = 874.0
    sudoku_z_alone_fit: float = 4e6        # footnote 4
    group_fail_probability: float = 6.9e-10  # section V-C

    # Table IV (SRAM Vmin, BER = 1e-3)
    sram_cache_fail_ecc7: float = 0.11
    sram_cache_fail_ecc8: float = 0.0066
    sram_cache_fail_ecc9: float = 3.5e-4
    sram_cache_fail_sudoku: float = 3.8e-10

    # Table VIII (scrub interval sweep)
    scrub_sweep: Tuple[Tuple[float, float, float, float, float], ...] = (
        # (interval_s, ber, fit_ecc5, fit_ecc6, fit_sudoku_z)
        (0.010, 2.7e-6, 6.74, 1.66e-3, 5.49e-7),
        (0.020, 5.3e-6, 215.0, 0.092, 1.05e-4),
        (0.040, 1.09e-5, 6870.0, 6.76, 0.04),
    )

    # Table IX (cache-size sweep, SuDoku-Z FIT)
    size_sweep: Tuple[Tuple[int, float], ...] = ((32, 0.52e-4), (64, 1.05e-4), (128, 2.1e-4))

    # Table X (Delta sweep: (delta, fit_ecc6, fit_sudoku, strength))
    delta_sweep: Tuple[Tuple[float, float, float, float], ...] = (
        (35, 0.092, 1.05e-4, 874.0),
        (34, 4.63, 1.15e-2, 402.0),
        (33, 1240.0, 8.0, 155.0),
    )

    # Table XI (baselines with CRC-31, FIT)
    fit_cppc: float = 1.69e14
    fit_raid6: float = 571e3
    fit_2dp: float = 2.8e8

    # Table XII
    fit_hiecc: float = 1.47

    # Section VII-B correction latencies
    latency_raid4_s: float = 16e-6
    latency_sdr_s: float = 20e-6
    latency_hash2_s: float = 80e-6

    # Storage (section VII-H)
    overhead_bits_sudoku: int = 43         # 10 ECC + 31 CRC + 2 amortised PLT
    overhead_bits_ecc6: int = 60
    plt_bytes_per_table: int = 128 * 1024

    # Figures 8 / 9
    mean_slowdown_fraction: float = 0.0015  # "0.15 % on average"
    max_edp_increase_fraction: float = 0.004


#: The single source of truth for paper-quoted values.
PAPER = PaperConstants()
