"""Encode / verify / repair of a single protected line.

The codec implements the per-line fast path of section III:

1. **Verify** (1 cycle in hardware): recompute CRC over the decoded data
   and compare with the stored CRC field.  Clean lines never touch ECC.
2. **ECC-1 repair**: on CRC mismatch, run the Hamming correction over the
   stored word, then re-verify with CRC.  A single-bit fault anywhere in
   the 553 stored bits is repaired; with 2+ faults the Hamming decode
   miscorrects (or points nowhere) and the CRC re-check fails, which is
   the signal to escalate to the RAID machinery.

The codec is stateless; all of SuDoku's group-level logic composes it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.layout import LineLayout


class DecodeStatus(enum.Enum):
    """Result class of a line-level decode attempt."""

    CLEAN = "clean"                    # CRC matched without correction
    CORRECTED = "corrected"            # one bit repaired, CRC now matches
    UNCORRECTABLE = "uncorrectable"    # needs group-level correction


@dataclass(frozen=True)
class LineDecode:
    """Outcome of :meth:`LineCodec.decode`.

    ``word`` is the post-repair stored word (unchanged when
    uncorrectable); ``data`` the extracted payload when the CRC endorsed
    it, else ``None``.  ``flipped_position`` reports the stored-word bit
    ECC-1 flipped, when it did.
    """

    status: DecodeStatus
    word: int
    data: Optional[int]
    flipped_position: Optional[int] = None

    @property
    def ok(self) -> bool:
        """Did the decode produce CRC-endorsed data?"""
        return self.status is not DecodeStatus.UNCORRECTABLE


class LineCodec:
    """Stateless encoder/decoder for the SuDoku line format."""

    def __init__(self, layout: Optional[LineLayout] = None) -> None:
        self.layout = layout if layout is not None else LineLayout()
        self._ecc = self.layout.ecc

    # -- encode -------------------------------------------------------------------

    def encode(self, data: int) -> int:
        """Data word -> stored line (Hamming codeword of data || CRC)."""
        crc_value = self.layout.compute_crc(data)
        payload = self.layout.compose_payload(data, crc_value)
        return self._ecc.encode(payload)

    # -- verify -------------------------------------------------------------------

    def verify(self, word: int) -> bool:
        """The 1-cycle syndrome check of section III-B (no correction).

        A line is pristine when its CRC matches *and* its ECC syndrome is
        zero.  The second condition catches faults in the ECC check bits
        themselves, which leave the payload (and hence the CRC) untouched
        but must still be scrubbed out before they can pair with a later
        payload fault or leak into a RAID reconstruction.
        """
        payload = self._ecc.extract_data(word)
        data, stored_crc = self.layout.split_payload(payload)
        if self.layout.compute_crc(data) != stored_crc:
            return False
        return self._ecc.syndrome(word) == 0

    def extract_data(self, word: int) -> int:
        """Payload data without any checking (callers must verify)."""
        payload = self._ecc.extract_data(word)
        data, _ = self.layout.split_payload(payload)
        return data

    # -- decode / repair ------------------------------------------------------------

    def decode(self, word: int) -> LineDecode:
        """Full line-level decode: syndrome checks, then ECC-1 + CRC re-check.

        The clean fast path requires both a matching CRC and a zero ECC
        syndrome (hardware computes both in the same cycle).  A non-zero
        syndrome triggers the ECC-1 repair attempt; the repair is accepted
        only if the repaired payload's CRC matches -- this re-check is
        what exposes ECC-1 miscorrections on lines that really held 2+
        faults (section III-E).
        """
        payload = self._ecc.extract_data(word)
        data, stored_crc = self.layout.split_payload(payload)
        crc_ok = self.layout.compute_crc(data) == stored_crc
        syndrome = self._ecc.syndrome(word)
        if crc_ok and syndrome == 0:
            return LineDecode(DecodeStatus.CLEAN, word, data)

        if syndrome != 0:
            correction = self._ecc.correct(word)
            if correction.valid and correction.flipped_position is not None:
                fixed_data, fixed_crc = self.layout.split_payload(correction.data)
                if self.layout.compute_crc(fixed_data) == fixed_crc:
                    return LineDecode(
                        DecodeStatus.CORRECTED,
                        correction.corrected_word,
                        fixed_data,
                        correction.flipped_position,
                    )
        # Either the repair failed its CRC re-check, or (syndrome == 0,
        # CRC bad) the word is a valid ECC codeword with an inconsistent
        # payload -- a multi-bit corruption beyond line-level repair.
        return LineDecode(DecodeStatus.UNCORRECTABLE, word, None)

    def try_flip_and_repair(self, word: int, position: int) -> Optional[int]:
        """One SDR trial: flip ``position``, run ECC-1, validate with CRC.

        Returns the repaired stored word when the trial lands on a
        CRC-endorsed codeword, else ``None``.  This is the inner operation
        of Sequential Data Resurrection (section IV-A): if ``position``
        was indeed one of the two faults, ECC-1 fixes the other and the
        CRC certifies the result.
        """
        if not 0 <= position < self._ecc.n:
            raise ValueError("position out of range for the stored word")
        result = self.decode(word ^ (1 << position))
        if result.status is DecodeStatus.UNCORRECTABLE:
            return None
        return result.word

    @property
    def stored_bits(self) -> int:
        """Stored width per line."""
        return self.layout.stored_bits
