"""Correction-outcome taxonomy.

Every line inspected during a scrub (or demand access) resolves to one of
these labels.  The labels are deliberately plain strings at the protocol
boundary (:class:`repro.sttram.scrub.LineScrubber`) so reports serialise
trivially; :class:`Outcome` gives them a typed home.
"""

from __future__ import annotations

import enum


class Outcome(str, enum.Enum):
    """What happened to a line under the correction machinery.

    Values double as the string labels counted by
    :class:`repro.sttram.scrub.ScrubReport`.
    """

    #: CRC matched on first check; no correction performed.
    CLEAN = "clean"
    #: One-bit fault repaired by the per-line ECC-1 (common case).
    CORRECTED_ECC1 = "corrected_ecc1"
    #: Multi-bit fault repaired by RAID-4 reconstruction (SuDoku-X path).
    CORRECTED_RAID4 = "corrected_raid4"
    #: Multi-bit fault repaired by Sequential Data Resurrection (SuDoku-Y).
    CORRECTED_SDR = "corrected_sdr"
    #: Repaired via the second-hash RAID-Group (SuDoku-Z path).
    CORRECTED_HASH2 = "corrected_hash2"
    #: Detected but uncorrectable error.
    DUE = "due"
    #: Detected-uncorrectable because the correction *metadata* (a PLT
    #: parity entry) was itself found corrupt: the group is quarantined
    #: and RAID-level repair refused rather than risking silent
    #: corruption from a poisoned parity word.
    METADATA_DUE = "metadata_due"
    #: Silent data corruption: the engine believed the line good/repaired,
    #: but the content disagrees with the golden copy (simulator audit).
    SDC = "sdc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_corrected(self) -> bool:
        """Did a correction mechanism fire and succeed?"""
        # The taxonomy's own definition of the corrected family; every
        # other site must go through is_corrected_label.
        return self.value.startswith("corrected")  # repro-lint: disable=RPR001

    @property
    def is_failure(self) -> bool:
        """Does this outcome constitute a cache failure (any DUE or SDC)?"""
        return self in (Outcome.DUE, Outcome.METADATA_DUE, Outcome.SDC)

    @property
    def is_due(self) -> bool:
        """Detected-uncorrectable (whether data- or metadata-caused)?"""
        return self in (Outcome.DUE, Outcome.METADATA_DUE)


def is_corrected_label(label: str) -> bool:
    """Did an outcome label record a successful correction?

    String-label counterpart of :attr:`Outcome.is_corrected`.  Matching
    the ``corrected`` *prefix* on raw strings at call sites is the same
    bug class as hand-picking label keys (the PR-4 ``metadata_due``
    undercount): a renamed or new corrected-family outcome silently
    drops out of the accounting.  Unknown labels from third-party
    scrubbers are conservatively treated as not-corrected.
    """
    try:
        return Outcome(label).is_corrected
    except ValueError:
        return False


def is_due_label(label: str) -> bool:
    """Is a (possibly non-catalogue) outcome label a DUE-class outcome?

    Reports count labels as plain strings at the scrubber protocol
    boundary; unknown labels from third-party scrubbers are conservatively
    treated as not-DUE.
    """
    try:
        return Outcome(label).is_due
    except ValueError:
        return False


def is_failure_label(label: str) -> bool:
    """Is an outcome label a cache failure (any DUE or SDC)?

    String-label counterpart of :attr:`Outcome.is_failure`, so every
    accounting path (``ScrubReport.failed``, the Monte-Carlo interval
    failure predicate) shares one taxonomy instead of hand-picking keys.
    """
    try:
        return Outcome(label).is_failure
    except ValueError:
        return False
