"""Checker registry and base class.

A checker is a class with rule metadata (id, name, severity, the
originating bug it mechanizes) and a ``check_node`` method invoked for
every AST node whose type name appears in its ``interests``.  The
runner walks each module's tree exactly once and dispatches node events
to every interested checker, so adding a rule never adds a tree walk.

Registration is declarative::

    @register
    class MyChecker(Checker):
        rule = "RPR007"
        name = "my-invariant"
        severity = Severity.ERROR
        description = "one-line summary"
        rationale = "the bug this rule descends from"
        interests = ("Call",)

        def check_node(self, node, ctx):
            yield self.finding(node, ctx, "message")

Rule ids are unique; re-registering an id raises (catching accidental
collisions between future PRs each adding "the next" rule).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Tuple, Type

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity

_REGISTRY: Dict[str, Type["Checker"]] = {}


class Checker:
    """Base class for domain rules.

    Subclasses set the class attributes below and implement
    :meth:`check_node`; per-module state can be initialised in
    :meth:`begin_module` (a fresh checker instance is created per file,
    so instance attributes are naturally module-scoped).
    """

    #: Unique rule identifier, e.g. ``"RPR001"``.
    rule: str = ""
    #: Short kebab-case rule name, e.g. ``"outcome-literal"``.
    name: str = ""
    #: Gate level for every finding this checker emits.
    severity: Severity = Severity.ERROR
    #: One-line summary shown by ``repro lint --list-rules``.
    description: str = ""
    #: The real bug this rule mechanizes (shown in the rule catalog).
    rationale: str = ""
    #: AST node type names this checker wants to see (e.g. ``("Call",)``).
    interests: Tuple[str, ...] = ()

    def begin_module(self, ctx: ModuleContext) -> None:
        """Hook invoked once before the walk of each module."""

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        """Yield findings for one node of an interested type."""
        raise NotImplementedError

    def end_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Hook invoked once after the walk; may yield module findings."""
        return iter(())

    def finding(
        self, node: ast.AST, ctx: ModuleContext, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule,
            severity=self.severity,
            path=ctx.path,
            line=line,
            column=getattr(node, "col_offset", 0),
            message=message,
            content=ctx.line_text(line),
        )


#: Sentinel "interest" marking whole-program checkers; never matches an
#: AST node type name, so the per-module dispatcher ignores them.
PROJECT_INTEREST = "<project>"


class ProjectChecker(Checker):
    """Base class for whole-program rules (RPR010 onward).

    Project checkers do not participate in the per-module node walk;
    instead the runner hands them the converged
    :class:`~repro.lint.dataflow.ProjectAnalysis` once per run and they
    yield findings anchored anywhere in the project.  Exemptions,
    inline suppressions, and the baseline apply to those findings
    exactly as they do to per-module ones.
    """

    interests: Tuple[str, ...] = (PROJECT_INTEREST,)

    def check_project(self, analysis) -> Iterator[Finding]:
        """Yield findings from converged whole-program facts."""
        raise NotImplementedError


def is_project_rule(checker: Type[Checker]) -> bool:
    """Is this checker a whole-program rule?"""
    return issubclass(checker, ProjectChecker)


def register(checker: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not checker.rule:
        raise ValueError(f"{checker.__name__} must set a rule id")
    if checker.rule in _REGISTRY:
        raise ValueError(f"duplicate rule id {checker.rule!r}")
    if not checker.interests:
        raise ValueError(f"{checker.__name__} must declare node interests")
    _REGISTRY[checker.rule] = checker
    return checker


def all_checkers() -> List[Type[Checker]]:
    """Every registered checker class, sorted by rule id."""
    _ensure_builtin_checkers()
    return [_REGISTRY[rule] for rule in sorted(_REGISTRY)]


def get_checker(rule: str) -> Type[Checker]:
    """Look up one checker class by rule id."""
    _ensure_builtin_checkers()
    try:
        return _REGISTRY[rule]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule!r} (known: {', '.join(sorted(_REGISTRY))})"
        )


def known_rules() -> List[str]:
    """Sorted rule ids (flag validation)."""
    _ensure_builtin_checkers()
    return sorted(_REGISTRY)


def _ensure_builtin_checkers() -> None:
    """Import the built-in rules exactly once (registration side effect).

    Deferred so ``registry`` and ``checkers`` avoid a circular import
    while callers never have to remember to import the rule module.
    """
    import repro.lint.checkers  # noqa: F401  (registration side effect)
    import repro.lint.dataflow  # noqa: F401  (RPR010-012 registration)


def instantiate(
    rules: Iterable[str],
) -> List[Checker]:
    """Fresh checker instances for the selected rule ids."""
    return [get_checker(rule)() for rule in rules]
