"""Project symbol table and call graph for whole-program rules.

The per-module checkers see one file at a time; the bug classes RPR010
onward police (an unseeded RNG smuggled through two call hops into a
campaign loop) are *interprocedural* by construction.  This module
builds the cross-file facts those rules need:

* a **module index**: every ``.py`` file mapped to its dotted module
  name, with import-alias resolution (absolute *and* relative imports,
  ``as`` renames, ``__init__``/re-export chains);
* a **symbol table**: every function, method, and class definition
  under a canonical qualified name
  (``repro.parallel.runner.run_sharded``,
  ``repro.sttram.array.STTRAMArray.write``);
* a **call graph**: for every call site, the resolved callee qualname
  plus the *parameter binding* -- which argument expression flows into
  which callee parameter -- the edge the data-flow pass propagates
  taint across.

Resolution is deliberately best-effort and deterministic: a call that
cannot be resolved to a project symbol (builtins, third-party, dynamic
dispatch) keeps its canonical dotted spelling so rules can still match
known externals (``numpy.random.default_rng``, ``hashlib.sha256``),
and anything truly opaque resolves to ``None`` rather than guessing.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.context import dotted_name

#: Maximum re-export/alias chain length followed during resolution --
#: a cycle guard, far above any real chain in this repository.
_MAX_ALIAS_HOPS = 16


def module_name_for(path: str) -> str:
    """Dotted module name for a file path.

    Prefers the on-disk package structure (climbing while an
    ``__init__.py`` sibling exists); falls back to stripping everything
    up to a ``src`` component for in-memory sources.  Paths are
    posix-normalised before splitting.
    """
    normalised = path.replace("\\", "/")
    if os.path.exists(normalised):
        absolute = os.path.abspath(normalised)
        directory = os.path.dirname(absolute)
        stem = os.path.basename(absolute)[: -len(".py")]
        parts = [] if stem == "__init__" else [stem]
        while os.path.exists(os.path.join(directory, "__init__.py")):
            parts.insert(0, os.path.basename(directory))
            directory = os.path.dirname(directory)
        if parts:
            return ".".join(parts)
    parts = normalised[: -len(".py")].split("/") if normalised.endswith(".py") else normalised.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    return ".".join(part for part in parts if part and part not in (".", ".."))


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Positional-bindable parameter names, in order (posonly + args),
    #: with ``self``/``cls`` already stripped for methods.
    params: Tuple[str, ...]
    #: Keyword-only parameter names.
    kwonly: Tuple[str, ...]
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def all_params(self) -> Tuple[str, ...]:
        return self.params + self.kwonly


@dataclass
class CallSite:
    """One resolved call edge with its argument-to-parameter binding."""

    caller: str  # qualname of the enclosing function, or "<module>"
    module: str
    path: str
    node: ast.Call
    #: Canonical dotted callee: a project qualname when resolvable,
    #: else the alias-resolved external spelling.
    callee: str
    #: Callee parameter name -> argument expression, for the params the
    #: binding could determine (missing for *args/**kwargs overflow).
    bindings: Dict[str, ast.AST] = field(default_factory=dict)
    #: True when ``callee`` names a function defined in this project.
    internal: bool = False


@dataclass
class ModuleInfo:
    """Everything the index knows about one module."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: local name -> canonical dotted target (import aliases).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> FunctionInfo}.
    classes: Dict[str, Dict[str, FunctionInfo]] = field(default_factory=dict)
    #: class name -> base-class dotted names (alias-resolved).
    bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)


def _collect_aliases(
    tree: ast.Module, module_name: str
) -> Dict[str, str]:
    """Import aliases with proper absolute *and* relative resolution."""
    package_parts = module_name.split(".")[:-1]
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # ``from .sharding import x`` / ``from ..core import y``:
                # climb ``level`` packages from the defining module.
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


def _function_params(node: ast.AST, is_method: bool) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    arguments = node.args  # type: ignore[attr-defined]
    positional = [a.arg for a in arguments.posonlyargs + arguments.args]
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    return tuple(positional), tuple(a.arg for a in arguments.kwonlyargs)


class ProjectIndex:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: canonical qualname -> FunctionInfo (functions and methods).
        self.functions: Dict[str, FunctionInfo] = {}
        #: canonical class qualname -> {method name -> FunctionInfo}.
        self.classes: Dict[str, Dict[str, FunctionInfo]] = {}
        #: class qualname -> resolved base-class qualnames.
        self.class_bases: Dict[str, Tuple[str, ...]] = {}
        self.call_sites: List[CallSite] = []
        #: callee qualname -> call sites targeting it.
        self.calls_to: Dict[str, List[CallSite]] = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls, sources: Iterable[Tuple[str, str, ast.Module]]
    ) -> "ProjectIndex":
        """Index ``(path, source, tree)`` triples into a project."""
        index = cls()
        for path, source, tree in sources:
            index._add_module(path, source, tree)
        index._resolve_bases()
        for info in index.modules.values():
            index._collect_calls(info)
        return index

    def _add_module(self, path: str, source: str, tree: ast.Module) -> None:
        name = module_name_for(path)
        info = ModuleInfo(
            name=name,
            path=path.replace("\\", "/"),
            tree=tree,
            source=source,
            aliases=_collect_aliases(tree, name),
        )
        for node in tree.body:
            self._collect_defs(info, node, prefix=name, class_name=None)
        self.modules[name] = info

    def _collect_defs(
        self,
        info: ModuleInfo,
        node: ast.AST,
        prefix: str,
        class_name: Optional[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            positional, kwonly = _function_params(node, class_name is not None)
            function = FunctionInfo(
                qualname=f"{prefix}.{node.name}",
                module=info.name,
                path=info.path,
                node=node,
                params=positional,
                kwonly=kwonly,
                class_name=class_name,
            )
            self.functions[function.qualname] = function
            if class_name is None:
                info.functions[node.name] = function
            else:
                info.classes.setdefault(class_name, {})[node.name] = function
                self.classes.setdefault(f"{info.name}.{class_name}", {})[
                    node.name
                ] = function
            # Nested defs are indexed (they can be called locally) but
            # not descended into for class context.
            for child in node.body:
                self._collect_defs(
                    info, child, f"{prefix}.{node.name}", class_name=None
                )
        elif isinstance(node, ast.ClassDef):
            info.classes.setdefault(node.name, {})
            self.classes.setdefault(f"{info.name}.{node.name}", {})
            bases = []
            for base in node.bases:
                dotted = dotted_name(base)
                if dotted is not None:
                    bases.append(self._rewrite_head(info, dotted))
            info.bases[node.name] = tuple(bases)
            for child in node.body:
                self._collect_defs(
                    info,
                    child,
                    f"{prefix}.{node.name}",
                    class_name=node.name,
                )

    def _resolve_bases(self) -> None:
        for info in self.modules.values():
            for class_name, bases in info.bases.items():
                resolved = []
                for base in bases:
                    canonical = self.canonicalize(base)
                    if canonical not in self.classes:
                        # A base named without an import is a class
                        # defined in the same module.
                        local = f"{info.name}.{base}"
                        if local in self.classes:
                            canonical = local
                    if canonical in self.classes:
                        resolved.append(canonical)
                self.class_bases[f"{info.name}.{class_name}"] = tuple(resolved)

    # -- name resolution --------------------------------------------------------

    @staticmethod
    def _rewrite_head(info: ModuleInfo, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        target = info.aliases.get(head, head)
        return f"{target}.{rest}" if rest else target

    def canonicalize(self, dotted: str) -> str:
        """Follow re-export/alias chains to a canonical qualname.

        ``pkg.api.run`` where ``pkg/api/__init__.py`` does
        ``from pkg.impl import run`` resolves to ``pkg.impl.run``; names
        that never land on a project definition are returned as-is
        after the last resolvable hop.
        """
        current = dotted
        for _ in range(_MAX_ALIAS_HOPS):
            if current in self.functions or current in self.classes:
                return current
            # Longest module prefix owning the remainder.
            module, attr_chain = self._split_module(current)
            if module is None or not attr_chain:
                return current
            info = self.modules[module]
            head = attr_chain[0]
            rest = attr_chain[1:]
            if head in info.functions and not rest:
                return info.functions[head].qualname
            if head in info.classes:
                qual = f"{module}.{head}" + (
                    "." + ".".join(rest) if rest else ""
                )
                return qual
            if head in info.aliases:
                current = info.aliases[head] + (
                    "." + ".".join(rest) if rest else ""
                )
                continue
            return current
        return current

    def _split_module(
        self, dotted: str
    ) -> Tuple[Optional[str], Tuple[str, ...]]:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate, tuple(parts[cut:])
        return None, tuple(parts)

    def resolve_call(
        self,
        info: ModuleInfo,
        node: ast.Call,
        class_name: Optional[str],
    ) -> Optional[str]:
        """Canonical callee name for a call in ``info``'s module."""
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and class_name is not None:
            method = rest
            if not method or "." in method:
                return None
            found = self._lookup_method(f"{info.name}.{class_name}", method)
            if found is not None:
                return found.qualname
            return None
        canonical = self.canonicalize(self._rewrite_head(info, dotted))
        # ``SomeClass(...)`` is a constructor call -- route the edge to
        # ``__init__`` when the project defines it.
        if canonical in self.classes:
            init = self._lookup_method(canonical, "__init__")
            if init is not None:
                return init.qualname
            return canonical
        # ``SomeClass.method`` / ``instance_of.method`` resolved through
        # a class qualname prefix.
        prefix, _, attribute = canonical.rpartition(".")
        if prefix in self.classes and attribute:
            found = self._lookup_method(prefix, attribute)
            if found is not None:
                return found.qualname
        return canonical

    def _lookup_method(
        self, class_qualname: str, method: str
    ) -> Optional[FunctionInfo]:
        seen = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            methods = self.classes.get(current, {})
            if method in methods:
                return methods[method]
            stack.extend(self.class_bases.get(current, ()))
        return None

    # -- call-edge collection ---------------------------------------------------

    def _collect_calls(self, info: ModuleInfo) -> None:
        for caller, class_name, body in self._function_bodies(info):
            for node in body:
                for child in ast.walk(node):
                    if not isinstance(child, ast.Call):
                        continue
                    callee = self.resolve_call(info, child, class_name)
                    if callee is None:
                        continue
                    internal = callee in self.functions
                    bindings: Dict[str, ast.AST] = {}
                    if internal:
                        bindings = self._bind(
                            self.functions[callee], child
                        )
                    site = CallSite(
                        caller=caller,
                        module=info.name,
                        path=info.path,
                        node=child,
                        callee=callee,
                        bindings=bindings,
                        internal=internal,
                    )
                    self.call_sites.append(site)
                    self.calls_to.setdefault(callee, []).append(site)

    def _function_bodies(
        self, info: ModuleInfo
    ) -> List[Tuple[str, Optional[str], List[ast.AST]]]:
        """(caller qualname, class context, statements) per scope.

        Module-level statements report a ``<module>``-suffixed caller so
        taint seeded at import time still has an owner.
        """
        scopes: List[Tuple[str, Optional[str], List[ast.AST]]] = []
        top: List[ast.AST] = []
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(
                    (f"{info.name}.{node.name}", None, list(node.body))
                )
            elif isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        scopes.append(
                            (
                                f"{info.name}.{node.name}.{child.name}",
                                node.name,
                                list(child.body),
                            )
                        )
                    else:
                        top.append(child)
            else:
                top.append(node)
        scopes.append((f"{info.name}.<module>", None, top))
        return scopes

    @staticmethod
    def _bind(function: FunctionInfo, call: ast.Call) -> Dict[str, ast.AST]:
        """Map argument expressions onto callee parameter names."""
        bindings: Dict[str, ast.AST] = {}
        for position, argument in enumerate(call.args):
            if isinstance(argument, ast.Starred):
                break
            if position < len(function.params):
                bindings[function.params[position]] = argument
        names = set(function.params) | set(function.kwonly)
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in names:
                bindings[keyword.arg] = keyword.value
        return bindings


def build_index(
    files: Sequence[Tuple[str, str]],
) -> ProjectIndex:
    """Parse ``(path, source)`` pairs and build the project index.

    Files that fail to parse are skipped here -- the per-module runner
    already reports them as RPR000 findings; whole-program analysis
    proceeds on the parsable remainder.
    """
    parsed: List[Tuple[str, str, ast.Module]] = []
    for path, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        parsed.append((path, source, tree))
    return ProjectIndex.build(parsed)
