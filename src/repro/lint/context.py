"""Per-module analysis context shared by every checker.

The context owns the parsed tree, the source lines, and -- the part
every interesting rule needs -- *import-alias resolution*: mapping the
local spelling of a callable back to its canonical dotted path, so that
``np.random.default_rng``, ``numpy.random.default_rng``, and
``from numpy.random import default_rng`` all resolve to the same
``"numpy.random.default_rng"`` string a checker can match on.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """The source-level dotted name of a ``Name``/``Attribute`` chain.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; anything
    that is not a pure attribute chain (calls, subscripts) is ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


class ModuleContext:
    """Everything a checker may ask about the module being linted."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        #: local name -> canonical dotted prefix, from import statements
        #: anywhere in the module (function-local imports included: this
        #: codebase imports lazily inside CLI handlers).
        self.aliases: Dict[str, str] = {}
        self._collect_imports(tree)

    # -- imports ---------------------------------------------------------------

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # ``import numpy.random`` binds ``numpy``; with
                    # ``as`` the alias names the full dotted module.
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    # Relative imports stay repo-internal; resolve with
                    # a best-effort module-less prefix.
                    module = node.module or ""
                else:
                    module = node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    prefix = f"{module}." if module else ""
                    self.aliases[local] = f"{prefix}{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a callable expression, or ``None``.

        The head of the dotted chain is rewritten through the module's
        import aliases; unknown heads (builtins, locals) pass through
        unchanged, so ``open`` resolves to ``"open"``.
        """
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        target = self.aliases.get(head, head)
        return f"{target}.{rest}" if rest else target

    # -- source access ---------------------------------------------------------

    def line_text(self, line: int) -> str:
        """Stripped text of a 1-based source line ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def path_endswith(self, suffixes) -> bool:
        """Does the (posix-normalised) path end in one of ``suffixes``?

        Used both for config exemptions ("the blessed implementation
        module of this rule") and for rules scoped to one subpackage.
        """
        normalised = self.path.replace("\\", "/")
        return any(
            normalised == suffix or normalised.endswith("/" + suffix)
            for suffix in suffixes
        )

    def path_contains(self, fragment: str) -> bool:
        """Does the path contain a ``/fragment/`` directory component?"""
        normalised = "/" + self.path.replace("\\", "/")
        return f"/{fragment}/" in normalised
