"""The committed baseline: grandfathered findings that do not gate.

``lint-baseline.json`` records known findings so new rules can land
with existing debt acknowledged instead of blocking the commit that
introduces the rule.  Entries key on ``(rule, path, content)`` -- the
*stripped source line text*, not the line number -- so a baselined
finding survives unrelated edits that renumber the file; ``count``
grandfathers that many occurrences of the identical line.  Fixing the
line (or moving the file) invalidates the entry, exactly as intended.

Path matching is suffix-tolerant: a baseline recorded as
``src/repro/perf/tracefile.py`` matches a finding reported under any
absolute or relative spelling of the same file, so the self-check runs
identically from the repo root, a CI checkout, or a test tmpdir.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding

_VERSION = 1


class BaselineError(ValueError):
    """Raised for a malformed or wrong-version baseline file."""


def _normalise(path: str) -> str:
    return path.replace("\\", "/")


def _paths_match(finding_path: str, baseline_path: str) -> bool:
    finding_path = _normalise(finding_path)
    baseline_path = _normalise(baseline_path)
    return (
        finding_path == baseline_path
        or finding_path.endswith("/" + baseline_path)
        or baseline_path.endswith("/" + finding_path)
    )


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered (rule, file, source-line) with a multiplicity."""

    rule: str
    path: str
    content: str
    count: int = 1


class Baseline:
    """A set of grandfathered findings with consume-on-match semantics."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)

    def filter_new(self, findings: Iterable[Finding]) -> List[Finding]:
        """Findings not covered by the baseline, in input order.

        Each entry absorbs up to ``count`` findings whose rule and
        stripped line text match and whose path matches modulo prefix.
        """
        budgets: Dict[int, int] = {
            index: entry.count for index, entry in enumerate(self.entries)
        }
        fresh: List[Finding] = []
        for finding in findings:
            for index, entry in enumerate(self.entries):
                if (
                    budgets[index] > 0
                    and entry.rule == finding.rule
                    and entry.content == finding.content
                    and _paths_match(finding.path, entry.path)
                ):
                    budgets[index] -= 1
                    break
            else:
                fresh.append(finding)
        return fresh

    def stale_entries(self, findings: Iterable[Finding]) -> List[BaselineEntry]:
        """Entries no current finding matches (candidates for pruning)."""
        remaining = list(self.entries)
        for finding in findings:
            for entry in remaining:
                if (
                    entry.rule == finding.rule
                    and entry.content == finding.content
                    and _paths_match(finding.path, entry.path)
                ):
                    remaining.remove(entry)
                    break
        return remaining

    def __len__(self) -> int:
        return sum(entry.count for entry in self.entries)


def from_findings(findings: Iterable[Finding]) -> Baseline:
    """Build a baseline grandfathering exactly the given findings."""
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in findings:
        key = (finding.rule, _normalise(finding.path), finding.content)
        counts[key] = counts.get(key, 0) + 1
    return Baseline(
        BaselineEntry(rule=rule, path=path, content=content, count=count)
        for (rule, path, content), count in sorted(counts.items())
    )


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; missing file means an empty baseline."""
    if not os.path.exists(path):
        return Baseline()
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise BaselineError(f"{path}: not valid JSON ({error})")
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise BaselineError(
            f"{path}: expected a version-{_VERSION} baseline object"
        )
    entries = []
    for raw in payload.get("findings", []):
        try:
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    content=raw["content"],
                    count=int(raw.get("count", 1)),
                )
            )
        except (KeyError, TypeError) as error:
            raise BaselineError(f"{path}: malformed entry {raw!r} ({error})")
    return Baseline(entries)


def write_baseline(path: str, baseline: Baseline) -> None:
    """Serialise a baseline (atomically -- it is a committed artifact)."""
    from repro.obs.atomicio import atomic_write_json

    atomic_write_json(
        path,
        {
            "version": _VERSION,
            "findings": [
                {
                    "rule": entry.rule,
                    "path": _normalise(entry.path),
                    "content": entry.content,
                    "count": entry.count,
                }
                for entry in baseline.entries
            ],
        },
    )
