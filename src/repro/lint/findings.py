"""Value types for lint results.

A :class:`Finding` is one rule violation at one source location; a
:class:`Severity` orders how loudly it should gate.  Both are plain
data -- checkers produce findings, the runner filters them through
suppressions and the baseline, and reporting renders whatever survives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict


class Severity(enum.IntEnum):
    """How a finding gates: higher is worse (orderable)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a case-insensitive severity name (CLI flag values)."""
        try:
            return cls[text.upper()]
        except KeyError:
            names = ", ".join(s.name.lower() for s in cls)
            raise ValueError(f"unknown severity {text!r} (expected {names})")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    :param rule: the rule identifier (``RPR001`` ...).
    :param severity: gate level of the owning rule.
    :param path: file the finding is in, as given to the runner
        (normalised to posix separators).
    :param line: 1-based source line of the offending node.
    :param column: 0-based column of the offending node.
    :param message: human explanation, including the repair direction.
    :param content: the stripped source line text -- the baseline keys
        on ``(rule, path, content)`` so grandfathered findings survive
        unrelated line-number drift.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    content: str = field(default="", compare=False)

    def with_path(self, path: str) -> "Finding":
        """Copy with a replacement (normalised) path."""
        return replace(self, path=path)

    @property
    def location(self) -> str:
        """``path:line:col`` -- the clickable prefix of text output."""
        return f"{self.path}:{self.line}:{self.column + 1}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (``--format json``)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "content": self.content,
        }
