"""Incremental lint cache keyed by file content hash.

Whole-program analysis re-reads every module on every run; for a
pre-commit hook that cost must be paid only for files that actually
changed.  The cache stores, per file, the post-suppression findings of
the per-module stage keyed on the sha256 of the file's bytes, plus one
``~project`` entry for the whole-program stage keyed on the hash of
*all* file hashes -- any edit anywhere invalidates the project facts
(they are interprocedural by construction) while per-module results
for untouched files replay instantly.

Every key additionally folds in a **toolchain fingerprint** (the hash
of the ``repro.lint`` package sources) and the active-rule set, so
editing a checker or passing ``--select`` never serves stale results.
The cache file is advisory: unreadable or mismatched content is
ignored, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding, Severity
from repro.obs.atomicio import atomic_write_text

_CACHE_VERSION = 1

#: Key of the whole-program entry ("~" sorts after any real path and
#: can never collide with one).
PROJECT_KEY = "~project"


def content_hash(source: str) -> str:
    """sha256 hex digest of one file's text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _toolchain_fingerprint() -> str:
    """Hash of the lint package's own sources.

    Editing any checker, the engine, or this module invalidates every
    cache entry -- rule logic is part of the key, not trusted state.
    """
    package_dir = os.path.dirname(os.path.abspath(__file__))
    digest = hashlib.sha256()
    try:
        names = sorted(
            name
            for name in os.listdir(package_dir)
            if name.endswith(".py")
        )
    except OSError:
        return "unknown"
    for name in names:
        digest.update(name.encode("utf-8"))
        try:
            with open(
                os.path.join(package_dir, name), "rb"
            ) as handle:
                digest.update(hashlib.sha256(handle.read()).digest())
        except OSError:
            digest.update(b"?")
    return digest.hexdigest()


def _finding_to_dict(finding: Finding) -> Dict:
    payload = finding.as_dict()
    return payload


def _finding_from_dict(payload: Dict) -> Finding:
    return Finding(
        rule=payload["rule"],
        severity=Severity.parse(payload["severity"]),
        path=payload["path"],
        line=int(payload["line"]),
        column=int(payload["column"]),
        message=payload["message"],
        content=payload.get("content", ""),
    )


@dataclass
class LintCache:
    """Content-addressed store of per-file and whole-program findings."""

    path: str = ""
    entries: Dict[str, Dict] = field(default_factory=dict)
    fingerprint: str = field(default_factory=_toolchain_fingerprint)
    #: Statistics for the run summary.
    hits: int = 0
    misses: int = 0
    dirty: bool = False

    def _key(self, file_hash: str, rules: Sequence[str]) -> str:
        digest = hashlib.sha256()
        digest.update(file_hash.encode("utf-8"))
        digest.update(self.fingerprint.encode("utf-8"))
        digest.update(",".join(sorted(rules)).encode("utf-8"))
        return digest.hexdigest()

    # -- per-file entries -------------------------------------------------------

    def lookup(
        self, path: str, file_hash: str, rules: Sequence[str]
    ) -> Optional[Tuple[List[Finding], int]]:
        """Cached (findings, raw_count) for one file, or ``None``."""
        entry = self.entries.get(path)
        if entry is None or entry.get("key") != self._key(file_hash, rules):
            self.misses += 1
            return None
        self.hits += 1
        findings = [_finding_from_dict(f) for f in entry.get("findings", [])]
        return findings, int(entry.get("raw_count", len(findings)))

    def store(
        self,
        path: str,
        file_hash: str,
        rules: Sequence[str],
        findings: Sequence[Finding],
        raw_count: int,
    ) -> None:
        self.entries[path] = {
            "key": self._key(file_hash, rules),
            "findings": [_finding_to_dict(f) for f in findings],
            "raw_count": raw_count,
        }
        self.dirty = True

    # -- the whole-program entry ------------------------------------------------

    def project_hash(self, file_hashes: Sequence[Tuple[str, str]]) -> str:
        """Combined hash over every (path, content-hash) pair."""
        digest = hashlib.sha256()
        for path, file_hash in sorted(file_hashes):
            digest.update(path.encode("utf-8"))
            digest.update(file_hash.encode("utf-8"))
        return digest.hexdigest()

    def lookup_project(
        self, combined_hash: str, rules: Sequence[str]
    ) -> Optional[List[Finding]]:
        entry = self.entries.get(PROJECT_KEY)
        if entry is None or entry.get("key") != self._key(
            combined_hash, rules
        ):
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_dict(f) for f in entry.get("findings", [])]

    def store_project(
        self,
        combined_hash: str,
        rules: Sequence[str],
        findings: Sequence[Finding],
    ) -> None:
        self.entries[PROJECT_KEY] = {
            "key": self._key(combined_hash, rules),
            "findings": [_finding_to_dict(f) for f in findings],
        }
        self.dirty = True

    # -- persistence ------------------------------------------------------------

    def save(self) -> None:
        """Atomically persist the cache (no-op for pathless caches)."""
        if not self.path or not self.dirty:
            return
        payload = {"version": _CACHE_VERSION, "entries": self.entries}
        try:
            atomic_write_text(
                self.path,
                json.dumps(payload, sort_keys=True, separators=(",", ":")),
            )
        except OSError:
            return  # advisory: a read-only checkout must not fail lint
        self.dirty = False


def load_cache(path: str) -> LintCache:
    """Load a cache file; unreadable/mismatched content yields empty."""
    cache = LintCache(path=path)
    if not path or not os.path.exists(path):
        return cache
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return cache
    if not isinstance(payload, dict) or payload.get("version") != _CACHE_VERSION:
        return cache
    entries = payload.get("entries")
    if isinstance(entries, dict):
        cache.entries = entries
    return cache
