"""Render a :class:`~repro.lint.runner.LintReport` for people and machines.

Four formats:

* ``text``   -- ``path:line:col: RPR001 [error] message`` lines plus a
  summary, for terminals (the default);
* ``json``   -- one machine-readable object (findings + counts), for
  tooling;
* ``github`` -- GitHub Actions workflow commands (``::error file=...``)
  that annotate the offending lines directly in a pull request, plus
  the same human summary on stdout for the job log;
* ``sarif``  -- a SARIF 2.1.0 log for the GitHub code-scanning upload
  action, carrying the full rule catalog (descriptions + rationale) so
  findings render with help text in the Security tab.
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.findings import Severity
from repro.lint.runner import LintReport

_GITHUB_LEVELS = {
    Severity.INFO: "notice",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}

_SARIF_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _summary_line(report: LintReport) -> str:
    parts = [
        f"{report.files_checked} file(s) checked",
        f"{len(report.new_findings)} new finding(s)",
    ]
    if report.baselined:
        parts.append(f"{report.baselined} baselined")
    if report.suppressed:
        parts.append(f"{report.suppressed} suppressed inline")
    if report.new_findings:
        by_rule = ", ".join(
            f"{rule}: {count}" for rule, count in report.counts_by_rule().items()
        )
        parts.append(f"by rule: {by_rule}")
    return "repro lint: " + "; ".join(parts)


def format_text(report: LintReport) -> str:
    """Human terminal output: one line per new finding plus a summary."""
    lines: List[str] = [
        f"{finding.location}: {finding.rule} [{finding.severity}] "
        f"{finding.message}"
        for finding in report.new_findings
    ]
    lines.append(_summary_line(report))
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable output for tooling."""
    return json.dumps(
        {
            "files_checked": report.files_checked,
            "rules": list(report.rules),
            "new_findings": [f.as_dict() for f in report.new_findings],
            "counts_by_rule": report.counts_by_rule(),
            "baselined": report.baselined,
            "suppressed": report.suppressed,
        },
        indent=2,
        sort_keys=True,
    )


def format_github(report: LintReport) -> str:
    """GitHub Actions annotations plus the human summary."""
    lines: List[str] = []
    for finding in report.new_findings:
        level = _GITHUB_LEVELS[finding.severity]
        message = finding.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.column + 1},title={finding.rule}::{message}"
        )
    lines.append(_summary_line(report))
    return "\n".join(lines)


def format_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log of the new findings (code-scanning upload)."""
    from repro.lint.registry import all_checkers

    rules = []
    rule_index = {}
    for checker in all_checkers():
        rule_index[checker.rule] = len(rules)
        rules.append(
            {
                "id": checker.rule,
                "name": checker.name,
                "shortDescription": {"text": checker.description},
                "fullDescription": {"text": checker.rationale},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[checker.severity]
                },
                "help": {
                    "text": (
                        "See docs/static-analysis.md for the flagged/"
                        "clean examples and the repair direction."
                    )
                },
            }
        )
    results = []
    for finding in report.new_findings:
        result = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/docs/static-analysis"
                        ),
                        "version": "1.0.0",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
    "sarif": format_sarif,
}
