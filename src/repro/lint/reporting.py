"""Render a :class:`~repro.lint.runner.LintReport` for people and machines.

Three formats:

* ``text``   -- ``path:line:col: RPR001 [error] message`` lines plus a
  summary, for terminals (the default);
* ``json``   -- one machine-readable object (findings + counts), for
  tooling;
* ``github`` -- GitHub Actions workflow commands (``::error file=...``)
  that annotate the offending lines directly in a pull request, plus
  the same human summary on stdout for the job log.
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.findings import Severity
from repro.lint.runner import LintReport

_GITHUB_LEVELS = {
    Severity.INFO: "notice",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _summary_line(report: LintReport) -> str:
    parts = [
        f"{report.files_checked} file(s) checked",
        f"{len(report.new_findings)} new finding(s)",
    ]
    if report.baselined:
        parts.append(f"{report.baselined} baselined")
    if report.suppressed:
        parts.append(f"{report.suppressed} suppressed inline")
    if report.new_findings:
        by_rule = ", ".join(
            f"{rule}: {count}" for rule, count in report.counts_by_rule().items()
        )
        parts.append(f"by rule: {by_rule}")
    return "repro lint: " + "; ".join(parts)


def format_text(report: LintReport) -> str:
    """Human terminal output: one line per new finding plus a summary."""
    lines: List[str] = [
        f"{finding.location}: {finding.rule} [{finding.severity}] "
        f"{finding.message}"
        for finding in report.new_findings
    ]
    lines.append(_summary_line(report))
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable output for tooling."""
    return json.dumps(
        {
            "files_checked": report.files_checked,
            "rules": list(report.rules),
            "new_findings": [f.as_dict() for f in report.new_findings],
            "counts_by_rule": report.counts_by_rule(),
            "baselined": report.baselined,
            "suppressed": report.suppressed,
        },
        indent=2,
        sort_keys=True,
    )


def format_github(report: LintReport) -> str:
    """GitHub Actions annotations plus the human summary."""
    lines: List[str] = []
    for finding in report.new_findings:
        level = _GITHUB_LEVELS[finding.severity]
        message = finding.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.column + 1},title={finding.rule}::{message}"
        )
    lines.append(_summary_line(report))
    return "\n".join(lines)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}
