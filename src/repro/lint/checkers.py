"""The per-module RPR domain rules (RPR001-RPR009).

Each rule mechanizes a bug this repository actually shipped and fixed
by hand in an earlier PR (the ``rationale`` attribute names it); the
rule exists so the *class* cannot recur.  The whole-program rules
(RPR010-RPR012) live in :mod:`repro.lint.dataflow`.  See
docs/static-analysis.md for the catalog and the repair direction of
every rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.core.outcomes import Outcome
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Checker, register

#: The taxonomy labels, imported from the single source of truth so a
#: future outcome is policed the moment it is added to the enum.
OUTCOME_LABELS = frozenset(outcome.value for outcome in Outcome)

#: Minimum length of a ``startswith`` prefix before RPR001 treats it as
#: outcome-prefix matching; shorter prefixes ("#", ".") are overwhelmingly
#: unrelated string handling.
_MIN_OUTCOME_PREFIX = 3

#: Canonical dotted paths of RNG constructors.
_NUMPY_DEFAULT_RNG = "numpy.random.default_rng"
_STDLIB_RANDOM = "random.Random"

#: Names whose presence inside a constructor argument marks the stream
#: as derived from the campaign's SeedSequence tree (RPR006).
_SEED_TREE_NAMES = frozenset(
    {
        "SeedSequence",
        "spawn_seed_sequences",
        "spawn_generators",
        "shard_python_seeds",
    }
)


def _const_str(node: ast.AST) -> Optional[str]:
    """The value of a string ``Constant`` node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register
class OutcomeLiteralChecker(Checker):
    """RPR001: outcome labels compared or looked up as raw strings.

    Flags an :class:`~repro.core.outcomes.Outcome` label string used as
    a comparison operand, a ``dict.get``/``pop``/``setdefault`` key, a
    subscript index, or a member of an ``in`` container -- and a
    ``startswith`` call whose constant argument is a prefix (>= 3
    characters) of a taxonomy label, the "corrected*" classification
    idiom that belongs to ``is_corrected_label``.  Display-only uses
    (table headers, docstrings) are deliberately not flagged.
    """

    rule = "RPR001"
    name = "outcome-literal"
    severity = Severity.ERROR
    description = (
        "outcome label used as a raw string in a comparison or lookup"
    )
    rationale = (
        "PR 4: ScrubReport.failed counted 'due' and 'sdc' by hand-picked "
        "string keys and silently dropped the PR-2 'metadata_due' outcome "
        "from failure accounting"
    )
    interests = ("Compare", "Call", "Subscript")

    def _flag(self, node: ast.AST, ctx: ModuleContext, label: str, how: str):
        member = Outcome(label).name
        return self.finding(
            node,
            ctx,
            f"outcome label '{label}' {how} as a raw string; use "
            f"Outcome.{member}.value or the is_due_label/is_failure_label "
            "helpers from repro.core.outcomes",
        )

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for operand in operands:
                label = _const_str(operand)
                if label in OUTCOME_LABELS:
                    yield self._flag(operand, ctx, label, "compared")
                # ``x in ("due", "sdc")`` -- containers of labels.
                if isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
                    for element in operand.elts:
                        element_label = _const_str(element)
                        if element_label in OUTCOME_LABELS:
                            yield self._flag(
                                element, ctx, element_label, "tested"
                            )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("get", "pop", "setdefault")
                and node.args
            ):
                label = _const_str(node.args[0])
                if label in OUTCOME_LABELS:
                    yield self._flag(node.args[0], ctx, label, "looked up")
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "startswith"
                and node.args
            ):
                first = node.args[0]
                elements = (
                    first.elts if isinstance(first, ast.Tuple) else (first,)
                )
                for element in elements:
                    prefix = _const_str(element)
                    if (
                        prefix is not None
                        and len(prefix) >= _MIN_OUTCOME_PREFIX
                        and any(
                            label.startswith(prefix)
                            for label in OUTCOME_LABELS
                        )
                    ):
                        # Not _flag: a prefix ("corrected") is usually
                        # not itself a valid Outcome value.
                        yield self.finding(
                            element,
                            ctx,
                            f"outcome prefix {prefix!r} matched with "
                            "startswith; use is_corrected_label/"
                            "is_due_label/is_failure_label from "
                            "repro.core.outcomes",
                        )
        elif isinstance(node, ast.Subscript):
            index = node.slice
            label = _const_str(index)
            if label in OUTCOME_LABELS:
                yield self._flag(index, ctx, label, "indexed")


@register
class UnseededRngChecker(Checker):
    """RPR002: RNG constructed (or used) without an explicit seed.

    Flags zero-argument ``np.random.default_rng()`` / ``random.Random()``
    constructions and any call through numpy's module-level global RNG
    (``np.random.binomial`` etc.).  Both silently break the guarantee
    that a campaign is a pure function of its seed -- the property every
    shard-determinism and resume test in this repo pins.

    Inside campaign code (paths containing ``reliability`` or
    ``parallel``) the rule also flags a *seeded* ``random.Random(...)``
    constructed inline as another call's argument
    (``rng=random.Random(seed)``): that bypasses
    ``repro.core.rng.resolve_pyrandom`` -- no ``rng=`` injection, no
    once-per-owner unseeded warning -- so the ``estimate_fit`` bug class
    cannot recur.  Arguments visibly derived from the campaign
    SeedSequence tree (``shard_python_seeds`` etc.) are the sanctioned
    per-shard construction and stay exempt.
    """

    rule = "RPR002"
    name = "unseeded-rng"
    severity = Severity.ERROR
    description = "RNG constructed without a seed, or numpy global RNG used"
    rationale = (
        "ten `rng or np.random.default_rng()` fallback sites made "
        "sttram/reliability constructors non-reproducible whenever a "
        "caller forgot to thread rng=, a shard-determinism hazard"
    )
    interests = ("Call",)

    def begin_module(self, ctx: ModuleContext) -> None:
        # Flow facts from the intra-module taint engine: names that
        # *provably* carry seed-tree provenance (through any number of
        # local assignments/helper returns), not merely names that
        # textually mention a seed-tree function.
        self._rooted: frozenset = frozenset()
        if ctx.path_contains("reliability") or ctx.path_contains("parallel"):
            from repro.lint.dataflow import module_seed_rooted_names

            self._rooted = module_seed_rooted_names(ctx.path, ctx.source)

    @staticmethod
    def _mentions_seed_tree(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in _SEED_TREE_NAMES:
                return True
            if (
                isinstance(child, ast.Attribute)
                and child.attr in _SEED_TREE_NAMES
            ):
                return True
        return False

    def _is_seed_rooted(self, node: ast.AST) -> bool:
        """Textual seed-tree mention OR flow-computed provenance."""
        if self._mentions_seed_tree(node):
            return True
        return any(
            isinstance(child, ast.Name) and child.id in self._rooted
            for child in ast.walk(node)
        )

    def _inline_constructions(
        self, node: ast.Call, ctx: ModuleContext
    ) -> Iterator[ast.Call]:
        """Seeded ``random.Random(...)`` calls in argument position."""
        arguments = list(node.args) + [
            keyword.value for keyword in node.keywords
        ]
        for argument in arguments:
            if not isinstance(argument, ast.Call):
                continue
            if ctx.resolve(argument.func) != _STDLIB_RANDOM:
                continue
            if not argument.args and not argument.keywords:
                continue  # the zero-argument form is flagged directly
            if self._is_seed_rooted(argument):
                continue
            yield argument

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if ctx.path_contains("reliability") or ctx.path_contains("parallel"):
            for construction in self._inline_constructions(node, ctx):
                yield self.finding(
                    construction,
                    ctx,
                    "random.Random(...) constructed inline in a campaign "
                    "entry point; route it through repro.core.rng."
                    "resolve_pyrandom(rng=..., seed=..., owner=...) so "
                    "callers can inject rng= and unseeded use warns",
                )
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved in (_NUMPY_DEFAULT_RNG, _STDLIB_RANDOM):
            if not node.args and not node.keywords:
                constructor = resolved.rsplit(".", 1)[-1]
                yield self.finding(
                    node,
                    ctx,
                    f"{constructor}() constructed without a seed; accept "
                    "rng=/seed= and route the fallback through "
                    "repro.core.rng.resolve_rng (warns on the truly "
                    "unseeded interactive path)",
                )
            return
        prefix, _, attribute = resolved.rpartition(".")
        if (
            prefix == "numpy.random"
            and attribute
            and attribute[0].islower()
            and attribute != "default_rng"
        ):
            yield self.finding(
                node,
                ctx,
                f"numpy.random.{attribute}() draws from the process-global "
                "RNG; construct a Generator from an explicit seed instead",
            )


@register
class NonAtomicWriteChecker(Checker):
    """RPR003: artifact written with a bare ``open(path, 'w')``.

    Any write-mode ``open`` outside :mod:`repro.obs.atomicio` can leave
    a truncated artifact next to a valid manifest when the process dies
    mid-write; route it through ``atomic_write_text``/``_json``.
    """

    rule = "RPR003"
    name = "non-atomic-write"
    severity = Severity.ERROR
    description = "write-mode open() outside the atomic writer"
    rationale = (
        "PR 2 made every exporter crash-safe via obs/atomicio after "
        "checkpoint corruption from mid-write kills; "
        "analysis/reporting.py regressed the pattern"
    )
    interests = ("Call",)

    _WRITE_MODES = frozenset("wax")

    def _mode_of(self, node: ast.Call, mode_index: int) -> Optional[str]:
        if len(node.args) > mode_index:
            return _const_str(node.args[mode_index])
        for keyword in node.keywords:
            if keyword.arg == "mode":
                return _const_str(keyword.value)
        return None

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        is_builtin_open = resolved in ("open", "io.open")
        is_method_open = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "open"
        )
        if not (is_builtin_open or is_method_open):
            return
        # ``open(path, mode)`` takes the mode second; ``Path.open(mode)``
        # takes it first.
        mode = self._mode_of(node, 1 if is_builtin_open else 0)
        if mode is None or not (set(mode) & self._WRITE_MODES):
            return
        yield self.finding(
            node,
            ctx,
            f"open(..., {mode!r}) writes non-atomically; a crash mid-write "
            "leaves a truncated artifact -- use atomic_write_text/"
            "atomic_write_json from repro.obs.atomicio",
        )


@register
class RawPopcountChecker(Checker):
    """RPR004: set bits counted without the shared popcount kernel.

    Flags ``bin(x).count('1')`` / ``format(x, 'b').count('1')`` and the
    manual ``while x: ... x >>= 1`` bit-walk.  PR 3 unified these on
    ``repro.coding.bitvec.popcount`` / ``bit_positions`` (``int.bit_count``
    on 3.10+, a byte table on 3.9) -- several times faster at line widths
    and one place to keep correct.
    """

    rule = "RPR004"
    name = "raw-popcount"
    severity = Severity.WARNING
    description = "manual popcount instead of repro.coding.bitvec"
    rationale = (
        "PR 3 replaced bin(x).count('1') hot-path popcounts with the "
        "unified bitvec.popcount kernel (int.bit_count + 3.9 fallback)"
    )
    interests = ("Call", "While")

    def _is_bin_count(self, node: ast.Call, ctx: ModuleContext) -> bool:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "count"):
            return False
        if not (node.args and _const_str(node.args[0]) == "1"):
            return False
        inner = func.value
        if not isinstance(inner, ast.Call):
            return False
        resolved = ctx.resolve(inner.func)
        if resolved == "bin":
            return True
        if resolved == "format" and len(inner.args) >= 2:
            spec = _const_str(inner.args[1])
            return spec is not None and spec.endswith("b")
        return False

    def _is_bit_walk(self, node: ast.While) -> bool:
        """``while x:`` whose body both tests ``x & 1`` and ``x >>= ...``."""
        if not isinstance(node.test, ast.Name):
            return False
        variable = node.test.id
        shifts_right = False
        tests_low_bit = False
        for child in ast.walk(node):
            if (
                isinstance(child, ast.AugAssign)
                and isinstance(child.op, ast.RShift)
                and isinstance(child.target, ast.Name)
                and child.target.id == variable
            ):
                shifts_right = True
            if isinstance(child, ast.BinOp) and isinstance(
                child.op, ast.BitAnd
            ):
                operands = (child.left, child.right)
                has_variable = any(
                    isinstance(op, ast.Name) and op.id == variable
                    for op in operands
                )
                has_one = any(
                    isinstance(op, ast.Constant) and op.value == 1
                    for op in operands
                )
                if has_variable and has_one:
                    tests_low_bit = True
        return shifts_right and tests_low_bit

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call) and self._is_bin_count(node, ctx):
            yield self.finding(
                node,
                ctx,
                "manual popcount; use repro.coding.bitvec.popcount "
                "(int.bit_count on 3.10+, byte table on 3.9)",
            )
        elif isinstance(node, ast.While) and self._is_bit_walk(node):
            yield self.finding(
                node,
                ctx,
                "manual bit-position walk; use repro.coding.bitvec."
                "bit_positions (or popcount) instead of shifting through "
                "the word",
            )


@register
class UnvalidatedWidthChecker(Checker):
    """RPR005: ``flip_bits`` called without a width guard.

    ``flip_bits`` without ``width=`` silently widens the value when a
    position is out of range, corrupting fixed-width line state the
    golden-copy heal invariant cannot restore (the PR-3 bug class).
    """

    rule = "RPR005"
    name = "unvalidated-width"
    severity = Severity.ERROR
    description = "flip_bits(...) without the width= guard"
    rationale = (
        "PR 3 added width validation to flip_bits after out-of-range "
        "positions silently widened lines past the codec width"
    )
    interests = ("Call",)

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None or resolved.rsplit(".", 1)[-1] != "flip_bits":
            return
        if len(node.args) >= 3:
            return
        if any(keyword.arg == "width" for keyword in node.keywords):
            return
        yield self.finding(
            node,
            ctx,
            "flip_bits without width=: an out-of-range position silently "
            "widens the line instead of raising; pass the line width",
        )


@register
class ParallelRngChecker(Checker):
    """RPR006: worker RNG not derived from the SeedSequence tree.

    Inside :mod:`repro.parallel`, every generator must come from the
    ``SeedSequence.spawn`` derivation in ``sharding.py`` (or visibly
    consume its output); an ad-hoc ``default_rng(seed)`` in a worker
    path gives two shards correlated streams -- or the *same* stream --
    and invalidates the merged campaign statistics.
    """

    rule = "RPR006"
    name = "naive-rng-in-parallel"
    severity = Severity.ERROR
    description = "parallel-path RNG not derived from SeedSequence.spawn"
    rationale = (
        "PR 3's sharded executor is only a well-defined campaign because "
        "per-shard streams come from one spawned SeedSequence tree; an "
        "ad-hoc per-worker RNG breaks merged-result determinism"
    )
    interests = ("Call",)

    def begin_module(self, ctx: ModuleContext) -> None:
        # Names bound *from* a seed-tree derivation are themselves
        # blessed: ``for ss in spawn_seed_sequences(...): default_rng(ss)``
        # must pass.  One pre-pass collects such binding targets, and the
        # intra-module taint engine contributes every name it can *prove*
        # carries seed-tree provenance (multi-hop local chains the
        # textual pre-pass cannot follow).
        self._derived: set = set()
        if not ctx.path_contains("parallel"):
            return
        from repro.lint.dataflow import module_seed_rooted_names

        self._derived.update(module_seed_rooted_names(ctx.path, ctx.source))
        for node in ast.walk(ctx.tree):
            value: Optional[ast.AST] = None
            targets: Tuple[ast.AST, ...] = ()
            if isinstance(node, ast.Assign):
                value, targets = node.value, tuple(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, (node.target,)
            elif isinstance(node, (ast.For, ast.comprehension)):
                value, targets = node.iter, (node.target,)
            if value is None or not self._mentions_seed_tree(value):
                continue
            for target in targets:
                for child in ast.walk(target):
                    if isinstance(child, ast.Name):
                        self._derived.add(child.id)

    @staticmethod
    def _mentions_seed_tree(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in _SEED_TREE_NAMES:
                return True
            if (
                isinstance(child, ast.Attribute)
                and child.attr in _SEED_TREE_NAMES
            ):
                return True
        return False

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.path_contains("parallel"):
            return
        resolved = ctx.resolve(node.func)
        if resolved not in (_NUMPY_DEFAULT_RNG, _STDLIB_RANDOM):
            return
        argument_nodes = list(node.args) + [
            keyword.value for keyword in node.keywords
        ]
        for argument in argument_nodes:
            if self._mentions_seed_tree(argument):
                return
            for child in ast.walk(argument):
                if isinstance(child, ast.Name) and child.id in self._derived:
                    return
        constructor = (resolved or "").rsplit(".", 1)[-1]
        yield self.finding(
            node,
            ctx,
            f"{constructor}(...) in a parallel path is not visibly derived "
            "from the campaign SeedSequence tree; use "
            "parallel.sharding.spawn_generators / shard_python_seeds",
        )


@register
class WallClockDurationChecker(Checker):
    """RPR007: ``time.time()`` used where a duration source belongs.

    ``time.time()`` follows the wall clock: NTP slews, DST, and manual
    adjustments make deltas taken from it wrong by arbitrary amounts,
    which silently corrupts benchmark timings, deadline accounting, and
    span durations.  Durations must come from ``time.perf_counter()``
    (or an injected clock); calendar timestamps from
    ``datetime.now(timezone.utc)``.
    """

    rule = "RPR007"
    name = "wall-clock-duration"
    severity = Severity.ERROR
    description = "time.time() used instead of perf_counter/injected clock"
    rationale = (
        "PR 6's benchmark trajectory store keys regressions off recorded "
        "wall times; a time.time() delta is not monotonic, so one NTP "
        "step can fabricate or mask a 2x slowdown"
    )
    interests = ("Call",)

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if ctx.resolve(node.func) != "time.time":
            return
        yield self.finding(
            node,
            ctx,
            "time.time() is wall-clock and non-monotonic; use "
            "time.perf_counter() (or the component's injected clock) for "
            "durations, datetime.now(timezone.utc) for timestamps",
        )


#: Fault-source primitives whose campaign-facing constructor lives in
#: the scenario layer (RPR008).
_FAULT_PRIMITIVES = frozenset(
    {"PermanentFaultMap", "BurstFaultInjector", "burst_error_vector"}
)


@register
class RawFaultPrimitiveChecker(Checker):
    """RPR008: fault primitive constructed directly in campaign code.

    Inside :mod:`repro.reliability` / :mod:`repro.parallel`, stuck-at
    maps and burst injectors must come from a
    :class:`repro.reliability.scenario.FaultScenario` (``build_stuck_map``
    / ``build_burst_injector`` / the ``sample_*_py`` overlays), which
    seeds them off the campaign's SeedSequence tree and serializes them
    into checkpoint fingerprints.  A direct ``PermanentFaultMap(...)`` or
    ``BurstFaultInjector(...)`` in a campaign path bypasses both: the
    fault source is invisible to resume-compatibility checks and its
    stream is not a pure function of ``(seed, interval)``, so sharded and
    resumed runs can silently diverge from serial.
    """

    rule = "RPR008"
    name = "raw-fault-primitive"
    severity = Severity.ERROR
    description = (
        "fault primitive built in campaign code outside the scenario layer"
    )
    rationale = (
        "PR 7 threaded stuck-at/burst faults through FaultScenario so "
        "campaign checkpoints fingerprint the fault source and shards "
        "replay identical fault streams; an ad-hoc injector in a campaign "
        "path sidesteps both guarantees"
    )
    interests = ("Call",)

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not (
            ctx.path_contains("reliability") or ctx.path_contains("parallel")
        ):
            return
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        parts = resolved.split(".")
        # ``PermanentFaultMap.random(...)`` resolves with the classmethod
        # as the tail segment; strip it so the class name matches.
        name = parts[-1]
        if name == "random" and len(parts) >= 2:
            name = parts[-2]
        if name not in _FAULT_PRIMITIVES:
            return
        yield self.finding(
            node,
            ctx,
            f"{name}(...) built directly in campaign code; declare the "
            "fault source on a FaultScenario (BurstSpec/StuckSpec) and let "
            "repro.reliability.scenario construct it, so it is seeded off "
            "the campaign seed tree and fingerprinted into checkpoints",
        )


@register
class PerLineLoopChecker(Checker):
    """RPR009: per-line Python loop over array storage.

    Flags ``for ... in range(<...>.num_lines)`` (statements and
    comprehensions alike).  Walking the array one line at a time in
    Python is exactly the pattern the :mod:`repro.kernels` backends
    exist to replace: bulk work belongs in ``scrub_frames`` /
    ``batch_decode`` / the dirty-line reductions, where the numpy
    backend can vectorize it over bit-planes.  The reference backend is
    the one sanctioned home of the scalar loops (exempt by config);
    pre-existing sites are grandfathered in the baseline.
    """

    rule = "RPR009"
    name = "per-line-loop"
    severity = Severity.ERROR
    description = (
        "per-line Python loop over array storage (range over num_lines)"
    )
    rationale = (
        "the bit-plane kernel backends vectorize the per-line hot "
        "loops; a new range(num_lines) walk in scrub or campaign code "
        "silently reverts the fast path to O(lines) Python"
    )
    interests = ("For", "comprehension")

    @staticmethod
    def _mentions_num_lines(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Attribute)
                and child.attr == "num_lines"
            ):
                return True
            if isinstance(child, ast.Name) and child.id == "num_lines":
                return True
        return False

    def check_node(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        iterator = node.iter  # type: ignore[attr-defined]
        if not isinstance(iterator, ast.Call):
            return
        if ctx.resolve(iterator.func) != "range":
            return
        if not any(
            self._mentions_num_lines(argument) for argument in iterator.args
        ):
            return
        yield self.finding(
            iterator,
            ctx,
            "per-line Python loop over array storage; route the bulk "
            "operation through a repro.kernels backend (scrub_frames, "
            "batch decode, dirty-line reduction) instead of walking "
            "range(num_lines)",
        )


#: Exported for docs/tests: (rule id, name, severity, description).
def rule_catalog() -> Tuple[Tuple[str, str, str, str], ...]:
    """A stable summary of the registered rules for docs and --list-rules."""
    from repro.lint.registry import all_checkers

    return tuple(
        (checker.rule, checker.name, str(checker.severity), checker.description)
        for checker in all_checkers()
    )
