"""Interprocedural nondeterminism taint analysis (RPR010-RPR012).

Every guarantee this repository ships -- ``--shards 1`` bit-identical
to serial, killed-then-resumed identical to uninterrupted, serve-store
dedup to byte-identical bodies -- reduces to one property: the
simulation is a **pure function of the SeedSequence tree**.  The
per-module rules (RPR002/RPR006) police the *syntactic* shapes of
violations; this pass tracks the actual **flow facts** across function
boundaries, so an unseeded RNG smuggled through two call hops, or a
set-ordered iteration feeding a persisted record, is visible even
though no single module looks wrong.

The engine is a fixpoint taint propagation over the
:class:`~repro.lint.callgraph.ProjectIndex`:

* **Taint tags** mark value provenance: ``rng`` (a generator),
  ``unseeded-rng`` (constructed without a seed), ``seed-tree``
  (derived from the campaign SeedSequence tree), ``unordered``
  (set/scandir iteration order), ``wallclock`` / ``env`` (calendar
  time, environment, locale), ``digest-obj`` (a hashlib object).
* **Returns** are summarised relationally (tags plus the parameter
  names the return value depends on), so ``def mk(seed): return
  default_rng(seed)`` transfers the *caller's* provenance.
* **Parameters** accumulate tags context-insensitively from every
  call site's bound argument; **instance attributes** (``self.rng``)
  accumulate per class across methods.  Both iterate with the return
  summaries to a fixpoint (the lattice is finite, growth monotone).

Three whole-program rules consume the converged facts:

* **RPR010** -- randomness consumed in reliability/parallel/serve code
  whose rng/seed chain is not rooted in the seed tree;
* **RPR011** -- unordered iteration flowing into persisted artifacts
  without an intervening ``sorted()``;
* **RPR012** -- wall-clock/environment/locale values flowing into
  content digests or checkpoint payloads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    build_index,
)
from repro.lint.context import dotted_name
from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProjectChecker, register

# -- taint tags ------------------------------------------------------------------

RNG = "rng"
UNSEEDED = "unseeded-rng"
SEED_TREE = "seed-tree"
UNORDERED = "unordered"
WALLCLOCK = "wallclock"
ENV = "env"
DIGEST_OBJ = "digest-obj"

_EMPTY: FrozenSet[str] = frozenset()

#: Call targets that *root* the seed tree (matched on the last dotted
#: segment so fixture packages and ``repro.parallel.sharding`` both
#: qualify).
_SEED_TREE_PRODUCERS = frozenset(
    {
        "SeedSequence",
        "spawn_seed_sequences",
        "spawn_generators",
        "shard_python_seeds",
    }
)

#: The sanctioned resolution API: returns a generator rooted in
#: whatever the caller threaded in (policy enforcement is RPR002's).
_RESOLVERS = frozenset({"resolve_rng", "resolve_pyrandom"})

#: Canonical RNG constructors.
_RNG_CONSTRUCTORS = frozenset({"numpy.random.default_rng", "random.Random"})

#: Wall-clock (calendar time) sources.
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Environment / locale sources (calls).
_ENV_CALLS = frozenset(
    {
        "os.getenv",
        "locale.getlocale",
        "locale.getdefaultlocale",
        "locale.getpreferredencoding",
    }
)

#: hashlib digest constructors.
_DIGEST_CONSTRUCTORS = frozenset(
    {
        "hashlib.sha1",
        "hashlib.sha224",
        "hashlib.sha256",
        "hashlib.sha384",
        "hashlib.sha512",
        "hashlib.md5",
        "hashlib.blake2b",
        "hashlib.blake2s",
        "hashlib.new",
    }
)

#: Unordered-iteration roots: constructors and filesystem enumerations
#: whose element order is not a pure function of the inputs.
_UNORDERED_CALLS = frozenset(
    {"set", "frozenset", "os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Builtins through which order-dependence does not survive.
_ORDER_NEUTRAL_CALLS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "popcount"}
)

#: Persist sinks (RPR011): canonical names, or last-segment prefixes,
#: whose arguments become durable artifacts in argument order.
_PERSIST_CANONICAL = frozenset(
    {"json.dump", "json.dumps", "pickle.dump", "pickle.dumps"}
)
_PERSIST_PREFIXES = ("atomic_write", "write_checkpoint", "save_checkpoint")

#: Checkpoint-payload sinks (RPR012) are matched by substring on the
#: last segment; digest sinks by the hashlib set plus ``digest``/
#: ``fingerprint`` in the callee name.
_CHECKPOINT_MARKER = "checkpoint"
_DIGEST_MARKERS = ("digest", "fingerprint")

#: Module-path fragments that mark campaign/parallel/serving code --
#: the RPR010 enforcement scope.
_CAMPAIGN_SCOPES = ("reliability", "parallel", "serve")

#: Fixpoint iteration cap; the tag lattice is tiny, so convergence is
#: typically reached in 3-4 rounds even on the full tree.
_MAX_ROUNDS = 12


@dataclass(frozen=True)
class Taint:
    """Abstract value: concrete tags plus enclosing-parameter deps."""

    tags: FrozenSet[str] = _EMPTY
    params: FrozenSet[str] = _EMPTY

    def __or__(self, other: "Taint") -> "Taint":
        if not other.tags and not other.params:
            return self
        if not self.tags and not self.params:
            return other
        return Taint(self.tags | other.tags, self.params | other.params)

    def without(self, *tags: str) -> "Taint":
        return Taint(self.tags - frozenset(tags), self.params)


_NO_TAINT = Taint()


@dataclass(frozen=True)
class SinkEvent:
    """One detected taint-reaches-sink occurrence."""

    kind: str  # "rng-consumption" | "unordered-persist" | "impure-digest"
    node: ast.AST
    path: str
    module: str
    scope: str  # qualname of the enclosing function (or <module>)
    detail: str


@dataclass
class ProjectAnalysis:
    """Converged whole-program facts handed to the project rules."""

    index: ProjectIndex
    events: List[SinkEvent] = field(default_factory=list)
    #: scope qualname -> names that carried seed-tree taint there.
    seed_rooted: Dict[str, Set[str]] = field(default_factory=dict)


def _last_segment(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _in_campaign_scope(info: ModuleInfo) -> bool:
    haystack = "/" + info.path + "/." + info.name + "."
    return any(
        f"/{fragment}/" in haystack or f".{fragment}." in haystack
        for fragment in _CAMPAIGN_SCOPES
    )


class _Scope:
    """One abstract-interpretation scope (a function or module body)."""

    def __init__(
        self,
        qualname: str,
        info: ModuleInfo,
        body: Sequence[ast.AST],
        function: Optional[FunctionInfo],
    ) -> None:
        self.qualname = qualname
        self.info = info
        self.body = body
        self.function = function
        self.class_qualname: Optional[str] = None
        if function is not None and function.class_name is not None:
            self.class_qualname = f"{info.name}.{function.class_name}"


class TaintEngine:
    """Fixpoint taint propagation over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.returns: Dict[str, Taint] = {}
        self.param_tags: Dict[str, Dict[str, FrozenSet[str]]] = {}
        self.attr_tags: Dict[str, Dict[str, FrozenSet[str]]] = {}
        self.scopes: List[_Scope] = self._build_scopes()
        #: Populated during the reporting pass only.
        self._events: List[SinkEvent] = []
        self._collect: bool = False
        self._seed_rooted: Dict[str, Set[str]] = {}

    # -- scope construction -----------------------------------------------------

    def _build_scopes(self) -> List[_Scope]:
        scopes: List[_Scope] = []
        for qualname in sorted(self.index.functions):
            function = self.index.functions[qualname]
            info = self.index.modules.get(function.module)
            if info is None:
                continue
            scopes.append(
                _Scope(qualname, info, list(function.node.body), function)  # type: ignore[attr-defined]
            )
        for name in sorted(self.index.modules):
            info = self.index.modules[name]
            top = [
                node
                for node in info.tree.body
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            scopes.append(_Scope(f"{name}.<module>", info, top, None))
        return scopes

    # -- fixpoint ---------------------------------------------------------------

    def run(self) -> ProjectAnalysis:
        """Iterate to convergence, then one reporting pass."""
        for _ in range(_MAX_ROUNDS):
            before = self._snapshot()
            for scope in self.scopes:
                self._run_scope(scope)
            if self._snapshot() == before:
                break
        self._collect = True
        self._events = []
        for scope in self.scopes:
            self._run_scope(scope)
        self._collect = False
        self._events.sort(
            key=lambda e: (e.path, getattr(e.node, "lineno", 0), e.kind)
        )
        return ProjectAnalysis(
            index=self.index,
            events=list(self._events),
            seed_rooted=self._seed_rooted,
        )

    def _snapshot(self) -> Tuple:
        return (
            {name: taint for name, taint in self.returns.items()},
            {name: dict(params) for name, params in self.param_tags.items()},
            {name: dict(attrs) for name, attrs in self.attr_tags.items()},
        )

    # -- one scope --------------------------------------------------------------

    def _run_scope(self, scope: _Scope) -> None:
        # Parameters carry *only* their dependency marker here; their
        # concrete tags are expanded on demand (:meth:`_concrete`).
        # Mixing the globally-unioned param tags into the env would
        # pollute the relational return summaries: one caller passing
        # an unseeded generator through a shared helper would taint
        # every other caller's chain.
        env: Dict[str, Taint] = {}
        if scope.function is not None:
            for param in scope.function.all_params():
                env[param] = Taint(params=frozenset({param}))
        returned = _NO_TAINT
        for statement in scope.body:
            returned = returned | self._exec(statement, env, scope)
        if scope.function is not None:
            previous = self.returns.get(scope.qualname, _NO_TAINT)
            merged = previous | returned
            if merged != previous:
                self.returns[scope.qualname] = merged
        if self._collect:
            rooted = {
                name
                for name, taint in env.items()
                if SEED_TREE in self._concrete(taint, scope)
            }
            if rooted:
                self._seed_rooted[scope.qualname] = rooted

    def _concrete(self, taint: Taint, scope: _Scope) -> FrozenSet[str]:
        """Expand parameter dependencies into their converged tags."""
        if not taint.params or scope.function is None:
            return taint.tags
        known = self.param_tags.get(scope.qualname)
        if not known:
            return taint.tags
        tags = set(taint.tags)
        for param in taint.params:
            tags |= known.get(param, _EMPTY)
        return frozenset(tags)

    # -- statements -------------------------------------------------------------

    def _exec(
        self, node: ast.AST, env: Dict[str, Taint], scope: _Scope
    ) -> Taint:
        """Abstractly execute one statement; returns the Return taint."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return _NO_TAINT  # nested scopes are analysed separately
        if isinstance(node, ast.Return):
            if node.value is None:
                return _NO_TAINT
            return self._eval(node.value, env, scope)
        if isinstance(node, ast.Assign):
            value = self._eval(node.value, env, scope)
            for target in node.targets:
                self._assign(target, value, env, scope)
            return _NO_TAINT
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                value = self._eval(node.value, env, scope)
                self._assign(node.target, value, env, scope)
            return _NO_TAINT
        if isinstance(node, ast.AugAssign):
            value = self._eval(node.value, env, scope)
            if isinstance(node.target, ast.Name):
                value = value | env.get(node.target.id, _NO_TAINT)
            self._assign(node.target, value, env, scope)
            return _NO_TAINT
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterable = self._eval(node.iter, env, scope)
            element = iterable
            self._assign(node.target, element, env, scope)
            returned = _NO_TAINT
            for child in node.body + node.orelse:
                returned = returned | self._exec(child, env, scope)
            return returned
        if isinstance(node, (ast.While, ast.If)):
            self._eval(node.test, env, scope)
            returned = _NO_TAINT
            for child in node.body + node.orelse:
                returned = returned | self._exec(child, env, scope)
            return returned
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._eval(item.context_expr, env, scope)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, env, scope)
            returned = _NO_TAINT
            for child in node.body:
                returned = returned | self._exec(child, env, scope)
            return returned
        if isinstance(node, ast.Try):
            returned = _NO_TAINT
            for child in node.body + node.orelse + node.finalbody:
                returned = returned | self._exec(child, env, scope)
            for handler in node.handlers:
                for child in handler.body:
                    returned = returned | self._exec(child, env, scope)
            return returned
        if isinstance(node, ast.Expr):
            self._eval(node.value, env, scope)
            return _NO_TAINT
        if isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env, scope)
            return _NO_TAINT
        return _NO_TAINT

    def _assign(
        self,
        target: ast.AST,
        value: Taint,
        env: Dict[str, Taint],
        scope: _Scope,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value, env, scope)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value, env, scope)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and scope.class_qualname is not None
        ):
            attrs = self.attr_tags.setdefault(scope.class_qualname, {})
            attrs[target.attr] = attrs.get(target.attr, _EMPTY) | self._concrete(
                value, scope
            )

    # -- expressions ------------------------------------------------------------

    def _eval(
        self, node: ast.AST, env: Dict[str, Taint], scope: _Scope
    ) -> Taint:
        if isinstance(node, ast.Name):
            return env.get(node.id, _NO_TAINT)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, scope)
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None:
                resolved = self.index.canonicalize(
                    self.index._rewrite_head(scope.info, dotted)
                )
                if resolved == "os.environ":
                    return Taint(tags=frozenset({ENV}))
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and scope.class_qualname is not None
            ):
                tags = self.attr_tags.get(scope.class_qualname, {}).get(
                    node.attr, _EMPTY
                )
                return Taint(tags=tags)
            return self._eval(node.value, env, scope)
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, env, scope)
            if (
                isinstance(node.value, ast.Attribute)
                and dotted_name(node.value) is not None
                and self.index.canonicalize(
                    self.index._rewrite_head(
                        scope.info, dotted_name(node.value)  # type: ignore[arg-type]
                    )
                )
                == "os.environ"
            ):
                base = base | Taint(tags=frozenset({ENV}))
            return base | self._eval(node.slice, env, scope)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env, scope)
            self._assign(node.target, value, env, scope)
            return value
        if isinstance(node, ast.Set):
            inner = _NO_TAINT
            for element in node.elts:
                inner = inner | self._eval(element, env, scope)
            return inner | Taint(tags=frozenset({UNORDERED}))
        if isinstance(node, ast.SetComp):
            return self._eval_comprehension(node, env, scope) | Taint(
                tags=frozenset({UNORDERED})
            )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, env, scope)
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            taint = _NO_TAINT
            for generator in node.generators:
                iterable = self._eval(generator.iter, comp_env, scope)
                self._assign(generator.target, iterable, comp_env, scope)
                taint = taint | iterable
            taint = taint | self._eval(node.key, comp_env, scope)
            taint = taint | self._eval(node.value, comp_env, scope)
            return taint
        if isinstance(node, (ast.List, ast.Tuple)):
            taint = _NO_TAINT
            for element in node.elts:
                taint = taint | self._eval(element, env, scope)
            return taint
        if isinstance(node, ast.Dict):
            taint = _NO_TAINT
            for key in node.keys:
                if key is not None:
                    taint = taint | self._eval(key, env, scope)
            for value in node.values:
                taint = taint | self._eval(value, env, scope)
            return taint
        if isinstance(node, ast.IfExp):
            return (
                self._eval(node.test, env, scope)
                | self._eval(node.body, env, scope)
                | self._eval(node.orelse, env, scope)
            )
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env, scope)
        if isinstance(node, ast.Await):
            return self._eval(node.value, env, scope)
        if isinstance(node, (ast.BoolOp,)):
            taint = _NO_TAINT
            for value in node.values:
                taint = taint | self._eval(value, env, scope)
            return taint
        if isinstance(node, ast.BinOp):
            return self._eval(node.left, env, scope) | self._eval(
                node.right, env, scope
            )
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env, scope)
        if isinstance(node, ast.Compare):
            taint = self._eval(node.left, env, scope)
            for comparator in node.comparators:
                taint = taint | self._eval(comparator, env, scope)
            return taint
        if isinstance(node, ast.JoinedStr):
            taint = _NO_TAINT
            for value in node.values:
                taint = taint | self._eval(value, env, scope)
            return taint
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, env, scope)
        if isinstance(node, ast.Lambda):
            return _NO_TAINT
        return _NO_TAINT

    def _eval_comprehension(
        self, node: ast.AST, env: Dict[str, Taint], scope: _Scope
    ) -> Taint:
        comp_env = dict(env)
        taint = _NO_TAINT
        for generator in node.generators:  # type: ignore[attr-defined]
            iterable = self._eval(generator.iter, comp_env, scope)
            self._assign(generator.target, iterable, comp_env, scope)
            taint = taint | iterable
            for condition in generator.ifs:
                self._eval(condition, comp_env, scope)
        taint = taint | self._eval(node.elt, comp_env, scope)  # type: ignore[attr-defined]
        return taint

    # -- calls ------------------------------------------------------------------

    def _arg_taints(
        self, node: ast.Call, env: Dict[str, Taint], scope: _Scope
    ) -> List[Tuple[Optional[str], ast.AST, Taint]]:
        out: List[Tuple[Optional[str], ast.AST, Taint]] = []
        for argument in node.args:
            out.append((None, argument, self._eval(argument, env, scope)))
        for keyword in node.keywords:
            out.append(
                (keyword.arg, keyword.value, self._eval(keyword.value, env, scope))
            )
        return out

    def _eval_call(
        self, node: ast.Call, env: Dict[str, Taint], scope: _Scope
    ) -> Taint:
        args = self._arg_taints(node, env, scope)
        arg_union = _NO_TAINT
        for _, _, taint in args:
            arg_union = arg_union | taint
        arg_tags = self._concrete(arg_union, scope)

        class_name = (
            scope.function.class_name if scope.function is not None else None
        )
        resolved = self.index.resolve_call(scope.info, node, class_name)

        # -- attribute calls on tainted receivers -------------------------------
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value, env, scope)
            receiver_tags = self._concrete(receiver, scope)
            attr = node.func.attr
            if attr == "spawn" and SEED_TREE in receiver_tags:
                return receiver | Taint(tags=frozenset({SEED_TREE}))
            if RNG in receiver_tags or UNSEEDED in receiver_tags:
                # Any method call on a generator consumes its stream.
                if UNSEEDED in receiver_tags and self._collect:
                    if _in_campaign_scope(scope.info):
                        self._emit(
                            "rng-consumption",
                            node,
                            scope,
                            f"draw through {attr}() on a generator whose "
                            "provenance chain includes an unseeded "
                            "constructor",
                        )
                return receiver.without(DIGEST_OBJ)
            if attr == "update" and DIGEST_OBJ in receiver_tags:
                if self._collect and (
                    WALLCLOCK in arg_tags or ENV in arg_tags
                ):
                    self._emit(
                        "impure-digest",
                        node,
                        scope,
                        "wall-clock/environment-derived bytes folded into a "
                        "content digest",
                    )
                return receiver
            if attr == "join":
                # "sep".join(items) preserves element order-dependence.
                return arg_union
            if attr in ("values", "keys", "items"):
                return receiver
            if attr in ("get", "pop", "copy", "setdefault"):
                return receiver | arg_union
            if resolved is None:
                # ``expr.method(...)``: the result derives from the
                # receiver (``.encode()``, ``.strip()``, ``.format()``).
                return receiver | arg_union

        if resolved is None:
            return arg_union.without(UNORDERED)

        last = _last_segment(resolved)

        # -- sink checks (reporting pass only) ----------------------------------
        if self._collect:
            self._check_call_sinks(node, resolved, last, arg_tags, scope)

        # -- the blessed seed-tree roots ----------------------------------------
        # ``resolve_rng``/``resolve_pyrandom`` and the sharding spawners
        # are matched *before* the internal-summary path: their bodies
        # contain the one sanctioned unseeded fallback (policed by
        # RPR002, which warns at runtime), so analysing them like
        # ordinary internal functions would leak ``unseeded-rng`` into
        # every well-behaved caller.  Argument provenance still flows
        # through: resolving an explicitly unseeded generator keeps its
        # taint.
        if last in _RESOLVERS or last in _SEED_TREE_PRODUCERS:
            if resolved in self.index.functions:
                self._propagate_params(
                    self.index.functions[resolved],
                    self.index._bind(self.index.functions[resolved], node),
                    env,
                    scope,
                )
            return arg_union | Taint(tags=frozenset({RNG, SEED_TREE}))

        # -- internal functions: relational return summary ----------------------
        if resolved in self.index.functions:
            function = self.index.functions[resolved]
            summary = self.returns.get(resolved, _NO_TAINT)
            result = Taint(tags=summary.tags)
            bindings = self.index._bind(function, node)
            self._propagate_params(function, bindings, env, scope)
            for param in summary.params:
                bound = bindings.get(param)
                if bound is not None:
                    result = result | Taint(
                        tags=self._eval(bound, env, scope).tags
                    )
            return result

        # -- external roots -----------------------------------------------------
        if resolved in _RNG_CONSTRUCTORS:
            if not node.args and not node.keywords:
                return Taint(tags=frozenset({RNG, UNSEEDED}))
            return arg_union | Taint(tags=frozenset({RNG}))
        if resolved in _WALLCLOCK_CALLS:
            return Taint(tags=frozenset({WALLCLOCK}))
        if resolved in _ENV_CALLS:
            return Taint(tags=frozenset({ENV}))
        if resolved in _DIGEST_CONSTRUCTORS:
            return Taint(tags=frozenset({DIGEST_OBJ}))
        if resolved in _UNORDERED_CALLS or last in ("iterdir",):
            return arg_union | Taint(tags=frozenset({UNORDERED}))
        if resolved in _ORDER_NEUTRAL_CALLS:
            return arg_union.without(UNORDERED)
        if resolved in ("list", "tuple", "iter", "reversed", "enumerate", "zip"):
            return arg_union
        if resolved == "dict":
            return arg_union
        # Unknown external call: provenance tags survive; element-order
        # sensitivity is assumed not to (it rarely does, and assuming it
        # would flood RPR011 with false positives).
        return arg_union.without(UNORDERED)

    def _propagate_params(
        self,
        function: FunctionInfo,
        bindings: Dict[str, ast.AST],
        env: Dict[str, Taint],
        scope: _Scope,
    ) -> None:
        if not bindings:
            return
        slot = self.param_tags.setdefault(function.qualname, {})
        for param, argument in bindings.items():
            tags = self._concrete(self._eval(argument, env, scope), scope)
            if tags:
                slot[param] = slot.get(param, _EMPTY) | tags

    # -- sinks ------------------------------------------------------------------

    def _check_call_sinks(
        self,
        node: ast.Call,
        resolved: str,
        last: str,
        arg_tags: FrozenSet[str],
        scope: _Scope,
    ) -> None:
        is_persist = resolved in _PERSIST_CANONICAL or last.startswith(
            _PERSIST_PREFIXES
        )
        if is_persist and UNORDERED in arg_tags:
            self._emit(
                "unordered-persist",
                node,
                scope,
                f"value with set/scandir iteration order reaches {last}() "
                "and becomes a persisted artifact",
            )
        is_digest = resolved in _DIGEST_CONSTRUCTORS or any(
            marker in last for marker in _DIGEST_MARKERS
        )
        if is_digest and (WALLCLOCK in arg_tags or ENV in arg_tags):
            self._emit(
                "impure-digest",
                node,
                scope,
                f"wall-clock/environment-derived value reaches {last}() and "
                "contaminates a content digest",
            )
        if _CHECKPOINT_MARKER in last and (
            WALLCLOCK in arg_tags or ENV in arg_tags
        ):
            self._emit(
                "impure-digest",
                node,
                scope,
                f"wall-clock/environment-derived value reaches {last}() and "
                "enters a checkpoint payload",
            )

    def _emit(
        self, kind: str, node: ast.AST, scope: _Scope, detail: str
    ) -> None:
        self._events.append(
            SinkEvent(
                kind=kind,
                node=node,
                path=scope.info.path,
                module=scope.info.name,
                scope=scope.qualname,
                detail=detail,
            )
        )


def analyze_project(files: Sequence[Tuple[str, str]]) -> ProjectAnalysis:
    """Build the index from ``(path, source)`` pairs and run to fixpoint."""
    return TaintEngine(build_index(files)).run()


#: Per-process memo for :func:`module_seed_rooted_names` -- RPR002 and
#: RPR006 both consult it for the same module in the same run.
_rooted_memo: Dict[Tuple[str, int], FrozenSet[str]] = {}


def module_seed_rooted_names(path: str, source: str) -> FrozenSet[str]:
    """Names carrying seed-tree provenance anywhere in one module.

    The intra-module entry point RPR002/RPR006 consult: a single-file
    project is analysed and every scope's seed-rooted locals are
    unioned.  Strictly more complete than the old "mentions a seed-tree
    name" heuristic -- ``ss = tree.spawn(1)[0]; child = ss; rng =
    default_rng(child)`` resolves through both hops.
    """
    key = (path, hash(source))
    cached = _rooted_memo.get(key)
    if cached is not None:
        return cached
    analysis = analyze_project([(path, source)])
    rooted: Set[str] = set()
    for names in analysis.seed_rooted.values():
        rooted.update(names)
    result = frozenset(rooted)
    if len(_rooted_memo) > 4096:
        _rooted_memo.clear()
    _rooted_memo[key] = result
    return result


# -- the whole-program rules -----------------------------------------------------


def _finding_from_event(
    checker: ProjectChecker, event: SinkEvent, message: str, lines: Sequence[str]
) -> Finding:
    line = getattr(event.node, "lineno", 1)
    content = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
    return Finding(
        rule=checker.rule,
        severity=checker.severity,
        path=event.path,
        line=line,
        column=getattr(event.node, "col_offset", 0),
        message=message,
        content=content,
    )


@register
class UnrootedCampaignRngChecker(ProjectChecker):
    """RPR010: campaign randomness whose chain is not seed-tree rooted.

    The interprocedural upgrade of RPR002/RPR006: a generator
    constructed without a seed *anywhere* along the provenance chain --
    two call hops away, returned from a helper, stored on ``self`` --
    and then drawn from inside reliability/parallel/serve code is
    flagged at the consumption site.  Chains rooted in
    ``resolve_rng``/``resolve_pyrandom``/``SeedSequence.spawn`` (or any
    value threaded from them through parameters) are clean.
    """

    rule = "RPR010"
    name = "unrooted-campaign-rng"
    severity = Severity.ERROR
    description = (
        "randomness consumed in campaign code with no seed-tree-rooted chain"
    )
    rationale = (
        "the PR-5/PR-9 unseeded-RNG bugs (estimate_fit, ten fallback "
        "sites) entered through call chains no per-module rule can see; "
        "shards1==serial and resume bit-identity both assume every "
        "campaign draw is a pure function of the SeedSequence tree"
    )

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Finding]:
        for event in analysis.events:
            if event.kind != "rng-consumption":
                continue
            lines = analysis.index.modules[event.module].source.splitlines()
            yield _finding_from_event(
                self,
                event,
                f"in {event.scope}: {event.detail}; thread rng=/seed= from "
                "the campaign SeedSequence tree (resolve_rng/"
                "resolve_pyrandom or parallel.sharding.spawn_generators) "
                "through the call chain",
                lines,
            )


@register
class UnorderedPersistChecker(ProjectChecker):
    """RPR011: unordered iteration flowing into persisted artifacts.

    Set and directory-scan iteration order is not a pure function of
    the campaign inputs (string hashing is salted per process; the
    filesystem returns entries in arbitrary order).  A value whose
    order descends from one of those, persisted without an intervening
    ``sorted()``, makes checkpoints, BenchRecords, and serve result
    bodies compare unequal across bit-identical runs -- the exact
    property the dedup store and resume tests pin.
    """

    rule = "RPR011"
    name = "unordered-persist"
    severity = Severity.ERROR
    description = (
        "set/scandir iteration order reaches a persisted artifact unsorted"
    )
    rationale = (
        "serve-store dedup hashes normalized result bodies and resume "
        "compares checkpoint fingerprints byte-for-byte; one set-ordered "
        "list in either payload breaks both silently and only under "
        "hash-seed variation"
    )

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Finding]:
        for event in analysis.events:
            if event.kind != "unordered-persist":
                continue
            lines = analysis.index.modules[event.module].source.splitlines()
            yield _finding_from_event(
                self,
                event,
                f"in {event.scope}: {event.detail}; sort the iteration "
                "(sorted(...)) before it enters the persisted payload",
                lines,
            )


@register
class ImpureDigestChecker(ProjectChecker):
    """RPR012: wall-clock/environment values in digests or checkpoints.

    A content digest must cover exactly what determines the result
    bits, and a checkpoint payload must be reproducible from
    ``(seed, interval)``.  Calendar time, ``os.environ``, and locale
    state are none of those: folding them in makes byte-identical
    submissions miss the dedup store and resumed runs fail fingerprint
    checks they should pass.
    """

    rule = "RPR012"
    name = "impure-digest"
    severity = Severity.ERROR
    description = (
        "wall-clock/os.environ/locale value flows into a digest or checkpoint"
    )
    rationale = (
        "the serve store keys results on sha256 of the normalized spec "
        "and RESULT_VERSION precisely so identical submissions dedup to "
        "byte-identical bodies; one timestamp in the hashed payload "
        "voids the content-addressing contract"
    )

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Finding]:
        for event in analysis.events:
            if event.kind != "impure-digest":
                continue
            lines = analysis.index.modules[event.module].source.splitlines()
            yield _finding_from_event(
                self,
                event,
                f"in {event.scope}: {event.detail}; digests and checkpoint "
                "payloads must be pure functions of the campaign inputs -- "
                "stamp timestamps outside the hashed/fingerprinted "
                "structure",
                lines,
            )
