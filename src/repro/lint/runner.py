"""The lint pipeline: discover files, walk each tree once, filter.

For every Python file the runner parses the source, builds one
:class:`~repro.lint.context.ModuleContext`, instantiates the active
checkers fresh (so per-module state cannot leak between files), and
performs a *single* ``ast.walk`` dispatching each node to the checkers
interested in its type.  After the per-module stage a *whole-program*
stage hands every parsed file to the interprocedural engine
(:mod:`repro.lint.dataflow`) and runs the project rules (RPR010+) over
the converged facts.  Raw findings from both stages then pass through
the config exemptions, inline suppressions, and the baseline; whatever
survives is "new" and gates the run.

Both stages replay from the content-hash cache
(:mod:`repro.lint.cache`) when the inputs are unchanged, so a warm
full-tree run costs file hashing plus one JSON read.

A file that fails to parse produces a synthetic ``RPR000`` ERROR
finding instead of crashing the run -- a broken file must fail lint,
not hide from it.
"""

from __future__ import annotations

import ast
import os
from collections import defaultdict
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.lint.baseline import Baseline, load_baseline
from repro.lint.cache import LintCache, content_hash
from repro.lint.config import LintConfig
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    ProjectChecker,
    all_checkers,
    get_checker,
    instantiate,
    is_project_rule,
)
from repro.lint.suppressions import SuppressionIndex

#: Synthetic rule id for unparseable files.
PARSE_ERROR_RULE = "RPR000"


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``new_findings`` is what gates; ``baselined`` and ``suppressed``
    counts are reported so debt stays visible even while tolerated.
    """

    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    rules: Tuple[str, ...] = ()

    def counts_by_rule(self) -> Dict[str, int]:
        """New findings per rule id (stable sorted keys)."""
        counts: Dict[str, int] = defaultdict(int)
        for finding in self.new_findings:
            counts[finding.rule] += 1
        return dict(sorted(counts.items()))

    def failed(self, fail_severity: Severity) -> bool:
        """Does any new finding reach the gate severity?"""
        return any(
            finding.severity >= fail_severity for finding in self.new_findings
        )


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Hidden directories, ``__pycache__``, and egg-info metadata are
    skipped; a path that exists but matches nothing is simply empty
    (the CLI validates existence before calling).
    """
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
            continue
        for root, directories, files in os.walk(path):
            directories[:] = sorted(
                d
                for d in directories
                if not d.startswith(".")
                and d != "__pycache__"
                and not d.endswith(".egg-info")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    collected.append(os.path.join(root, name))
    return sorted(dict.fromkeys(collected))


def _normalise_path(path: str) -> str:
    return os.path.normpath(path).replace(os.sep, "/")


def lint_source(
    source: str, path: str, config: Optional[LintConfig] = None
) -> List[Finding]:
    """Lint one in-memory module; returns raw-minus-suppressed findings.

    The building block for both :func:`lint_paths` and the fixture
    tests (which lint snippets without touching the filesystem).
    Config exemptions and inline suppressions apply; the baseline is a
    cross-file concern and does not.
    """
    findings, _ = _lint_source_counts(source, path, config or LintConfig())
    return findings


def _lint_source_counts(
    source: str, path: str, config: LintConfig
) -> Tuple[List[Finding], int]:
    """(post-suppression findings, raw pre-suppression count)."""
    path = _normalise_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        finding = Finding(
            rule=PARSE_ERROR_RULE,
            severity=Severity.ERROR,
            path=path,
            line=error.lineno or 1,
            column=(error.offset or 1) - 1,
            message=f"file does not parse: {error.msg}",
            content="",
        )
        return [finding], 1
    ctx = ModuleContext(path=path, source=source, tree=tree)
    active = config.active_rules(all_checkers())
    checkers = [
        checker
        for checker in instantiate(active)
        if not isinstance(checker, ProjectChecker)
        and not ctx.path_endswith(config.exempt_suffixes(checker.rule))
    ]
    if not checkers:
        return [], 0
    by_interest: Dict[str, List] = defaultdict(list)
    for checker in checkers:
        checker.begin_module(ctx)
        for interest in checker.interests:
            by_interest[interest].append(checker)
    raw: List[Finding] = []
    for node in ast.walk(tree):
        for checker in by_interest.get(type(node).__name__, ()):
            raw.extend(checker.check_node(node, ctx))
    for checker in checkers:
        raw.extend(checker.end_module(ctx))
    raw.sort(key=lambda f: (f.line, f.column, f.rule))
    suppressions = SuppressionIndex(ctx.lines)
    survived = [
        finding
        for finding in raw
        if not suppressions.is_suppressed(finding.rule, finding.line)
    ]
    return survived, len(raw)


def _path_endswith(path: str, suffixes: Sequence[str]) -> bool:
    """Config-exemption suffix match for project-stage findings."""
    normalised = path.replace(os.sep, "/")
    return any(
        normalised == suffix or normalised.endswith("/" + suffix)
        for suffix in suffixes
    )


def _project_stage(
    sources: Sequence[Tuple[str, str]],
    config: LintConfig,
    project_rules: Sequence[str],
) -> Tuple[List[Finding], int]:
    """Run the whole-program rules; returns (survived, suppressed)."""
    from repro.lint.dataflow import analyze_project

    analysis = analyze_project(sources)
    raw: List[Finding] = []
    for rule in project_rules:
        checker = get_checker(rule)()
        for finding in checker.check_project(analysis):
            if _path_endswith(finding.path, config.exempt_suffixes(rule)):
                continue
            raw.append(finding)
    raw.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    suppressions: Dict[str, SuppressionIndex] = {}
    text = dict(sources)
    survived: List[Finding] = []
    for finding in raw:
        index = suppressions.get(finding.path)
        if index is None:
            index = SuppressionIndex(
                text.get(finding.path, "").splitlines()
            )
            suppressions[finding.path] = index
        if not index.is_suppressed(finding.rule, finding.line):
            survived.append(finding)
    return survived, len(raw) - len(survived)


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    cache: Optional[LintCache] = None,
    restrict: Optional[AbstractSet[str]] = None,
) -> LintReport:
    """Lint files/directories and filter through the baseline.

    ``cache`` replays per-file and whole-program results whose inputs
    are content-identical.  ``restrict`` (the ``--changed-only`` set of
    normalised paths) limits which files' findings are *reported*; the
    whole-program stage still analyses everything given, because
    interprocedural facts about a changed file depend on its unchanged
    callers and callees.
    """
    config = config or LintConfig()
    if baseline is None:
        baseline = (
            load_baseline(config.baseline_path)
            if config.baseline_path
            else Baseline()
        )
    active = config.active_rules(all_checkers())
    report = LintReport(rules=active)
    sources: List[Tuple[str, str]] = []
    hashes: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths):
        normalised = _normalise_path(file_path)
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as error:
            report.findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    path=normalised,
                    line=1,
                    column=0,
                    message=f"file is unreadable: {error}",
                )
            )
            continue
        sources.append((normalised, source))
        file_hash = content_hash(source) if cache is not None else ""
        if cache is not None:
            hashes.append((normalised, file_hash))
        if restrict is not None and normalised not in restrict:
            continue
        cached = (
            cache.lookup(normalised, file_hash, active)
            if cache is not None
            else None
        )
        if cached is not None:
            survived, raw_count = cached
        else:
            survived, raw_count = _lint_source_counts(
                source, file_path, config
            )
            if cache is not None:
                cache.store(
                    normalised, file_hash, active, survived, raw_count
                )
        report.files_checked += 1
        report.suppressed += raw_count - len(survived)
        report.findings.extend(survived)
    project_rules = [rule for rule in active if is_project_rule(get_checker(rule))]
    if project_rules and sources:
        project_findings: Optional[List[Finding]] = None
        combined = cache.project_hash(hashes) if cache is not None else ""
        if cache is not None:
            project_findings = cache.lookup_project(combined, active)
        if project_findings is None:
            project_findings, project_suppressed = _project_stage(
                sources, config, project_rules
            )
            report.suppressed += project_suppressed
            if cache is not None:
                cache.store_project(combined, active, project_findings)
        if restrict is not None:
            project_findings = [
                finding
                for finding in project_findings
                if finding.path in restrict
            ]
        report.findings.extend(project_findings)
    if cache is not None:
        cache.save()
    report.new_findings = baseline.filter_new(report.findings)
    report.baselined = len(report.findings) - len(report.new_findings)
    return report
