"""``repro lint``: AST-based domain analysis for this reproduction.

Every hardening PR in this repository's history fixed instances of the
same few latent bug classes by hand: outcome labels compared as raw
strings, unseeded RNG fallbacks that break shard determinism, non-atomic
artifact writes, raw popcounts, width-unvalidated bit flips, and RNG
streams in parallel workers not derived from the ``SeedSequence`` tree.
This package mechanizes those invariants as a pure-stdlib (``ast``)
static-analysis pipeline so they are enforced on every commit instead of
rediscovered by reviewers.

Architecture (one module per concern):

* :mod:`repro.lint.findings`     -- ``Finding`` / ``Severity`` value types;
* :mod:`repro.lint.registry`     -- the checker registry and base class;
* :mod:`repro.lint.context`      -- per-module context (import-alias
  resolution, source access) shared by every checker;
* :mod:`repro.lint.suppressions` -- inline ``# repro-lint: disable=...``;
* :mod:`repro.lint.baseline`     -- the committed grandfather file;
* :mod:`repro.lint.config`       -- run configuration and the blessed-
  module exemptions;
* :mod:`repro.lint.checkers`     -- the six RPR domain rules;
* :mod:`repro.lint.runner`       -- the per-file visitor pipeline;
* :mod:`repro.lint.reporting`    -- human / JSON / GitHub output;
* :mod:`repro.lint.cli`          -- the ``repro lint`` subcommand glue.

See ``docs/static-analysis.md`` for the rule catalog (each rule names
the real bug it descends from) and the workflow for suppressing,
baselining, and adding checkers.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Checker, all_checkers, get_checker, register
from repro.lint.runner import LintReport, lint_paths, lint_source

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintConfig",
    "LintReport",
    "Severity",
    "all_checkers",
    "get_checker",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "write_baseline",
]
