"""Inline suppressions: ``# repro-lint: disable=RULE[,RULE...]``.

A finding is suppressed when a disable comment names its rule (or
``all``) either on the finding's own line or on the immediately
preceding line when that line is a comment *only* -- the idiom for
expressions too long to carry a trailing comment::

    rng = np.random.default_rng(seed)  # repro-lint: disable=RPR006

    # The serial path must stay bit-identical to the historical CLI.
    # repro-lint: disable=RPR006
    rng = np.random.default_rng(
        seed,
    )

Suppressions are parsed from raw source lines (not the token stream);
a disable marker inside a string literal would be honoured too, which
is acceptable for a repo-internal linter and keeps the parser trivial.
"""

from __future__ import annotations

import re
from typing import Dict, Sequence, Set

#: Matches the directive anywhere after a ``#`` on the line.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)"
)

#: The wildcard rule name disabling every rule on the line.
ALL = "all"


class SuppressionIndex:
    """Per-line map of disabled rules for one module."""

    def __init__(self, lines: Sequence[str]) -> None:
        #: 1-based line -> set of rule ids (or :data:`ALL`).
        self._by_line: Dict[int, Set[str]] = {}
        #: lines that are comment-only (candidate carriers for the
        #: next line's findings).
        self._comment_only: Set[int] = set()
        for number, text in enumerate(lines, start=1):
            stripped = text.strip()
            if stripped.startswith("#"):
                self._comment_only.add(number)
            match = _DIRECTIVE.search(text)
            if match:
                rules = {
                    token.strip()
                    for token in match.group(1).split(",")
                    if token.strip()
                }
                self._by_line.setdefault(number, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Is ``rule`` disabled at 1-based ``line``?"""
        for candidate in (line, line - 1):
            if candidate == line - 1 and candidate not in self._comment_only:
                continue
            rules = self._by_line.get(candidate)
            if rules and (rule in rules or ALL in rules):
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_line)
