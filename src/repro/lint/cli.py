"""``repro lint`` subcommand glue.

Kept separate from :mod:`repro.cli` so the top-level parser only pays
for an import of argparse plumbing; the checkers load when the
subcommand actually runs.

Exit codes: 0 clean (or baseline written), 1 new findings at or above
the gate severity, 2 usage error (unknown rule, missing path, bad
baseline file, unresolvable ``--changed-only`` ref).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Set

from repro.lint.baseline import BaselineError, from_findings, load_baseline, write_baseline
from repro.lint.cache import load_cache
from repro.lint.config import LintConfig
from repro.lint.findings import Severity
from repro.lint.registry import all_checkers, known_rules
from repro.lint.reporting import FORMATTERS
from repro.lint.runner import lint_paths

#: Default committed baseline, resolved relative to the working
#: directory (the repo root in CI and normal development).
DEFAULT_BASELINE = "lint-baseline.json"

#: Default incremental cache (gitignored; advisory).
DEFAULT_CACHE = ".lint-cache.json"


def configure_lint_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` arguments to a subparser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=sorted(FORMATTERS), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", default="", metavar="FILE",
        help=f"baseline file of grandfathered findings (default: "
             f"{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to grandfather all current findings "
             "and exit 0",
    )
    parser.add_argument(
        "--select", nargs="+", default=None, metavar="RULE",
        help="run only these rule ids (e.g. RPR001 RPR003)",
    )
    parser.add_argument(
        "--disable", nargs="+", default=[], metavar="RULE",
        help="skip these rule ids",
    )
    parser.add_argument(
        "--fail-on", default="warning", metavar="SEVERITY",
        help="minimum severity that fails the run: info, warning "
             "(default), or error",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply the idempotent autofixes (RPR003/RPR004/RPR007) in "
             "place before linting",
    )
    parser.add_argument(
        "--changed-only", default=None, metavar="REF",
        help="report findings only for files that differ from the git "
             "ref (whole-program analysis still covers everything)",
    )
    parser.add_argument(
        "--cache", default=DEFAULT_CACHE, metavar="FILE",
        help=f"incremental cache file keyed on content hashes "
             f"(default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache for this run",
    )


def _validate_rules(rules: List[str]) -> Optional[str]:
    known = set(known_rules())
    for rule in rules:
        if rule not in known:
            return rule
    return None


def _changed_files(ref: str) -> Optional[Set[str]]:
    """Normalised paths of files differing from ``ref`` (plus untracked).

    ``None`` when git cannot answer (not a repo, unknown ref) -- the
    caller reports a usage error rather than silently linting nothing.
    """
    changed: Set[str] = set()
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True, text=True, check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    for line in diff.stdout.splitlines() + untracked.stdout.splitlines():
        line = line.strip()
        if line:
            changed.add(os.path.normpath(line).replace(os.sep, "/"))
    return changed


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` from parsed arguments."""
    if args.list_rules:
        for checker in all_checkers():
            print(
                f"{checker.rule}  {checker.name:<22} "
                f"[{checker.severity}]  {checker.description}"
            )
        return 0

    unknown = _validate_rules(list(args.select or []) + list(args.disable))
    if unknown is not None:
        print(
            f"repro lint: error: unknown rule {unknown!r} "
            f"(known: {', '.join(known_rules())})",
            file=sys.stderr,
        )
        return 2
    try:
        fail_severity = Severity.parse(args.fail_on)
    except ValueError as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2
    for path in args.paths:
        if not os.path.exists(path):
            print(
                f"repro lint: error: no such path {path!r}", file=sys.stderr
            )
            return 2

    baseline_path = args.baseline
    if not baseline_path and not args.no_baseline:
        baseline_path = (
            DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else ""
        )
    if args.no_baseline:
        baseline_path = ""

    config = LintConfig(
        select=frozenset(args.select) if args.select else None,
        disable=frozenset(args.disable),
        baseline_path="" if args.write_baseline else baseline_path,
        fail_severity=fail_severity,
    )

    if getattr(args, "fix", False):
        from repro.lint.autofix import fix_paths

        fix_report = fix_paths(args.paths, config)
        if fix_report.files_changed:
            by_rule = ", ".join(
                f"{rule}: {count}"
                for rule, count in sorted(fix_report.by_rule.items())
            )
            print(
                f"repro lint --fix: {fix_report.edits_applied} fix(es) in "
                f"{fix_report.files_changed} file(s) ({by_rule})"
            )
        else:
            print("repro lint --fix: nothing to fix")

    restrict: Optional[Set[str]] = None
    changed_ref = getattr(args, "changed_only", None)
    if changed_ref:
        restrict = _changed_files(changed_ref)
        if restrict is None:
            print(
                f"repro lint: error: cannot diff against {changed_ref!r} "
                "(not a git checkout, or unknown ref)",
                file=sys.stderr,
            )
            return 2

    cache = None
    if not getattr(args, "no_cache", False):
        cache_path = getattr(args, "cache", DEFAULT_CACHE)
        if cache_path:
            cache = load_cache(cache_path)

    try:
        report = lint_paths(
            args.paths, config, cache=cache, restrict=restrict
        )
    except BaselineError as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(target, from_findings(report.findings))
        print(
            f"repro lint: wrote baseline {target} "
            f"({len(report.findings)} finding(s) grandfathered)"
        )
        return 0

    print(FORMATTERS[args.format](report))
    # Stale-entry detection needs the full finding set; a --changed-only
    # run only carries findings for the restricted files.
    if baseline_path and restrict is None:
        stale = load_baseline(baseline_path).stale_entries(report.findings)
        if stale:
            print(
                f"repro lint: note: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} (fixed findings); "
                "refresh with --write-baseline",
                file=sys.stderr,
            )
    return 1 if report.failed(fail_severity) else 0
