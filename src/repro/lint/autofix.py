"""Idempotent autofixes for the mechanical rules (``repro lint --fix``).

Three rules have a repair that is purely mechanical -- the fixed code
is a direct, behavior-preserving rewrite of the flagged span:

* **RPR007**: ``time.time()`` duration reads become
  ``time.perf_counter()`` (same module object, monotonic source);
* **RPR004**: ``bin(x).count("1")`` / ``format(x, "b").count("1")``
  become ``popcount(x)`` with the ``repro.coding.bitvec`` import added;
* **RPR003**: the single-write idiom
  ``with open(p, "w", encoding="utf-8") as h: h.write(text)`` becomes
  ``atomic_write_text(p, text)``.  Multi-statement write blocks are
  left for a human -- rewriting them mechanically could reorder
  side effects.

Fixes are **idempotent by construction**: every rewrite removes the
exact pattern its rule matches, so a second ``--fix`` run finds
nothing to do.  Edits are applied by source span (``end_lineno``/
``end_col_offset``) in reverse order so earlier offsets stay valid,
and overlapping edits are refused.  Files exempt from a rule and lines
carrying an inline suppression are never touched.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.context import ModuleContext
from repro.lint.suppressions import SuppressionIndex

#: Rules the autofixer can repair (exported for ``--fix`` help/docs).
FIXABLE_RULES = ("RPR003", "RPR004", "RPR007")

_POPCOUNT_IMPORT = "from repro.coding.bitvec import popcount"
_ATOMIC_IMPORT = "from repro.obs.atomicio import atomic_write_text"


@dataclass(frozen=True)
class Edit:
    """One span replacement in a file's source text."""

    start: int  # absolute character offset
    end: int
    replacement: str
    rule: str
    line: int


@dataclass
class FixResult:
    """Outcome of fixing one file."""

    path: str
    source: str
    fixed_source: str
    edits: List[Edit] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.fixed_source != self.source


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span(node: ast.AST, offsets: List[int]) -> Optional[Tuple[int, int]]:
    end_lineno = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_lineno is None or end_col is None:
        return None
    start = offsets[node.lineno - 1] + node.col_offset
    end = offsets[end_lineno - 1] + end_col
    return start, end


def _segment(source: str, node: ast.AST, offsets: List[int]) -> Optional[str]:
    span = _span(node, offsets)
    if span is None:
        return None
    return source[span[0]: span[1]]


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _module_binds_name(tree: ast.Module, ctx: ModuleContext, name: str) -> bool:
    """Is ``name`` already importable/defined in this module?"""
    if name in ctx.aliases:
        return True
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return True
    return False


def _import_insertion_line(tree: ast.Module) -> int:
    """1-based line *after* which new imports go.

    After the last top-level import when there is one; otherwise after
    the module docstring; otherwise at the very top (line 0).
    """
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = max(last, getattr(node, "end_lineno", node.lineno))
    if last:
        return last
    if (
        tree.body
        and isinstance(tree.body[0], ast.Expr)
        and _const_str(tree.body[0].value) is not None
    ):
        return getattr(tree.body[0], "end_lineno", tree.body[0].lineno)
    return 0


class _FileFixer:
    """Collects and applies edits for one parsed module."""

    def __init__(
        self, path: str, source: str, tree: ast.Module, config: LintConfig
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.ctx = ModuleContext(path=path, source=source, tree=tree)
        self.offsets = _line_offsets(source)
        self.suppressions = SuppressionIndex(self.ctx.lines)
        self.edits: List[Edit] = []
        self.needed_imports: Set[str] = set()

    def _rule_applies(self, rule: str, line: int) -> bool:
        if self.ctx.path_endswith(self.config.exempt_suffixes(rule)):
            return False
        return not self.suppressions.is_suppressed(rule, line)

    def _add(
        self, node: ast.AST, replacement: str, rule: str
    ) -> None:
        span = _span(node, self.offsets)
        if span is None:
            return
        self.edits.append(
            Edit(
                start=span[0],
                end=span[1],
                replacement=replacement,
                rule=rule,
                line=node.lineno,  # type: ignore[attr-defined]
            )
        )

    # -- RPR007: time.time() -> time.perf_counter() -----------------------------

    def _fix_wallclock(self, node: ast.Call) -> None:
        if self.ctx.resolve(node.func) != "time.time":
            return
        if not isinstance(node.func, ast.Attribute):
            # ``from time import time`` -- rewriting the bare name would
            # need import surgery too; leave it to a human.
            return
        if not self._rule_applies("RPR007", node.lineno):
            return
        base = _segment(self.source, node.func.value, self.offsets)
        if base is None:
            return
        self._add(node.func, f"{base}.perf_counter", "RPR007")

    # -- RPR004: bin(x).count("1") -> popcount(x) -------------------------------

    def _fix_popcount(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "count"):
            return
        if not (node.args and _const_str(node.args[0]) == "1"):
            return
        inner = func.value
        if not isinstance(inner, ast.Call) or not inner.args:
            return
        resolved = self.ctx.resolve(inner.func)
        if resolved == "bin":
            operand = inner.args[0]
        elif resolved == "format" and len(inner.args) >= 2:
            spec = _const_str(inner.args[1])
            if spec is None or not spec.endswith("b"):
                return
            operand = inner.args[0]
        else:
            return
        if not self._rule_applies("RPR004", node.lineno):
            return
        operand_src = _segment(self.source, operand, self.offsets)
        if operand_src is None:
            return
        self._add(node, f"popcount({operand_src})", "RPR004")
        if not _module_binds_name(self.tree, self.ctx, "popcount"):
            self.needed_imports.add(_POPCOUNT_IMPORT)

    # -- RPR003: single-write open blocks -> atomic_write_text ------------------

    def _open_write_call(self, node: ast.With) -> Optional[Tuple[str, str]]:
        """(path_src, handle_name) when this is a fixable write block."""
        if len(node.items) != 1:
            return None
        item = node.items[0]
        call = item.context_expr
        if not isinstance(call, ast.Call):
            return None
        if self.ctx.resolve(call.func) not in ("open", "io.open"):
            return None
        if not call.args:
            return None
        mode = None
        if len(call.args) >= 2:
            mode = _const_str(call.args[1])
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = _const_str(keyword.value)
            elif keyword.arg == "encoding":
                if _const_str(keyword.value) != "utf-8":
                    return None
            elif keyword.arg == "newline":
                if _const_str(keyword.value) not in ("", None):
                    return None
            else:
                return None  # unknown kwarg: do not guess
        if mode != "w":
            # "a"/"x" semantics are not what atomic_write_text provides.
            return None
        if len(call.args) > 2:
            return None
        if not isinstance(item.optional_vars, ast.Name):
            return None
        path_src = _segment(self.source, call.args[0], self.offsets)
        if path_src is None:
            return None
        return path_src, item.optional_vars.id

    def _fix_atomic_write(self, node: ast.With) -> None:
        opened = self._open_write_call(node)
        if opened is None:
            return
        path_src, handle = opened
        if len(node.body) != 1:
            return
        statement = node.body[0]
        if not isinstance(statement, ast.Expr):
            return
        call = statement.value
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "write"
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == handle
            and len(call.args) == 1
            and not call.keywords
        ):
            return
        if not self._rule_applies("RPR003", node.lineno):
            return
        text_src = _segment(self.source, call.args[0], self.offsets)
        if text_src is None:
            return
        self._add(
            node, f"atomic_write_text({path_src}, {text_src})", "RPR003"
        )
        if not _module_binds_name(self.tree, self.ctx, "atomic_write_text"):
            self.needed_imports.add(_ATOMIC_IMPORT)

    # -- driver -----------------------------------------------------------------

    def run(self) -> FixResult:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._fix_wallclock(node)
                self._fix_popcount(node)
            elif isinstance(node, ast.With):
                self._fix_atomic_write(node)
        if not self.edits:
            return FixResult(self.path, self.source, self.source)
        # Refuse overlapping edits (nested matches): keep the outermost.
        chosen: List[Edit] = []
        for edit in sorted(self.edits, key=lambda e: (e.start, -e.end)):
            if chosen and edit.start < chosen[-1].end:
                continue
            chosen.append(edit)
        fixed = self.source
        for edit in sorted(chosen, key=lambda e: e.start, reverse=True):
            fixed = fixed[: edit.start] + edit.replacement + fixed[edit.end:]
        if self.needed_imports:
            lines = fixed.splitlines(keepends=True)
            at = _import_insertion_line(self.tree)
            block = "".join(
                f"{statement}\n" for statement in sorted(self.needed_imports)
            )
            lines.insert(at, block)
            fixed = "".join(lines)
        return FixResult(self.path, self.source, fixed, chosen)


def fix_source(
    source: str, path: str, config: Optional[LintConfig] = None
) -> FixResult:
    """Compute the fixed text of one module (pure; no filesystem)."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return FixResult(path, source, source)
    return _FileFixer(path, source, tree, config).run()


@dataclass
class FixReport:
    """Summary of one ``--fix`` pass over many files."""

    files_changed: int = 0
    edits_applied: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)
    changed_paths: List[str] = field(default_factory=list)


def fix_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> FixReport:
    """Apply fixes in place to every Python file under ``paths``."""
    from repro.lint.runner import iter_python_files
    from repro.obs.atomicio import atomic_write_text

    config = config or LintConfig()
    report = FixReport()
    for file_path in iter_python_files(paths):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError):
            continue
        result = fix_source(source, file_path, config)
        if not result.changed:
            continue
        atomic_write_text(file_path, result.fixed_source)
        report.files_changed += 1
        report.edits_applied += len(result.edits)
        report.changed_paths.append(file_path)
        for edit in result.edits:
            report.by_rule[edit.rule] = report.by_rule.get(edit.rule, 0) + 1
    return report
