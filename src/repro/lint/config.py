"""Lint run configuration and the blessed-module exemptions.

Every rule polices a pattern whose *one* legitimate implementation
lives in a specific module -- the outcome taxonomy in
``core/outcomes.py``, the atomic writer in ``obs/atomicio.py``, the
popcount kernel in ``coding/bitvec.py``, the seed-derivation functions
in ``parallel/sharding.py``, the documented-unseeded fallback in
``core/rng.py``.  Those modules are exempt from their own rule by
default (:data:`DEFAULT_EXEMPTIONS`); everything else needs an inline
suppression or a baseline entry to ship a violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.lint.findings import Severity

#: rule id -> path suffixes of the module(s) allowed to embody the
#: pattern the rule forbids everywhere else.
DEFAULT_EXEMPTIONS: Mapping[str, Tuple[str, ...]] = {
    # The taxonomy itself defines the labels.
    "RPR001": ("repro/core/outcomes.py",),
    # The one sanctioned unseeded fallback (it warns).
    "RPR002": ("repro/core/rng.py",),
    # The atomic writer's tmp-file handle is the mechanism.
    "RPR003": ("repro/obs/atomicio.py",),
    # The popcount kernel's byte table is built with bin().count("1"),
    # and bit_positions() is the blessed manual bit loop.
    "RPR004": ("repro/coding/bitvec.py",),
    # flip_bits' own definition/width plumbing.
    "RPR005": ("repro/coding/bitvec.py",),
    # The seed-derivation module constructs generators by design.
    "RPR006": ("repro/parallel/sharding.py",),
    # The scenario layer is where fault primitives are legitimately
    # built from specs (seeded off the campaign tree, fingerprinted).
    "RPR008": ("repro/reliability/scenario.py",),
    # The reference backend *is* the sanctioned per-line scalar loop.
    "RPR009": ("repro/kernels/reference.py",),
}


@dataclass
class LintConfig:
    """Configuration for one lint run.

    :param select: restrict to these rule ids (``None``: all registered).
    :param disable: rule ids to skip entirely.
    :param exemptions: rule -> path suffixes exempt from that rule
        (defaults to :data:`DEFAULT_EXEMPTIONS`).
    :param baseline_path: committed grandfather file (``""``: none).
    :param fail_severity: minimum severity that makes the run fail;
        default ``WARNING`` so every finding gates.
    """

    select: Optional[FrozenSet[str]] = None
    disable: FrozenSet[str] = frozenset()
    exemptions: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_EXEMPTIONS)
    )
    baseline_path: str = ""
    fail_severity: Severity = Severity.WARNING

    def active_rules(self, registered) -> Tuple[str, ...]:
        """The rule ids this run executes, in sorted order."""
        rules = []
        for checker in registered:
            rule = checker.rule
            if self.select is not None and rule not in self.select:
                continue
            if rule in self.disable:
                continue
            rules.append(rule)
        return tuple(sorted(rules))

    def exempt_suffixes(self, rule: str) -> Tuple[str, ...]:
        """Path suffixes exempt from ``rule``."""
        return self.exemptions.get(rule, ())
